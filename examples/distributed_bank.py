#!/usr/bin/env python3
"""Distributed bank: two replicated server groups under one 2PC.

Transfers move money between accounts at *different* banks, so every
transaction is a distributed one: the client group coordinates two-phase
commit across both bank groups using psets and viewstamps (paper section
3).  A network partition strikes one bank mid-run; total money is exactly
conserved and the committed history stays one-copy serializable.

Run:  python examples/distributed_bank.py
"""

from repro import EmptyModule, Runtime
from repro.workloads.bank import (
    BankAccountsSpec,
    cross_bank_transfer_program,
    total_balance,
)
from repro.workloads.loadgen import run_closed_loop


def main():
    rt = Runtime(seed=13)
    east_spec = BankAccountsSpec(n_accounts=4, opening_balance=250, prefix="east")
    west_spec = BankAccountsSpec(n_accounts=4, opening_balance=250, prefix="west")
    east = rt.create_group("east-bank", east_spec, n_cohorts=3)
    west = rt.create_group("west-bank", west_spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("xfer", cross_bank_transfer_program)
    driver = rt.create_driver("teller")

    opening_total = total_balance(east, east_spec) + total_balance(west, west_spec)
    print(f"opening total across both banks: {opening_total}")

    rng = rt.sim.rng.fork("transfers")
    jobs = []
    for _ in range(60):
        src = east_spec.account(rng.randint(0, 3))
        dst = west_spec.account(rng.randint(0, 3))
        if rng.chance(0.5):
            jobs.append(("xfer", ("east-bank", src, "west-bank", dst,
                                  rng.randint(1, 25))))
        else:
            jobs.append(("xfer", ("west-bank", dst, "east-bank", src,
                                  rng.randint(1, 25))))

    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=3)

    # Partition the west bank down the middle for a while: its primary is
    # separated from one backup, but a majority-side view keeps committing.
    def partition_west():
        from repro.sim.process import sleep

        yield sleep(300.0)
        nodes = [node.node_id for node in west.nodes()]
        rt.network.partition([set(nodes[:1]), set(nodes[1:])])
        print(f"t={rt.sim.now:.0f}: partitioned west bank {nodes[:1]} | {nodes[1:]}")
        yield sleep(400.0)
        rt.network.heal()
        print(f"t={rt.sim.now:.0f}: partition healed")

    from repro.sim.process import spawn

    spawn(rt.sim, partition_west(), name="partitioner")

    while stats.submitted < len(jobs) and rt.sim.now < 60_000:
        rt.run_for(500)
    rt.quiesce()

    closing_total = total_balance(east, east_spec) + total_balance(west, west_spec)
    print(f"transfers committed: {stats.committed}, aborted: {stats.aborted}")
    print(f"west-bank view changes: {len(rt.ledger.view_changes_for('west-bank'))}")
    print(f"closing total: {closing_total}")
    assert closing_total == opening_total, "money was created or destroyed!"
    rt.check_invariants()
    print("money conserved across distributed 2PC + partition; history is 1SR")


if __name__ == "__main__":
    main()
