#!/usr/bin/env python3
"""Side-by-side: viewstamped replication vs quorum voting (paper section 5).

Runs the same read/write workload against a 3-cohort viewstamped group and
a 3-replica voting system (both read-one/write-all and majority quorums),
then prints the message bills and what happens to each when one machine
dies -- the paper's core related-work argument, live.

Run:  python examples/voting_comparison.py
"""

from repro import EmptyModule, Runtime, transaction_program
from repro.baselines.voting import VotingClient, VotingSystem
from repro.sim.process import spawn
from repro.workloads.kv import KVStoreSpec
from repro.workloads.loadgen import run_closed_loop

OPS = 30
OPS_PER_TXN = 5  # the paper's model: transactions contain many calls
VOTE_MSGS = ("VoteReadReq", "VoteReadReply", "VoteLockReq", "VoteLockReply",
             "VoteWriteReq", "VoteWriteReply", "VoteUnlockReq")
VR_MSGS = ("CallMsg", "ReplyMsg", "BufferMsg", "BufferAckMsg", "PrepareMsg",
           "PrepareOkMsg", "CommitMsg", "CommitAckMsg")


@transaction_program
def update_batch(txn, group, keys):
    for key in keys:
        yield txn.call(group, "incr", key, 1)
    return len(keys)


def run_vr(kill_one: bool) -> tuple:
    rt = Runtime(seed=11)
    spec = KVStoreSpec(n_keys=8)
    kv = rt.create_group("kv", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("batch", update_batch)
    driver = rt.create_driver("driver")
    n_txns = OPS // OPS_PER_TXN
    jobs = [
        ("batch", ("kv", [spec.key(t * OPS_PER_TXN + i) for i in range(OPS_PER_TXN)]))
        for t in range(n_txns)
    ]
    stats = run_closed_loop(rt, driver, "clients", jobs, think_time=5.0)
    if kill_one:
        rt.sim.schedule(60.0, kv.cohort(2).node.crash)  # a backup dies
    while stats.submitted < n_txns and rt.sim.now < 30_000:
        rt.run_for(500)
    ops_done = stats.committed * OPS_PER_TXN
    msgs = sum(rt.metrics.messages_sent.get(t, 0) for t in VR_MSGS)
    return ops_done, msgs / max(ops_done, 1)


def run_voting(r: int, w: int, kill_one: bool) -> tuple:
    rt = Runtime(seed=12)
    system = VotingSystem(rt, "vote", 3, {f"key{i}": 0 for i in range(8)})
    client = VotingClient(
        rt.create_node("vc-node"), rt, "vc", system, read_quorum=r, write_quorum=w,
        op_timeout=25.0,
    )
    if kill_one:
        rt.sim.schedule(60.0, system.replicas[2].node.crash)
    done = {"ok": 0}

    def ops():
        for i in range(OPS):
            try:
                yield client.write(f"key{i % 8}", i)
                done["ok"] += 1
            except RuntimeError:
                pass

    spawn(rt.sim, ops(), name="voting-ops")
    rt.run_for(30_000)
    msgs = sum(rt.metrics.messages_sent.get(t, 0) for t in VOTE_MSGS)
    return done["ok"], msgs / max(done["ok"], 1)


def main():
    print(f"workload: {OPS} read-modify-write operations, 3 replicas\n")
    print(f"{'system':<28} {'healthy ok':>10} {'msgs/op':>8}   "
          f"{'one dead ok':>11} {'msgs/op':>8}")
    for label, runner in (
        ("viewstamped replication", run_vr),
        ("voting write-all (r1/w3)", lambda k: run_voting(1, 3, k)),
        ("voting majority (r2/w2)", lambda k: run_voting(2, 2, k)),
    ):
        ok_h, msgs_h = runner(False)
        ok_d, msgs_d = runner(True)
        print(f"{label:<28} {ok_h:>7}/{OPS} {msgs_h:>8.1f}   "
              f"{ok_d:>8}/{OPS} {msgs_d:>8.1f}")
    print(
        "\nviewstamped replication keeps its 2-message synchronous path and\n"
        "rides out the dead replica via a view change; write-all voting pays\n"
        "4x the messages when healthy and stops committing entirely once a\n"
        "single replica dies -- the section 5 comparison, reproduced."
    )


if __name__ == "__main__":
    main()
