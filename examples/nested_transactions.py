#!/usr/bin/env python3
"""Nested transactions: retry a call instead of aborting everything (3.6).

"Subactions are an economical way to cope with view changes...  we need to
abort and redo a call subaction only when the view changes; thus we do
extra work only when the problem arises."

Two identical workloads run against a KV group whose primary is killed
repeatedly: one with flat (one-level) transactions, one with subactions.
The flat run loses whole transactions whenever a call catches a dead
primary; the nested run retries just the failed call as a new subaction
and almost always commits.

Run:  python examples/nested_transactions.py
"""

from repro import EmptyModule, Runtime, transaction_program
from repro.sim.process import sleep
from repro.workloads.kv import KVStoreSpec
from repro.workloads.loadgen import run_closed_loop
from repro.workloads.schedules import kill_primary_every


@transaction_program
def flat_order(txn, group, items):
    """A multi-step order: any failed call aborts the whole transaction."""
    for key in items:
        yield txn.call(group, "incr", key, 1)
        yield sleep(15.0)
    return len(items)


@transaction_program(subactions=True)
def nested_order(txn, group, items):
    """The same steps, but each call is a subaction that can be retried."""
    for key in items:
        yield txn.call(group, "incr", key, 1)
        yield sleep(15.0)
    return len(items)


def run(program_name: str) -> tuple:
    rt = Runtime(seed=31)
    spec = KVStoreSpec(n_keys=64)
    kv = rt.create_group("kv", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("flat", flat_order)
    clients.register_program("nested", nested_order)
    driver = rt.create_driver("driver")

    jobs = [
        (program_name, ("kv", [spec.key(4 * j + i) for i in range(4)]))
        for j in range(50)
    ]
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=3)
    kill_primary_every(rt, kv, interval=300.0, count=6, recover_after=140.0)
    while stats.submitted < len(jobs) and rt.sim.now < 60_000:
        rt.run_for(500)
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
    retries = rt.metrics.counters.get("subaction_retries:clients", 0)
    return stats, retries, len(rt.ledger.view_changes_for("kv"))


def main():
    flat, _retries, changes = run("flat")
    print("flat (one-level) transactions:")
    print(f"  committed {flat.committed}, aborted {flat.aborted} "
          f"across {changes} view changes")

    nested, retries, changes = run("nested")
    print("nested transactions (subactions):")
    print(f"  committed {nested.committed}, aborted {nested.aborted} "
          f"across {changes} view changes ({retries} subaction retries)")

    print("\nsubactions turned most view-change aborts into quiet call retries")
    assert nested.committed >= flat.committed


if __name__ == "__main__":
    main()
