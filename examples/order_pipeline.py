#!/usr/bin/env python3
"""Order pipeline: three replicated services, one atomic transaction each.

Every order touches the inventory group, the payments group, and the order
ledger group -- a three-participant distributed transaction coordinated by
the client group's primary (paper section 3).  Crashes hit two of the
three services mid-run; afterwards the three-way books must balance
exactly: stock + sold = initial, customer money + merchant revenue =
opening, and the order log agrees with both.

Run:  python examples/order_pipeline.py
"""

from repro import EmptyModule, Runtime
from repro.workloads.loadgen import run_closed_loop
from repro.workloads.orders import (
    InventorySpec,
    OrderLogSpec,
    PaymentsSpec,
    check_order_invariants,
    place_order_program,
)
from repro.workloads.schedules import kill_primary_every


def main():
    rt = Runtime(seed=2026)
    inventory_spec = InventorySpec(items=("widget", "gadget"), stock=40)
    payments_spec = PaymentsSpec(customers=("alice", "bob", "carol"), balance=400)
    inventory = rt.create_group("inventory", inventory_spec, n_cohorts=3)
    payments = rt.create_group("payments", payments_spec, n_cohorts=3)
    orders = rt.create_group("orders", OrderLogSpec(), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("place_order", place_order_program)
    driver = rt.create_driver("storefront")

    rng = rt.sim.rng.fork("orders")
    jobs = []
    for _ in range(60):
        customer = rng.choice(["alice", "bob", "carol"])
        item = rng.choice(["widget", "gadget"])
        jobs.append(("place_order", (customer, item, rng.randint(1, 3), 5)))

    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=3)
    kill_primary_every(rt, inventory, interval=350.0, count=2, recover_after=200.0)
    kill_primary_every(rt, payments, interval=500.0, count=1, recover_after=200.0)

    while stats.submitted < len(jobs) and rt.sim.now < 60_000:
        rt.run_for(500)
    rt.run_for(1500)
    rt.quiesce()

    print(f"orders placed: {stats.committed}, rejected/aborted: {stats.aborted}")
    print(f"view changes: inventory={len(rt.ledger.view_changes_for('inventory'))}, "
          f"payments={len(rt.ledger.view_changes_for('payments'))}")
    for item in inventory_spec.items:
        print(f"  {item}: {inventory.read_object(f'{item}:sold')} sold, "
              f"{inventory.read_object(f'{item}:stock')} left")
    print(f"  merchant revenue: {payments.read_object('merchant:revenue')}")
    print(f"  orders recorded: {orders.read_object('order_count')}")

    check_order_invariants(inventory, payments, orders, inventory_spec,
                           payments_spec)
    rt.check_invariants()
    print("three-way books balance exactly; committed history is 1SR")


if __name__ == "__main__":
    main()
