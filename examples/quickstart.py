#!/usr/bin/env python3
"""Quickstart: a replicated counter that survives its primary crashing.

Demonstrates the core loop of viewstamped replication:

1. define a module (objects + procedures) -- the unit of replication;
2. create a module group of three cohorts and a client group;
3. run transactions through a driver;
4. crash the primary: the backups reorganize (a view change), one becomes
   the new primary, and the service keeps going;
5. recover the crashed cohort: it rejoins the group.

Run:  python examples/quickstart.py
"""

from repro import EmptyModule, ModuleSpec, Runtime, procedure, transaction_program


class Counter(ModuleSpec):
    """One replicated counter object."""

    def initial_objects(self):
        return {"count": 0}

    @procedure
    def increment(self, ctx, amount):
        value = yield ctx.read("count")
        yield ctx.write("count", value + amount)
        return value + amount

    @procedure
    def get(self, ctx):
        value = yield ctx.read("count")
        return value


@transaction_program
def bump(txn, amount):
    result = yield txn.call("counter", "increment", amount)
    return result


def main():
    rt = Runtime(seed=7)
    counter = rt.create_group("counter", Counter(), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("bump", bump)
    driver = rt.create_driver("driver")

    print("== normal operation ==")
    for amount in (5, 10, 1):
        outcome = driver.call("clients", "bump", amount)
        rt.run_for(200)
        print(f"  bump({amount}) -> {outcome.result()}")
    primary = counter.active_primary()
    print(f"  counter value: {counter.read_object('count')}")
    print(f"  primary: cohort {primary.mymid} in view {primary.cur_viewid}")

    print("\n== crash the primary ==")
    victim = counter.crash_primary()
    print(f"  crashed cohort {victim}")
    rt.run_for(300)  # failure detection + view change
    primary = counter.active_primary()
    print(f"  new primary: cohort {primary.mymid} in view {primary.cur_viewid}")

    # The first transaction after the crash may abort: its call to the dead
    # primary gets no reply, and the paper's rule is to abort rather than
    # risk duplicate execution ("to resolve this uncertainty, we abort the
    # transaction", section 3.1).  The abort refreshes the caches, so a
    # user-level retry lands on the new primary.
    for attempt in (1, 2):
        outcome = driver.call("clients", "bump", 100)
        rt.run_for(300)
        result = outcome.result()
        print(f"  bump(100) attempt {attempt} -> {result}")
        if result.committed:
            break
    print(f"  counter value: {counter.read_object('count')} (nothing lost)")

    print("\n== recover the crashed cohort ==")
    counter.recover_cohort(victim)
    rt.run_for(500)
    primary = counter.active_primary()
    print(f"  view now: {primary.cur_view} (viewid {primary.cur_viewid})")

    rt.quiesce()
    rt.check_invariants()
    print("\nall replicas converged; committed history is one-copy serializable")
    print(f"view changes: {[(str(e.viewid), e.primary) for e in rt.ledger.view_changes]}")


if __name__ == "__main__":
    main()
