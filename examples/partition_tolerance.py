#!/usr/bin/env python3
"""Split brain, prevented: a stale primary cannot commit (section 4.1).

"The system performs correctly even if there are several active primaries.
This situation could arise when there is a partition and the old primary is
slow to notice the need for a view change and continues to respond to
client requests even after the new view is formed.  The old primary will
not be able to prepare and commit user transactions, however, since it
cannot force their effects to the backups."

We partition the old primary away with a client still talking to it.  The
majority side forms a new view and keeps committing; the minority-side
primary accepts calls but every commit attempt stalls at the force and the
transaction never commits.  After healing, the group reconciles into one
view with no divergence.

Run:  python examples/partition_tolerance.py
"""

from repro import EmptyModule, Runtime
from repro.workloads.kv import KVStoreSpec, update_program


def main():
    rt = Runtime(seed=99)
    spec = KVStoreSpec(n_keys=4)
    kv = rt.create_group("kv", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("update", update_program)
    # A second, independent client group that will be trapped with the old
    # primary on the minority side of the partition.
    minority_clients = rt.create_group("minority-clients", EmptyModule(), n_cohorts=1)
    minority_clients.register_program("update", update_program)
    driver = rt.create_driver("driver")
    minority_driver = rt.create_driver("minority-driver")

    # Warm up both drivers' caches.
    for d in (driver, minority_driver):
        group = "clients" if d is driver else "minority-clients"
        outcome = d.call(group, "update", "kv", spec.key(0))
        rt.run_for(200)
        assert outcome.result().committed

    old_primary = kv.active_primary()
    print(f"old primary: cohort {old_primary.mymid} in view {old_primary.cur_viewid}")

    # Partition: old primary + the minority client group on one side;
    # the two backups + the majority clients + driver on the other.
    minority_nodes = {old_primary.node.node_id}
    minority_nodes |= {n.node_id for n in minority_clients.nodes()}
    minority_nodes.add("minority-driver-node")
    all_nodes = set(rt.nodes)
    rt.network.partition([minority_nodes, all_nodes - minority_nodes])
    print(f"partitioned: minority side = {sorted(minority_nodes)}")

    # The minority client talks to the old primary, which still thinks it
    # is active: calls run, but the commit force can never reach a
    # sub-majority, so the transaction cannot commit.
    stale_txn = minority_driver.call(
        "minority-clients", "update", "kv", spec.key(1), retries=0
    )
    rt.run_for(700)
    majority_primary = kv.active_primary()
    print(f"majority side formed view {majority_primary.cur_viewid} "
          f"with primary {majority_primary.mymid}")

    # Majority side keeps committing meanwhile.
    committed = 0
    for _ in range(5):
        outcome = driver.call("clients", "update", "kv", spec.key(2))
        rt.run_for(250)
        if outcome.result().committed:
            committed += 1
    print(f"majority side committed {committed}/5 transactions during the partition")

    stale_result = stale_txn.result() if stale_txn.done else ("unknown", None)
    print(f"minority-side transaction outcome: {stale_result[0]} "
          "(it must never be 'committed')")
    assert stale_result[0] != "committed"

    rt.network.heal()
    print("partition healed")
    rt.run_for(1000)
    rt.quiesce()
    rt.check_invariants()
    final = kv.active_primary()
    print(f"group reconciled into view {final.cur_viewid}; "
          f"key2={kv.read_object(spec.key(2))}, key1={kv.read_object(spec.key(1))}")
    print("no split brain: committed history is one-copy serializable")


if __name__ == "__main__":
    main()
