#!/usr/bin/env python3
"""Unreplicated clients and the coordinator-server (paper section 3.5).

"Replicating a client that is not a server may not be worthwhile.  If the
client is not replicated, it is still desirable for the coordinator to be
highly available...  The client communicates with such a server when it
starts a transaction, and when it commits or aborts; the coordinator-server
carries out two-phase commit on the client's behalf...  In answering a
query about a transaction that appears to still be active, it would check
with the client, but if no reply is forthcoming, it can abort the
transaction unilaterally."

This example shows both halves:

1. a plain (unreplicated) client agent runs transactions through a
   replicated coordinator-server, and the transactions survive a crash of
   the coordinator-server's *primary*;
2. a client that dies mid-transaction leaves locks behind at the server --
   the participant queries, the coordinator-server probes the dead client,
   gets no answer, and aborts unilaterally, freeing the locks.

Run:  python examples/coordinator_server.py
"""

from repro import EmptyModule, Runtime
from repro.workloads.kv import KVStoreSpec


def transfer_like(txn, key_a, key_b):
    a = yield txn.call("kv", "incr", key_a, 1)
    b = yield txn.call("kv", "incr", key_b, 1)
    return (a, b)


def stalls_forever(txn, key):
    yield txn.call("kv", "incr", key, 100)
    # ... the client crashes before finishing (see below); the write lock
    # on `key` is now orphaned at the server.
    from repro.sim.process import sleep

    yield sleep(10_000.0)


def main():
    rt = Runtime(seed=77)
    spec = KVStoreSpec(n_keys=8)
    kv = rt.create_group("kv", spec, n_cohorts=3)
    rt.create_group("coordsvc", EmptyModule(), n_cohorts=3)

    print("== part 1: transactions from an unreplicated client ==")
    agent = rt.create_agent("laptop", "coordsvc")
    outcome = agent.run_transaction(transfer_like, spec.key(0), spec.key(1))
    rt.run_for(600)
    print(f"  transaction 1 -> {outcome.result()}")

    coordsvc = rt.groups["coordsvc"]
    victim = coordsvc.crash_primary()
    print(f"  crashed coordinator-server primary (cohort {victim})")
    rt.run_for(400)

    outcome = agent.run_transaction(transfer_like, spec.key(2), spec.key(3))
    rt.run_for(1500)
    print(f"  transaction 2 (after coordinator failover) -> {outcome.result()}")

    print("\n== part 2: a client that dies mid-transaction ==")
    doomed = rt.create_agent("doomed-laptop", "coordsvc")
    doomed_outcome = doomed.run_transaction(stalls_forever, spec.key(4))
    rt.run_for(200)  # the call completes; locks are held at kv
    primary = kv.active_primary()
    held = primary.lockmgr.holders_of(spec.key(4))
    print(f"  locks on {spec.key(4)} before the crash: {held}")
    doomed.node.crash()
    print("  client crashed; coordinator-server will probe it when queried")
    rt.run_for(3000)  # janitor query -> probe -> unilateral abort
    primary = kv.active_primary()
    held = primary.lockmgr.holders_of(spec.key(4))
    print(f"  locks on {spec.key(4)} after unilateral abort: {held}")
    assert not held, "orphaned locks were not cleaned up"
    aborts = [r for r in rt.ledger.aborted.values() if "unilateral" in r or "unresponsive" in r]
    print(f"  ledger: {aborts}")

    rt.quiesce()
    rt.check_invariants()
    print("\ncoordinator-server kept 2PC highly available for plain clients")


if __name__ == "__main__":
    main()
