#!/usr/bin/env python3
"""Airline reservations: the paper's motivating example (section 1).

"In airline reservation systems the failure of a single computer can
prevent ticket sales for a considerable time, causing a loss of revenue
and passenger goodwill."

Here the reservation system is a replicated module group: concurrent
booking agents keep selling seats while the machine hosting the primary
crashes and recovers, and the flight is never oversold -- even with a
round-trip booking that must reserve two legs atomically.

Run:  python examples/airline_reservations.py
"""

from repro import EmptyModule, Runtime
from repro.workloads.airline import (
    AirlineSpec,
    book_trip_program,
    check_airline_invariants,
    round_trip_program,
)
from repro.workloads.loadgen import run_closed_loop
from repro.workloads.schedules import kill_primary_every


def main():
    rt = Runtime(seed=42)
    spec = AirlineSpec(flights=("UA100", "BA200"), capacity=30)
    airline = rt.create_group("airline", spec, n_cohorts=3)
    agents = rt.create_group("agents", EmptyModule(), n_cohorts=3)
    agents.register_program("book", book_trip_program)
    agents.register_program("round_trip", round_trip_program)
    driver = rt.create_driver("agent-terminals")

    # 50 booking attempts for 30+30 seats: the tail must be rejected, and
    # a crash of the reservation primary must not lose or double-book seats.
    rng = rt.sim.rng.fork("bookings")
    jobs = []
    for _ in range(40):
        flight = rng.choice(["UA100", "BA200"])
        jobs.append(("book", ("airline", flight, rng.randint(1, 3))))
    for _ in range(10):
        jobs.append(("round_trip", ("airline", "UA100", "BA200", 1)))

    stats = run_closed_loop(rt, driver, "agents", jobs, concurrency=4)
    kill_primary_every(rt, airline, interval=250.0, count=2, recover_after=200.0)

    while stats.submitted < len(jobs) and rt.sim.now < 60_000:
        rt.run_for(500)
    rt.run_for(1500)  # let the last crash's view change and recovery settle
    rt.quiesce()

    print(f"bookings committed: {stats.committed}")
    print(f"bookings rejected/aborted: {stats.aborted} "
          "(sold out, or hit the crash window)")
    print(f"view changes survived: {len(rt.ledger.view_changes_for('airline'))}")
    for flight in spec.flights:
        left = airline.read_object(f"{flight}:left")
        booked = airline.read_object(f"{flight}:booked")
        print(f"  {flight}: {booked} booked, {left} left (capacity {spec.capacity})")

    check_airline_invariants(airline, spec)
    rt.check_invariants()
    print("invariants hold: no flight oversold, seats conserved, history 1SR")


if __name__ == "__main__":
    main()
