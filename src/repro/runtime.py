"""Runtime: the top-level assembly of one simulated system.

A :class:`Runtime` owns the simulator, the network, the location service,
the metrics sink, and the transaction ledger, and offers factory methods
for nodes, module groups, and workload drivers.  This is the main entry
point of the public API::

    from repro import Runtime, ModuleSpec, procedure

    class Counter(ModuleSpec):
        def initial_objects(self):
            return {"count": 0}

        @procedure
        def increment(self, ctx, amount):
            value = yield ctx.read("count")
            yield ctx.write("count", value + amount)
            return value + amount

    rt = Runtime(seed=1)
    counter = rt.create_group("counter", Counter(), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    driver = rt.create_driver("driver")
    ...
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.facade import ShardedGroup

from repro.analysis.ledger import TransactionLedger
from repro.analysis.metrics import Metrics
from repro.config import ProtocolConfig, TraceConfig
from repro.core.group import ModuleGroup
from repro.driver import Driver
from repro.faults.controller import FaultController
from repro.location.service import LocationService
from repro.net.link import LAN, LinkModel
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.node import Node


class Runtime:
    """One simulated deployment of the viewstamped replication system."""

    def __init__(
        self,
        seed: int | str = 0,
        link: LinkModel = LAN,
        config: Optional[ProtocolConfig] = None,
        max_events: int = 5_000_000,
        trace: Optional[TraceConfig] = None,
    ):
        self.sim = Simulator(seed=seed, max_events=max_events)
        self.metrics = Metrics()
        self.network = Network(self.sim, link=link, metrics=self.metrics)
        self.location = LocationService()
        self.ledger = TransactionLedger(clock=lambda: self.sim.now)
        self.config = config if config is not None else ProtocolConfig()
        self.nodes: Dict[str, Node] = {}
        self.groups: Dict[str, ModuleGroup] = {}
        self.sharded: Dict[str, "ShardedGroup"] = {}
        self.drivers: List[Driver] = []
        self.tracer = None
        if trace is not None and trace.enabled:
            # Wired before any group exists so no send/activation is missed.
            from repro.trace import Tracer, build_monitors

            self.tracer = Tracer(self.sim, trace)
            self.tracer.install_monitors(build_monitors(trace.monitors))
            self.sim.tracer = self.tracer
            self.network.tracer = self.tracer
            self.sim.add_trace_hook(self.tracer.on_sim_trace)
        self.faults = FaultController(self)
        # repro.live attachment point; None = liveness checking disabled
        # (mirrors ``tracer``: nothing pays for the feature until armed).
        self.liveness = None
        # repro.geo: ``topology is None`` = the paper's flat network; armed
        # topologies place cohorts by policy and install structural links.
        self.topology = None
        self.placement = None
        self.node_sites: Dict[str, str] = {}
        geo = self.config.geo
        if geo is not None and geo.topology is not None:
            from repro.geo.placement import resolve_placement

            self.topology = geo.topology
            self.placement = resolve_placement(geo.placement)
            self.location.attach_topology(self.topology)

    # -- factories ------------------------------------------------------------

    def create_node(self, node_id: str, site: Optional[str] = None) -> Node:
        """Create a node, optionally placed at a topology *site*.

        Placing a node installs structural link models (both directions)
        between it and every previously placed node, derived from the
        topology's intra-zone/intra-DC/cross-DC tiers.  Unplaced nodes
        keep the flat default link to everyone.
        """
        if node_id in self.nodes:
            raise ValueError(f"node {node_id!r} already exists")
        if site is not None:
            if self.topology is None:
                raise ValueError(
                    "create_node(site=...) requires ProtocolConfig.geo "
                    "with a topology"
                )
            if not self.topology.has_site(site):
                raise ValueError(
                    f"unknown site {site!r} (have {list(self.topology.sites())})"
                )
        node = Node(self.sim, node_id)
        self.nodes[node_id] = node
        if site is not None:
            for other_id, other_site in self.node_sites.items():
                self.network.set_structural_link(
                    node_id, other_id, self.topology.link_between(site, other_site)
                )
                self.network.set_structural_link(
                    other_id, node_id, self.topology.link_between(other_site, site)
                )
            self.node_sites[node_id] = site
        return node

    def create_group(
        self,
        groupid: str,
        spec,
        n_cohorts: int = 3,
        config: Optional[ProtocolConfig] = None,
        nodes: Optional[List[Node]] = None,
    ) -> ModuleGroup:
        """Create a replicated module group.

        By default each cohort gets its own node (the paper's bottleneck
        discussion in section 5 assumes primaries of different groups run
        on different nodes; pass ``nodes`` to co-locate explicitly).
        """
        if nodes is None and n_cohorts < 1:
            raise ValueError(
                f"create_group({groupid!r}): n_cohorts must be >= 1, "
                f"got {n_cohorts}"
            )
        if nodes is not None and len(nodes) < 1:
            raise ValueError(
                f"create_group({groupid!r}): need at least one node, "
                "got an empty list"
            )
        if groupid in self.groups:
            # Fail before any node is created: a duplicate would otherwise
            # surface as a confusing node-name collision (or, with explicit
            # nodes, silently shadow the earlier group's runtime entry).
            raise ValueError(f"group {groupid!r} already exists in this runtime")
        if nodes is None:
            if self.placement is not None:
                # Geo-armed: the placement policy assigns one site per mid
                # (index order = mid order, so mid 0 -- the initial
                # primary -- gets the policy's first site).
                sites = self.placement.place(self.topology, groupid, n_cohorts)
                if len(sites) != n_cohorts:
                    raise ValueError(
                        f"placement {self.placement.name!r} returned "
                        f"{len(sites)} sites for {n_cohorts} cohorts"
                    )
                nodes = [
                    self.create_node(f"{groupid}-n{i}", site=sites[i])
                    for i in range(n_cohorts)
                ]
            else:
                nodes = [
                    self.create_node(f"{groupid}-n{i}") for i in range(n_cohorts)
                ]
        group = ModuleGroup(self, groupid, spec, nodes, config=config)
        self.groups[groupid] = group
        if self.topology is not None:
            # Geo routing needs to know where each cohort *address* lives.
            for mid in sorted(group.cohorts):
                cohort = group.cohort(mid)
                cohort_site = self.node_sites.get(cohort.node.node_id)
                if cohort_site is not None:
                    self.location.register_site(cohort.address, cohort_site)
        return group

    def sharded_group(
        self,
        name: str,
        n_shards: int,
        n_cohorts: int = 3,
        spec_factory=None,
        strategy: str = "hash",
        boundaries: Optional[Sequence[str]] = None,
        n_keys: int = 16,
        config: Optional[ProtocolConfig] = None,
    ) -> "ShardedGroup":
        """A partitioned key space over *n_shards* replica groups.

        Creates ``{name}-s0 .. {name}-s{n-1}`` shard groups plus a
        ``{name}-router`` client group for cross-shard transactions, and
        publishes the versioned :class:`~repro.shard.map.ShardMap` through
        the location service.  Submit key-addressed work with
        :meth:`Driver.submit_keyed`.  See docs/SHARDING.md.
        """
        from repro.shard.facade import ShardedGroup

        if name in self.sharded:
            raise ValueError(f"sharded group {name!r} already exists")
        sharded = ShardedGroup(
            self,
            name,
            n_shards=n_shards,
            n_cohorts=n_cohorts,
            spec_factory=spec_factory,
            strategy=strategy,
            boundaries=boundaries,
            n_keys=n_keys,
            config=config,
        )
        self.sharded[name] = sharded
        return sharded

    def create_driver(
        self,
        name: str,
        node: Optional[Node] = None,
        site: Optional[str] = None,
    ) -> Driver:
        """Create a workload driver, optionally homed at a topology *site*.

        A sited driver pays structural (geo) delay to every placed node
        and routes reads to the nearest serving replica when
        ``GeoConfig.geo_routing`` is on.
        """
        if node is None:
            node = self.create_node(f"{name}-node", site=site)
        elif site is not None:
            raise ValueError(
                "pass site= only when create_driver creates the node; "
                "an explicit node's site is fixed at create_node time"
            )
        driver = Driver(node, self, name)
        if self.topology is not None:
            driver_site = self.node_sites.get(node.node_id)
            if driver_site is not None:
                self.location.register_site(driver.address, driver_site)
        self.drivers.append(driver)
        return driver

    def create_agent(
        self, name: str, coordinator_group: str, node: Optional[Node] = None
    ):
        """An unreplicated client using a coordinator-server (section 3.5)."""
        from repro.agent import ClientAgent

        if node is None:
            node = self.create_node(f"{name}-node")
        return ClientAgent(node, self, name, coordinator_group)

    # -- fault injection ---------------------------------------------------------

    def inject(self, *sources) -> "FaultController":
        """Execute fault plans / nemeses; see :mod:`repro.faults`."""
        return self.faults.execute(*sources)

    # -- liveness checking --------------------------------------------------------

    def arm_liveness(
        self,
        specs,
        poll_interval: Optional[float] = None,
        raise_on_violation: bool = True,
    ):
        """Arm window-bounded liveness specs; see :mod:`repro.live`.

        Returns the :class:`~repro.live.checker.LivenessChecker`, also
        available as ``runtime.liveness``.  Checking is pure observation:
        an armed run follows the same trajectory as an unarmed one.
        """
        from repro.live.checker import LivenessChecker

        if self.liveness is not None:
            raise RuntimeError("liveness specs are already armed")
        self.liveness = LivenessChecker(
            self,
            specs,
            poll_interval=poll_interval,
            raise_on_violation=raise_on_violation,
        )
        return self.liveness

    # -- execution --------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def run_for(self, duration: float) -> float:
        return self.sim.run(until=self.sim.now + duration)

    # -- system-wide correctness checks -----------------------------------------

    def check_invariants(self, require_convergence: bool = True) -> None:
        """Assert one-copy serializability and replica convergence.

        Call after quiescing (run a few flush intervals with no new load).
        Convergence is only required of groups that currently have an
        active primary -- a group stalled by a catastrophe has nothing to
        converge.
        """
        self.ledger.check_serializability()
        if not require_convergence:
            return
        for group in self.groups.values():
            if group.active_primary() is None:
                continue
            problems = group.divergence_report()
            if problems:
                raise AssertionError(
                    f"replicas of {group.groupid} diverged: {problems}"
                )

    def quiesce(self, duration: Optional[float] = None) -> None:
        """Run long enough for buffers to drain and acks to land."""
        if duration is None:
            duration = 6 * self.config.flush_interval + 10 * self.network.link.base_delay
        self.run_for(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Runtime(now={self.sim.now:.1f}, groups={sorted(self.groups)}, "
            f"nodes={len(self.nodes)})"
        )
