"""The location service (paper section 3)."""

from repro.location.service import (
    Configuration,
    GroupNotFound,
    LocationService,
    primary_address_in,
)

__all__ = [
    "Configuration",
    "GroupNotFound",
    "LocationService",
    "primary_address_in",
]
