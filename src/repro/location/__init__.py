"""The location service (paper section 3)."""

from repro.location.service import LocationService

__all__ = ["LocationService"]
