"""The location service (paper section 3)."""

from repro.location.service import LocationService, primary_address_in

__all__ = ["LocationService", "primary_address_in"]
