"""Highly-available location service: groupid -> configuration.

Paper section 3: "We assume the system provides a highly-available location
server that maps groupids to configurations; various implementations are
discussed in [15, 20, 22, 31]...  Note that the location server defines the
limits of availability: no module group can be more available than it is."

Substitution (see DESIGN.md): the paper treats this server as an assumed,
separately-published building block, so we model it as an always-available
oracle holding the (static) groupid -> configuration map.  Everything the
protocol actually exercises -- discovering the *current primary and viewid*
by probing configuration members, coping with stale caches -- still happens
over the simulated network (see :mod:`repro.core.calls`); only the static
membership lookup is oracular.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

#: One configuration: the group's (mid, address) members, in mid order as
#: registered.  Every lookup method returns this shape per group.
Configuration = Tuple[Tuple[int, str], ...]


class GroupNotFound(KeyError):
    """A strict lookup named a groupid the service has never registered.

    Subclasses :class:`KeyError` so legacy ``except KeyError`` handlers
    keep working; carries the offending ``groupid`` for programmatic use.
    """

    def __init__(self, groupid: str):
        super().__init__(f"unknown group {groupid!r}")
        self.groupid = groupid


def primary_address_in(configuration: Iterable[Tuple[int, str]], view) -> Optional[str]:
    """The address of *view*'s primary within a (mid, address) configuration."""
    if view is None:
        return None
    for mid, address in configuration:
        if mid == view.primary:
            return address
    return None


class LocationService:
    """Maps groupids to configurations ((mid, address) pairs).

    Many groups coexist (every shard of a sharded key space is its own
    group), so the lookup API offers one contract at two strictness
    levels, all returning the same per-group shape (a
    :data:`Configuration`, i.e. a tuple of (mid, address) pairs):

    - :meth:`lookup` -- strict: raises :class:`GroupNotFound` on a miss.
      Use when an unknown groupid is a caller bug.
    - :meth:`try_lookup` -- tolerant: returns ``None`` on a miss.  Use in
      message handlers keyed off a groupid carried in a reply, which may
      be stale or forged by a fault schedule.
    - :meth:`lookup_many` -- batch form of the same choice: strict mode
      raises :class:`GroupNotFound` for the first missing groupid,
      tolerant mode (the default) silently omits missing groups.

    Misses never return sentinel configurations (no empty tuples): a miss
    is always either ``None``/omission or :class:`GroupNotFound`.

    The service also publishes versioned :class:`~repro.shard.map.ShardMap`
    values: a republish must strictly increase the version, so a stale
    publisher can never roll routing backwards.
    """

    def __init__(self) -> None:
        self._configurations: Dict[str, Tuple[Tuple[int, str], ...]] = {}
        self._shard_maps: Dict[str, Any] = {}
        # repro.geo: address -> "dc/zone" site, plus the topology whose
        # distance() metric ranks replicas for nearest-* routing.
        self._sites: Dict[str, str] = {}
        self._topology = None

    def register(self, groupid: str, configuration) -> None:
        if groupid in self._configurations:
            raise ValueError(
                f"group {groupid!r} already registered; groupids are "
                "system-wide unique (pick another name for the new group)"
            )
        configuration = tuple(configuration)
        if not configuration:
            raise ValueError(f"group {groupid!r} registered an empty configuration")
        self._configurations[groupid] = configuration

    def lookup(self, groupid: str) -> Configuration:
        """The configuration of *groupid*; raises :class:`GroupNotFound`
        if it was never registered."""
        configuration = self._configurations.get(groupid)
        if configuration is None:
            raise GroupNotFound(groupid)
        return configuration

    def try_lookup(self, groupid: str) -> Optional[Configuration]:
        """The configuration of *groupid*, or ``None`` if it is not
        registered.  Never raises on a miss."""
        return self._configurations.get(groupid)

    def lookup_many(
        self, groupids: Iterable[str], strict: bool = False
    ) -> Dict[str, Configuration]:
        """Configurations keyed by groupid, in *groupids* order.

        With ``strict=False`` (the default) unknown groupids are omitted
        from the result; with ``strict=True`` the first unknown groupid
        raises :class:`GroupNotFound`, mirroring :meth:`lookup`.
        """
        found: Dict[str, Configuration] = {}
        for groupid in groupids:
            configuration = self._configurations.get(groupid)
            if configuration is None:
                if strict:
                    raise GroupNotFound(groupid)
                continue
            found[groupid] = configuration
        return found

    def primary_address(self, groupid: str, view) -> Optional[str]:
        """The registered address of *view*'s primary, or None if the
        group is unknown or the view names no registered member."""
        configuration = self.try_lookup(groupid)
        if configuration is None:
            return None
        return primary_address_in(configuration, view)

    def groups(self):
        return tuple(self._configurations)

    def __contains__(self, groupid: str) -> bool:
        return groupid in self._configurations

    # -- geo sites and nearest-replica routing (repro.geo) -----------------

    def attach_topology(self, topology) -> None:
        """Install the topology whose distances rank nearest-* answers."""
        if self._topology is not None and self._topology is not topology:
            raise ValueError("a different topology is already attached")
        self._topology = topology

    def register_site(self, address: str, site: str) -> None:
        """Record that *address* lives at topology *site*.

        Sites are as permanent as the configuration map itself: a second
        registration for the same address is rejected (a node does not
        move between datacenters mid-run).
        """
        if address in self._sites:
            raise ValueError(
                f"address {address!r} already registered at site "
                f"{self._sites[address]!r}; site registrations are permanent"
            )
        if self._topology is not None and not self._topology.has_site(site):
            raise ValueError(f"unknown site {site!r} for address {address!r}")
        self._sites[address] = site

    def site_of(self, address: str) -> Optional[str]:
        return self._sites.get(address)

    def _distance(self, from_site: Optional[str], address: str) -> float:
        """Routing distance from a client site to a registered address.

        Unknown sites (either end) rank after every known pair, so a
        placed replica always beats an unplaced one.
        """
        to_site = self._sites.get(address)
        if self._topology is None or from_site is None or to_site is None:
            return float("inf")
        return self._topology.distance(from_site, to_site)

    def nearest_backup(
        self, groupid: str, view, site: Optional[str]
    ) -> Optional[str]:
        """The view's backup nearest to *site* (ties broken by mid).

        Returns ``None`` if the group is unknown, the view is absent, or
        no backup named by the view is registered -- mirroring
        :meth:`primary_address`'s tolerance of in-progress view changes.
        """
        configuration = self.try_lookup(groupid)
        if configuration is None or view is None:
            return None
        members = dict(configuration)
        best: Optional[str] = None
        best_rank: Optional[Tuple[float, int]] = None
        for mid in sorted(view.backups):
            address = members.get(mid)
            if address is None:
                continue
            rank = (self._distance(site, address), mid)
            if best_rank is None or rank < best_rank:
                best, best_rank = address, rank
        return best

    def nearest_member(
        self, groupid: str, view, site: Optional[str]
    ) -> Optional[str]:
        """The view member (primary included) nearest to *site*.

        The primary wins distance ties, so a flat (or site-less) lookup
        degrades to primary routing.
        """
        configuration = self.try_lookup(groupid)
        if configuration is None or view is None:
            return None
        members = dict(configuration)
        best: Optional[str] = None
        best_rank: Optional[Tuple[float, int]] = None
        ordered = [view.primary] + sorted(view.backups)
        for tiebreak, mid in enumerate(ordered):
            address = members.get(mid)
            if address is None:
                continue
            rank = (self._distance(site, address), tiebreak)
            if best_rank is None or rank < best_rank:
                best, best_rank = address, rank
        return best

    # -- shard maps --------------------------------------------------------

    def publish_shard_map(self, name: str, shard_map) -> None:
        """Publish (or republish) a versioned shard map under *name*.

        A republish must carry a strictly larger version than the
        currently published map -- the same monotonicity discipline
        viewids obey, applied to routing metadata.
        """
        current = self._shard_maps.get(name)
        if current is not None and shard_map.version <= current.version:
            raise ValueError(
                f"shard map {name!r} v{shard_map.version} does not supersede "
                f"published v{current.version}"
            )
        self._shard_maps[name] = shard_map

    def shard_map(self, name: str):
        if name not in self._shard_maps:
            raise KeyError(f"no shard map published under {name!r}")
        return self._shard_maps[name]

    def shard_maps(self):
        return tuple(self._shard_maps)
