"""Highly-available location service: groupid -> configuration.

Paper section 3: "We assume the system provides a highly-available location
server that maps groupids to configurations; various implementations are
discussed in [15, 20, 22, 31]...  Note that the location server defines the
limits of availability: no module group can be more available than it is."

Substitution (see DESIGN.md): the paper treats this server as an assumed,
separately-published building block, so we model it as an always-available
oracle holding the (static) groupid -> configuration map.  Everything the
protocol actually exercises -- discovering the *current primary and viewid*
by probing configuration members, coping with stale caches -- still happens
over the simulated network (see :mod:`repro.core.calls`); only the static
membership lookup is oracular.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple


def primary_address_in(configuration: Iterable[Tuple[int, str]], view) -> Optional[str]:
    """The address of *view*'s primary within a (mid, address) configuration."""
    if view is None:
        return None
    for mid, address in configuration:
        if mid == view.primary:
            return address
    return None


class LocationService:
    """Maps groupids to configurations ((mid, address) pairs)."""

    def __init__(self) -> None:
        self._configurations: Dict[str, Tuple[Tuple[int, str], ...]] = {}

    def register(self, groupid: str, configuration) -> None:
        if groupid in self._configurations:
            raise ValueError(f"group {groupid!r} already registered")
        self._configurations[groupid] = tuple(configuration)

    def lookup(self, groupid: str) -> Tuple[Tuple[int, str], ...]:
        if groupid not in self._configurations:
            raise KeyError(f"unknown group {groupid!r}")
        return self._configurations[groupid]

    def primary_address(self, groupid: str, view) -> Optional[str]:
        """The registered address of *view*'s primary, or None if absent."""
        return primary_address_in(self.lookup(groupid), view)

    def groups(self):
        return tuple(self._configurations)

    def __contains__(self, groupid: str) -> bool:
        return groupid in self._configurations
