"""Key-value workload: the read/write-mix substrate for E1, E2, E5, E13."""

from __future__ import annotations

from repro.app.module import ModuleSpec, procedure, transaction_program


class KVStoreSpec(ModuleSpec):
    """A replicated key-value store over a fixed key space."""

    def __init__(self, n_keys: int = 16, prefix: str = "key"):
        self.n_keys = n_keys
        self.prefix = prefix

    def key(self, index: int) -> str:
        return f"{self.prefix}{index % self.n_keys}"

    def initial_objects(self):
        return {self.key(i): 0 for i in range(self.n_keys)}

    @procedure
    def get(self, ctx, key):
        value = yield ctx.read(key)
        return value

    @procedure
    def put(self, ctx, key, value):
        yield ctx.write(key, value)
        return value

    @procedure
    def incr(self, ctx, key, delta=1):
        value = yield ctx.read_for_update(key)
        yield ctx.write(key, value + delta)
        return value + delta

    @procedure
    def multi_get(self, ctx, keys):
        values = []
        for key in keys:
            value = yield ctx.read(key)
            values.append(value)
        return values

    @procedure
    def multi_put(self, ctx, pairs):
        for key, value in pairs:
            yield ctx.write(key, value)
        return len(pairs)


@transaction_program
def read_program(txn, group, key):
    value = yield txn.call(group, "get", key)
    return value


@transaction_program
def write_program(txn, group, key, value):
    result = yield txn.call(group, "put", key, value)
    return result


@transaction_program
def update_program(txn, group, key, delta=1):
    result = yield txn.call(group, "incr", key, delta)
    return result


@transaction_program
def read_modify_write_program(txn, group, key_read, key_write):
    value = yield txn.call(group, "get", key_read)
    result = yield txn.call(group, "put", key_write, value + 1)
    return result
