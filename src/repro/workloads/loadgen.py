"""Closed- and open-loop load generation over workload drivers.

Closed-loop generators (:func:`run_closed_loop` and friends) model a
fixed population of clients that wait for each transaction before
issuing the next.  The open-loop generator (:func:`run_open_loop`)
models arrival-rate-driven traffic YCSB-style: Poisson inter-arrivals at
a configured rate, zipfian key skew, a configurable read fraction, and
per-mode latency accounting -- the workload shape the read serving path
(``repro.reads``) exists for.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.process import spawn


class ZipfianGenerator:
    """Zipf-skewed key indices over ``[0, n)`` via a precomputed CDF.

    ``theta`` is the usual YCSB skew constant: 0 degenerates to uniform,
    0.99 is the YCSB default (a few keys absorb most of the traffic).
    Drawing costs one uniform variate and a binary search.
    """

    def __init__(self, n: int, theta: float = 0.99):
        if n <= 0:
            raise ValueError(f"ZipfianGenerator needs n > 0, got {n}")
        self.n = n
        self.theta = theta
        total = 0.0
        cdf: List[float] = []
        for rank in range(1, n + 1):
            total += 1.0 / rank**theta
            cdf.append(total)
        self._cdf = [weight / total for weight in cdf]
        self._cdf[-1] = 1.0  # guard against float round-off at the tail

    def draw(self, rng) -> int:
        return bisect.bisect_left(self._cdf, rng.random())


def latency_histogram(
    latencies: List[float], bins: int = 12
) -> List[Tuple[float, int]]:
    """Log-spaced (upper_bound, count) pairs covering *latencies*."""
    if not latencies:
        return []
    low = max(min(latencies), 1e-9)
    high = max(latencies)
    if high <= low:
        return [(high, len(latencies))]
    ratio = (high / low) ** (1.0 / bins)
    edges = [low * ratio ** (i + 1) for i in range(bins)]
    edges[-1] = high
    counts = [0] * bins
    for value in latencies:
        counts[min(bisect.bisect_left(edges, value), bins - 1)] += 1
    return list(zip(edges, counts))


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return math.nan
    ordered = sorted(values)
    return ordered[max(0, math.ceil(len(ordered) * fraction) - 1)]


@dataclasses.dataclass
class OpenLoopStats:
    """Outcome accounting for one open-loop run.

    Reads and writes are tracked separately; ``read_modes`` counts how
    each successful read was served (``lease`` / ``backup`` / ``cache`` /
    ``txn``), which is the serving-path tradeoff E19 reports.
    """

    issued_reads: int = 0
    issued_writes: int = 0
    reads_ok: int = 0
    reads_failed: int = 0
    writes_committed: int = 0
    writes_aborted: int = 0
    writes_unknown: int = 0
    read_modes: Dict[str, int] = dataclasses.field(default_factory=dict)
    read_latencies: List[float] = dataclasses.field(default_factory=list)
    write_latencies: List[float] = dataclasses.field(default_factory=list)
    read_staleness: List[float] = dataclasses.field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def issued(self) -> int:
        return self.issued_reads + self.issued_writes

    @property
    def completed(self) -> int:
        return (
            self.reads_ok
            + self.reads_failed
            + self.writes_committed
            + self.writes_aborted
            + self.writes_unknown
        )

    @property
    def drained(self) -> bool:
        return self.completed >= self.issued

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def read_mean_latency(self) -> float:
        if not self.read_latencies:
            return math.nan
        return sum(self.read_latencies) / len(self.read_latencies)

    @property
    def read_p99_latency(self) -> float:
        return _percentile(self.read_latencies, 0.99)

    @property
    def write_mean_latency(self) -> float:
        if not self.write_latencies:
            return math.nan
        return sum(self.write_latencies) / len(self.write_latencies)

    @property
    def read_throughput(self) -> float:
        if self.duration <= 0:
            return math.nan
        return self.reads_ok / self.duration

    @property
    def max_observed_staleness(self) -> float:
        return max(self.read_staleness, default=0.0)

    def read_histogram(self, bins: int = 12) -> List[Tuple[float, int]]:
        return latency_histogram(self.read_latencies, bins)

    def write_histogram(self, bins: int = 12) -> List[Tuple[float, int]]:
        return latency_histogram(self.write_latencies, bins)


def run_open_loop(
    runtime,
    driver,
    *,
    key: Callable[[int], str],
    n_keys: int,
    duration: float,
    rate: float,
    read_groupid: str = "kv",
    write_groupid: str = "clients",
    read_program: str = "read",
    write_program: str = "write",
    read_fraction: float = 0.9,
    theta: float = 0.99,
    max_staleness: Optional[float] = None,
    prefer: str = "primary",
    use_read_path: bool = True,
    value_of: Optional[Callable[[int], Any]] = None,
    stats: Optional[OpenLoopStats] = None,
    name: str = "openloop",
) -> OpenLoopStats:
    """Open-loop keyed get/put generation: Poisson arrivals, zipfian keys.

    A dispatcher process draws exponential inter-arrival gaps at *rate*
    ops per simulated time unit for *duration*, picks a key with
    :class:`ZipfianGenerator` skew *theta*, and fires each operation
    without waiting for the previous one (open loop -- queueing shows up
    as latency, not reduced offered load).  Reads go through
    :meth:`Driver.read` against *read_groupid* (honoring *max_staleness*
    and *prefer*, with the transactional *read_program* as fallback)
    unless ``use_read_path=False``, which sends every read down the full
    call path -- the paper-faithful baseline with an identical arrival
    and key sequence.  Writes always use the call path; committed writes
    feed the driver's commit-set cache via :meth:`Driver.note_write`.

    Returns the stats object, which fills in as the simulation runs;
    drive the sim past the window and drain with ``stats.drained``.
    """
    if stats is None:
        stats = OpenLoopStats()
    sim = runtime.sim
    stats.started_at = sim.now
    stats.finished_at = sim.now
    zipf = ZipfianGenerator(n_keys, theta)
    arrival_rng = runtime.sim.rng.fork(f"{name}/arrivals")
    key_rng = runtime.sim.rng.fork(f"{name}/keys")
    op_rng = runtime.sim.rng.fork(f"{name}/ops")

    def on_read_done(submitted_at: float):
        def cb(future) -> None:
            result = future.result()
            stats.read_latencies.append(sim.now - submitted_at)
            if result.ok:
                stats.reads_ok += 1
                stats.read_modes[result.mode] = (
                    stats.read_modes.get(result.mode, 0) + 1
                )
                stats.read_staleness.append(result.staleness)
            else:
                stats.reads_failed += 1
            stats.finished_at = sim.now

        return cb

    def on_baseline_read_done(submitted_at: float):
        def cb(future) -> None:
            outcome, _value = future.result()
            stats.read_latencies.append(sim.now - submitted_at)
            if outcome == "committed":
                stats.reads_ok += 1
                stats.read_modes["txn"] = stats.read_modes.get("txn", 0) + 1
                stats.read_staleness.append(0.0)
            else:
                stats.reads_failed += 1
            stats.finished_at = sim.now

        return cb

    def on_write_done(submitted_at: float, uid: str, value: Any):
        def cb(future) -> None:
            outcome, _result = future.result()
            stats.write_latencies.append(sim.now - submitted_at)
            if outcome == "committed":
                stats.writes_committed += 1
                driver.note_write(uid, value)
            elif outcome == "aborted":
                stats.writes_aborted += 1
            else:
                stats.writes_unknown += 1
            stats.finished_at = sim.now

        return cb

    def dispatcher():
        from repro.sim.process import sleep

        deadline = sim.now + duration
        sequence = 0
        while True:
            yield sleep(arrival_rng.expovariate(rate))
            if sim.now >= deadline:
                return
            uid = key(zipf.draw(key_rng))
            if op_rng.random() < read_fraction:
                stats.issued_reads += 1
                if use_read_path:
                    driver.read(
                        read_groupid,
                        uid,
                        max_staleness=max_staleness,
                        prefer=prefer,
                        fallback=(
                            write_groupid, read_program, (read_groupid, uid)
                        ),
                    ).add_done_callback(on_read_done(sim.now))
                else:
                    driver.call(
                        write_groupid, read_program, read_groupid, uid
                    ).add_done_callback(on_baseline_read_done(sim.now))
            else:
                sequence += 1
                value = sequence if value_of is None else value_of(sequence)
                stats.issued_writes += 1
                driver.call(
                    write_groupid, write_program, read_groupid, uid, value
                ).add_done_callback(on_write_done(sim.now, uid, value))

    spawn(sim, dispatcher(), name=f"{name}-dispatcher")
    return stats


@dataclasses.dataclass
class ClosedLoopStats:
    """Outcome accounting for one closed-loop run."""

    committed: int = 0
    aborted: int = 0
    unknown: int = 0
    latencies: List[float] = dataclasses.field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def submitted(self) -> int:
        return self.committed + self.aborted + self.unknown

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return math.nan
        return sum(self.latencies) / len(self.latencies)

    @property
    def p99_latency(self) -> float:
        if not self.latencies:
            return math.nan
        ordered = sorted(self.latencies)
        return ordered[max(0, math.ceil(len(ordered) * 0.99) - 1)]

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def throughput(self) -> float:
        if self.duration <= 0:
            return math.nan
        return self.committed / self.duration

    @property
    def abort_rate(self) -> float:
        if self.submitted == 0:
            return math.nan
        return self.aborted / self.submitted


@dataclasses.dataclass
class KeyedLoopStats(ClosedLoopStats):
    """Closed-loop stats plus per-job outcomes with shard attribution.

    ``results`` holds one (program, touched shard groupids, outcome)
    triple per finished job, so experiments can ask questions like "did
    any transaction *not* touching the crashed shard abort?".
    """

    results: List[Tuple[str, Tuple[str, ...], str]] = dataclasses.field(
        default_factory=list
    )

    def aborted_touching(self, groupid: str) -> int:
        return sum(
            1
            for _program, shards, outcome in self.results
            if outcome == "aborted" and groupid in shards
        )

    def aborted_elsewhere(self, groupid: str) -> int:
        return sum(
            1
            for _program, shards, outcome in self.results
            if outcome == "aborted" and groupid not in shards
        )


def run_keyed_loop(
    runtime,
    driver,
    sharded,
    jobs: Iterable[Tuple[str, tuple]],
    concurrency: int = 1,
    think_time: float = 0.0,
    stats: Optional[KeyedLoopStats] = None,
) -> KeyedLoopStats:
    """Closed-loop load through a sharded façade's key-addressed routing.

    Like :func:`run_closed_loop`, but each (program, args) job is routed
    by the façade's shard map via :meth:`Driver.call`, and every
    outcome is recorded with the shards the job touched.
    """
    if stats is None:
        stats = KeyedLoopStats()
    stats.started_at = runtime.sim.now
    job_iter = iter(list(jobs))
    sim = runtime.sim

    def worker():
        from repro.sim.process import sleep

        for program, args in job_iter:
            shards = sharded.touched_shards(program, tuple(args))
            submitted_at = sim.now
            outcome, _result = yield driver.call(sharded, program, *args)
            stats.latencies.append(sim.now - submitted_at)
            stats.results.append((program, shards, outcome))
            if outcome == "committed":
                stats.committed += 1
            elif outcome == "aborted":
                stats.aborted += 1
            else:
                stats.unknown += 1
            stats.finished_at = sim.now
            if think_time > 0:
                yield sleep(think_time)

    for index in range(concurrency):
        spawn(sim, worker(), name=f"keyed-loadgen-{index}")
    return stats


def run_closed_loop(
    runtime,
    driver,
    groupid: str,
    jobs: Iterable[Tuple[str, tuple]],
    concurrency: int = 1,
    think_time: float = 0.0,
    stats: Optional[ClosedLoopStats] = None,
) -> ClosedLoopStats:
    """Issue *jobs* ((program, args) pairs) through *driver*, closed-loop.

    Spawns *concurrency* worker processes that each take the next job when
    their previous transaction resolves.  Returns the stats object, which
    fills in as the simulation runs (call ``runtime.run_for(...)`` after).
    """
    if stats is None:
        stats = ClosedLoopStats()
    stats.started_at = runtime.sim.now
    job_iter = iter(list(jobs))
    sim = runtime.sim

    def worker():
        from repro.sim.process import sleep

        for program, args in job_iter:
            submitted_at = sim.now
            outcome, _result = yield driver.call(groupid, program, *args)
            stats.latencies.append(sim.now - submitted_at)
            if outcome == "committed":
                stats.committed += 1
            elif outcome == "aborted":
                stats.aborted += 1
            else:
                stats.unknown += 1
            stats.finished_at = sim.now
            if think_time > 0:
                yield sleep(think_time)

    for index in range(concurrency):
        spawn(sim, worker(), name=f"loadgen-{index}")
    return stats


def run_retry_loop(
    runtime,
    driver,
    groupid: str,
    jobs: Iterable[Tuple[str, tuple]],
    concurrency: int = 1,
    max_attempts: int = 25,
    stats: Optional[ClosedLoopStats] = None,
) -> ClosedLoopStats:
    """Closed loop that retries every job until it commits.

    Used by the cross-config determinism checks: with an
    every-write-eventually-commits workload of idempotent distinct-key
    writes, the *final replicated state* is independent of the schedule
    (loss, view changes, batching), so two configs can be compared by
    state digest even when they abort different interim attempts.
    ``stats.committed`` counts jobs (each exactly once); aborted/unknown
    count the extra attempts that were retried.
    """
    if stats is None:
        stats = ClosedLoopStats()
    stats.started_at = runtime.sim.now
    job_iter = iter(list(jobs))
    sim = runtime.sim

    def worker():
        for program, args in job_iter:
            submitted_at = sim.now
            for _attempt in range(max_attempts):
                outcome, _result = yield driver.call(groupid, program, *args)
                if outcome == "committed":
                    stats.committed += 1
                    break
                elif outcome == "aborted":
                    stats.aborted += 1
                else:
                    stats.unknown += 1
            stats.latencies.append(sim.now - submitted_at)
            stats.finished_at = sim.now

    for index in range(concurrency):
        spawn(sim, worker(), name=f"retry-loadgen-{index}")
    return stats
