"""Closed-loop load generation over workload drivers."""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Optional, Tuple

from repro.sim.process import spawn


@dataclasses.dataclass
class ClosedLoopStats:
    """Outcome accounting for one closed-loop run."""

    committed: int = 0
    aborted: int = 0
    unknown: int = 0
    latencies: List[float] = dataclasses.field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def submitted(self) -> int:
        return self.committed + self.aborted + self.unknown

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return math.nan
        return sum(self.latencies) / len(self.latencies)

    @property
    def p99_latency(self) -> float:
        if not self.latencies:
            return math.nan
        ordered = sorted(self.latencies)
        return ordered[max(0, math.ceil(len(ordered) * 0.99) - 1)]

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def throughput(self) -> float:
        if self.duration <= 0:
            return math.nan
        return self.committed / self.duration

    @property
    def abort_rate(self) -> float:
        if self.submitted == 0:
            return math.nan
        return self.aborted / self.submitted


@dataclasses.dataclass
class KeyedLoopStats(ClosedLoopStats):
    """Closed-loop stats plus per-job outcomes with shard attribution.

    ``results`` holds one (program, touched shard groupids, outcome)
    triple per finished job, so experiments can ask questions like "did
    any transaction *not* touching the crashed shard abort?".
    """

    results: List[Tuple[str, Tuple[str, ...], str]] = dataclasses.field(
        default_factory=list
    )

    def aborted_touching(self, groupid: str) -> int:
        return sum(
            1
            for _program, shards, outcome in self.results
            if outcome == "aborted" and groupid in shards
        )

    def aborted_elsewhere(self, groupid: str) -> int:
        return sum(
            1
            for _program, shards, outcome in self.results
            if outcome == "aborted" and groupid not in shards
        )


def run_keyed_loop(
    runtime,
    driver,
    sharded,
    jobs: Iterable[Tuple[str, tuple]],
    concurrency: int = 1,
    think_time: float = 0.0,
    stats: Optional[KeyedLoopStats] = None,
) -> KeyedLoopStats:
    """Closed-loop load through a sharded façade's key-addressed routing.

    Like :func:`run_closed_loop`, but each (program, args) job is routed
    by the façade's shard map via :meth:`Driver.call`, and every
    outcome is recorded with the shards the job touched.
    """
    if stats is None:
        stats = KeyedLoopStats()
    stats.started_at = runtime.sim.now
    job_iter = iter(list(jobs))
    sim = runtime.sim

    def worker():
        from repro.sim.process import sleep

        for program, args in job_iter:
            shards = sharded.touched_shards(program, tuple(args))
            submitted_at = sim.now
            outcome, _result = yield driver.call(sharded, program, *args)
            stats.latencies.append(sim.now - submitted_at)
            stats.results.append((program, shards, outcome))
            if outcome == "committed":
                stats.committed += 1
            elif outcome == "aborted":
                stats.aborted += 1
            else:
                stats.unknown += 1
            stats.finished_at = sim.now
            if think_time > 0:
                yield sleep(think_time)

    for index in range(concurrency):
        spawn(sim, worker(), name=f"keyed-loadgen-{index}")
    return stats


def run_closed_loop(
    runtime,
    driver,
    groupid: str,
    jobs: Iterable[Tuple[str, tuple]],
    concurrency: int = 1,
    think_time: float = 0.0,
    stats: Optional[ClosedLoopStats] = None,
) -> ClosedLoopStats:
    """Issue *jobs* ((program, args) pairs) through *driver*, closed-loop.

    Spawns *concurrency* worker processes that each take the next job when
    their previous transaction resolves.  Returns the stats object, which
    fills in as the simulation runs (call ``runtime.run_for(...)`` after).
    """
    if stats is None:
        stats = ClosedLoopStats()
    stats.started_at = runtime.sim.now
    job_iter = iter(list(jobs))
    sim = runtime.sim

    def worker():
        from repro.sim.process import sleep

        for program, args in job_iter:
            submitted_at = sim.now
            outcome, _result = yield driver.call(groupid, program, *args)
            stats.latencies.append(sim.now - submitted_at)
            if outcome == "committed":
                stats.committed += 1
            elif outcome == "aborted":
                stats.aborted += 1
            else:
                stats.unknown += 1
            stats.finished_at = sim.now
            if think_time > 0:
                yield sleep(think_time)

    for index in range(concurrency):
        spawn(sim, worker(), name=f"loadgen-{index}")
    return stats


def run_retry_loop(
    runtime,
    driver,
    groupid: str,
    jobs: Iterable[Tuple[str, tuple]],
    concurrency: int = 1,
    max_attempts: int = 25,
    stats: Optional[ClosedLoopStats] = None,
) -> ClosedLoopStats:
    """Closed loop that retries every job until it commits.

    Used by the cross-config determinism checks: with an
    every-write-eventually-commits workload of idempotent distinct-key
    writes, the *final replicated state* is independent of the schedule
    (loss, view changes, batching), so two configs can be compared by
    state digest even when they abort different interim attempts.
    ``stats.committed`` counts jobs (each exactly once); aborted/unknown
    count the extra attempts that were retried.
    """
    if stats is None:
        stats = ClosedLoopStats()
    stats.started_at = runtime.sim.now
    job_iter = iter(list(jobs))
    sim = runtime.sim

    def worker():
        for program, args in job_iter:
            submitted_at = sim.now
            for _attempt in range(max_attempts):
                outcome, _result = yield driver.call(groupid, program, *args)
                if outcome == "committed":
                    stats.committed += 1
                    break
                elif outcome == "aborted":
                    stats.aborted += 1
                else:
                    stats.unknown += 1
            stats.latencies.append(sim.now - submitted_at)
            stats.finished_at = sim.now

    for index in range(concurrency):
        spawn(sim, worker(), name=f"retry-loadgen-{index}")
    return stats
