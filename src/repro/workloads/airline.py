"""Airline reservation workload -- the paper's motivating example.

"Availability is essential to many computer-based services; for example,
in airline reservation systems the failure of a single computer can
prevent ticket sales for a considerable time, causing a loss of revenue
and passenger goodwill." (section 1)

Invariants checked by tests and the chaos experiments:

- a flight is never oversold: ``seats_left >= 0`` always;
- seats are conserved: ``seats_left + booked == capacity``.
"""

from __future__ import annotations

from repro.app.context import TransactionAborted
from repro.app.module import ModuleSpec, procedure, transaction_program


class AirlineSpec(ModuleSpec):
    """Flights with per-flight seat inventories."""

    def __init__(self, flights=("UA100", "BA200"), capacity: int = 20):
        self.flights = tuple(flights)
        self.capacity = capacity

    def initial_objects(self):
        objects = {}
        for flight in self.flights:
            objects[f"{flight}:left"] = self.capacity
            objects[f"{flight}:booked"] = 0
        return objects

    @procedure
    def reserve(self, ctx, flight, seats):
        left = yield ctx.read_for_update(f"{flight}:left")
        if left < seats:
            raise TransactionAborted(f"{flight} sold out ({left} < {seats})")
        booked = yield ctx.read_for_update(f"{flight}:booked")
        yield ctx.write(f"{flight}:left", left - seats)
        yield ctx.write(f"{flight}:booked", booked + seats)
        return left - seats

    @procedure
    def cancel(self, ctx, flight, seats):
        booked = yield ctx.read_for_update(f"{flight}:booked")
        if booked < seats:
            raise TransactionAborted(f"{flight}: cannot cancel {seats} of {booked}")
        left = yield ctx.read_for_update(f"{flight}:left")
        yield ctx.write(f"{flight}:booked", booked - seats)
        yield ctx.write(f"{flight}:left", left + seats)
        return booked - seats

    @procedure
    def availability(self, ctx, flight):
        left = yield ctx.read(f"{flight}:left")
        return left


@transaction_program
def book_trip_program(txn, airline_group, flight, seats):
    """Reserve seats on one flight."""
    left = yield txn.call(airline_group, "reserve", flight, seats)
    return left


@transaction_program
def round_trip_program(txn, airline_group, outbound, inbound, seats):
    """Reserve both legs atomically -- either both book or neither."""
    yield txn.call(airline_group, "reserve", outbound, seats)
    left = yield txn.call(airline_group, "reserve", inbound, seats)
    return left


def check_airline_invariants(group, spec: AirlineSpec) -> None:
    """Assert no-oversell and seat conservation at the current primary."""
    for flight in spec.flights:
        left = group.read_object(f"{flight}:left")
        booked = group.read_object(f"{flight}:booked")
        assert left >= 0, f"{flight} oversold: {left}"
        assert left + booked == spec.capacity, (
            f"{flight} seats not conserved: {left} + {booked} != {spec.capacity}"
        )
