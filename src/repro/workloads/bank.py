"""Bank workload: transfers with a conservation invariant.

Transfers move money between accounts (within one replicated bank group,
or across two groups via distributed 2PC); the total balance is invariant
under any interleaving of committed transfers, which makes this the
workhorse for safety checks under failure injection.
"""

from __future__ import annotations

from repro.app.context import TransactionAborted
from repro.app.module import ModuleSpec, procedure, transaction_program


class BankAccountsSpec(ModuleSpec):
    """A replicated set of accounts."""

    def __init__(self, n_accounts: int = 8, opening_balance: int = 100,
                 prefix: str = "acct"):
        self.n_accounts = n_accounts
        self.opening_balance = opening_balance
        self.prefix = prefix

    def account(self, index: int) -> str:
        return f"{self.prefix}{index % self.n_accounts}"

    def accounts(self):
        return [self.account(i) for i in range(self.n_accounts)]

    def initial_objects(self):
        return {account: self.opening_balance for account in self.accounts()}

    @procedure
    def deposit(self, ctx, account, amount):
        balance = yield ctx.read_for_update(account)
        yield ctx.write(account, balance + amount)
        return balance + amount

    @procedure
    def withdraw(self, ctx, account, amount):
        balance = yield ctx.read_for_update(account)
        if balance < amount:
            raise TransactionAborted(f"insufficient funds in {account}")
        yield ctx.write(account, balance - amount)
        return balance - amount

    @procedure
    def balance(self, ctx, account):
        value = yield ctx.read(account)
        return value

    @procedure
    def total(self, ctx, accounts):
        total = 0
        for account in accounts:
            value = yield ctx.read(account)
            total += value
        return total


@transaction_program
def transfer_program(txn, group, src, dst, amount):
    """Move money between two accounts of one bank group."""
    yield txn.call(group, "withdraw", src, amount)
    result = yield txn.call(group, "deposit", dst, amount)
    return result


@transaction_program
def cross_bank_transfer_program(txn, src_group, src, dst_group, dst, amount):
    """Distributed transfer: two participant groups under one 2PC."""
    yield txn.call(src_group, "withdraw", src, amount)
    result = yield txn.call(dst_group, "deposit", dst, amount)
    return result


@transaction_program
def deposit_program(txn, group, account, amount):
    result = yield txn.call(group, "deposit", account, amount)
    return result


@transaction_program
def audit_program(txn, group, accounts):
    """Read-only transaction summing balances (read-only 2PC path)."""
    total = yield txn.call(group, "total", list(accounts))
    return total


def total_balance(bank_group, spec: BankAccountsSpec) -> int:
    """Oracle total over the current primary's committed state."""
    return sum(bank_group.read_object(account) for account in spec.accounts())
