"""Workload generators and failure schedules for experiments and chaos tests."""

from repro.workloads.airline import AirlineSpec, book_trip_program
from repro.workloads.bank import (
    BankAccountsSpec,
    audit_program,
    cross_bank_transfer_program,
    deposit_program,
    transfer_program,
)
from repro.workloads.kv import KVStoreSpec, read_program, update_program, write_program
from repro.workloads.loadgen import (
    ClosedLoopStats,
    OpenLoopStats,
    ZipfianGenerator,
    latency_histogram,
    run_closed_loop,
    run_open_loop,
)
from repro.workloads.orders import (
    InventorySpec,
    OrderLogSpec,
    PaymentsSpec,
    check_order_invariants,
    place_order_program,
)
from repro.workloads.schedules import (
    CrashRecoverySchedule,
    PartitionSchedule,
    kill_primary_every,
)

__all__ = [
    "AirlineSpec",
    "BankAccountsSpec",
    "ClosedLoopStats",
    "CrashRecoverySchedule",
    "InventorySpec",
    "KVStoreSpec",
    "OpenLoopStats",
    "OrderLogSpec",
    "PaymentsSpec",
    "PartitionSchedule",
    "ZipfianGenerator",
    "audit_program",
    "book_trip_program",
    "check_order_invariants",
    "cross_bank_transfer_program",
    "deposit_program",
    "kill_primary_every",
    "latency_histogram",
    "place_order_program",
    "read_program",
    "run_closed_loop",
    "run_open_loop",
    "transfer_program",
    "update_program",
    "write_program",
]
