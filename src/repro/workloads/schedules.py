"""Compatibility shims over :mod:`repro.faults`.

The hand-rolled failure schedules that used to live here are now rules of
the declarative fault-injection subsystem (:class:`~repro.faults.Nemesis`
executed by a :class:`~repro.faults.FaultController`).  These wrappers
keep the old call signatures -- and, because the rules draw from the same
named RNG streams ("crash-schedule", "partition-schedule"), the old
per-seed behaviour -- while routing every injection through a controller
so it lands in the fault timeline, the metrics, and the ledger.

New code should use :mod:`repro.faults` directly; see ``docs/FAULTS.md``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.faults import FaultController, Nemesis


@dataclasses.dataclass
class CrashEvent:
    at: float
    node_id: str
    kind: str  # "crash" | "recover"


class CrashRecoverySchedule:
    """Poisson crash/recover churn over a group's nodes (legacy wrapper).

    Each node independently fails with exponential MTTF and recovers after
    exponential MTTR.  ``max_down`` caps simultaneous failures (set it to
    ``sub_majority`` to keep the group formable, or leave uncapped to allow
    catastrophes).
    """

    def __init__(
        self,
        runtime,
        nodes: List,
        mttf: float,
        mttr: float,
        max_down: Optional[int] = None,
        rng_name: str = "crash-schedule",
    ):
        self.runtime = runtime
        self.nodes = list(nodes)
        self.controller = FaultController(runtime)
        self._nemesis = Nemesis().crash_churn(
            [node.node_id for node in self.nodes],
            mttf=mttf,
            mttr=mttr,
            max_down=max_down,
            rng_name=rng_name,
        )

    def start(self) -> None:
        self.controller.execute(self._nemesis)

    def stop(self) -> None:
        self.controller.stop()

    @property
    def events(self) -> List[CrashEvent]:
        return [
            CrashEvent(at=event.at, node_id=event.target, kind=event.kind)
            for event in self.controller.timeline
            if event.kind in ("crash", "recover")
        ]


class PartitionSchedule:
    """Repeatedly partition nodes into two random blocks (legacy wrapper)."""

    def __init__(
        self,
        runtime,
        node_ids: List[str],
        mean_healthy: float,
        mean_partitioned: float,
        rng_name: str = "partition-schedule",
    ):
        self.runtime = runtime
        self.controller = FaultController(runtime)
        self._nemesis = Nemesis().partition_storm(
            list(node_ids),
            mean_healthy=mean_healthy,
            mean_partitioned=mean_partitioned,
            rng_name=rng_name,
        )

    def start(self) -> None:
        self.controller.execute(self._nemesis)

    def stop(self) -> None:
        self.controller.stop()
        self.runtime.network.heal()

    @property
    def partitions_formed(self) -> int:
        return self.controller.count("partition")


def kill_primary_every(runtime, group, interval: float, count: int,
                       recover_after: Optional[float] = None) -> FaultController:
    """Crash the group's current primary every *interval*, *count* times.

    With ``recover_after`` set, each victim recovers that much later
    (otherwise victims stay down, so keep ``count`` below the majority).
    Legacy wrapper around ``Nemesis().crash_primary(...)``.
    """
    controller = FaultController(runtime)
    controller.execute(
        Nemesis().crash_primary(
            group.groupid, every=interval, count=count, recover_after=recover_after
        )
    )
    return controller
