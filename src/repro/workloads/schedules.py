"""Failure schedules: crash/recover churn and partitions, seeded.

Used by the availability experiments (E6), the view-change-loss
experiments (E7), and the chaos integration tests.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.sim.process import sleep, spawn


@dataclasses.dataclass
class CrashEvent:
    at: float
    node_id: str
    kind: str  # "crash" | "recover"


class CrashRecoverySchedule:
    """Poisson crash/recover churn over a group's nodes.

    Each node independently fails with exponential MTTF and recovers after
    exponential MTTR.  ``max_down`` caps simultaneous failures (set it to
    ``sub_majority`` to keep the group formable, or leave uncapped to allow
    catastrophes).
    """

    def __init__(
        self,
        runtime,
        nodes: List,
        mttf: float,
        mttr: float,
        max_down: Optional[int] = None,
        rng_name: str = "crash-schedule",
    ):
        self.runtime = runtime
        self.nodes = list(nodes)
        self.mttf = mttf
        self.mttr = mttr
        self.max_down = max_down
        self.rng = runtime.sim.rng.fork(rng_name)
        self.events: List[CrashEvent] = []
        self._stopped = False

    def start(self) -> None:
        for node in self.nodes:
            spawn(self.runtime.sim, self._churn(node), name=f"churn:{node.node_id}")

    def stop(self) -> None:
        self._stopped = True

    def _down_count(self) -> int:
        return sum(1 for node in self.nodes if not node.up)

    def _churn(self, node):
        while not self._stopped:
            yield sleep(self.rng.expovariate(1.0 / self.mttf))
            if self._stopped:
                return
            if self.max_down is not None and self._down_count() >= self.max_down:
                continue  # hold off; too many already down
            if not node.up:
                continue
            node.crash()
            self.events.append(
                CrashEvent(at=self.runtime.sim.now, node_id=node.node_id, kind="crash")
            )
            yield sleep(self.rng.expovariate(1.0 / self.mttr))
            if node.up or self._stopped:
                continue
            node.recover()
            self.events.append(
                CrashEvent(at=self.runtime.sim.now, node_id=node.node_id, kind="recover")
            )


class PartitionSchedule:
    """Repeatedly partition a set of nodes into two random blocks and heal."""

    def __init__(
        self,
        runtime,
        node_ids: List[str],
        mean_healthy: float,
        mean_partitioned: float,
        rng_name: str = "partition-schedule",
    ):
        self.runtime = runtime
        self.node_ids = list(node_ids)
        self.mean_healthy = mean_healthy
        self.mean_partitioned = mean_partitioned
        self.rng = runtime.sim.rng.fork(rng_name)
        self.partitions_formed = 0
        self._stopped = False

    def start(self) -> None:
        spawn(self.runtime.sim, self._run(), name="partition-schedule")

    def stop(self) -> None:
        self._stopped = True
        self.runtime.network.heal()

    def _run(self):
        while not self._stopped:
            yield sleep(self.rng.expovariate(1.0 / self.mean_healthy))
            if self._stopped:
                return
            ids = list(self.node_ids)
            self.rng.shuffle(ids)
            cut = self.rng.randint(1, len(ids) - 1)
            self.runtime.network.partition([set(ids[:cut]), set(ids[cut:])])
            self.partitions_formed += 1
            yield sleep(self.rng.expovariate(1.0 / self.mean_partitioned))
            self.runtime.network.heal()


def kill_primary_every(runtime, group, interval: float, count: int,
                       recover_after: Optional[float] = None):
    """Crash the group's current primary every *interval*, *count* times.

    With ``recover_after`` set, each victim recovers that much later
    (otherwise victims stay down, so keep ``count`` below the majority).
    """

    def run():
        for _ in range(count):
            yield sleep(interval)
            primary = group.active_primary()
            if primary is None:
                continue
            victim = primary.node
            victim.crash()
            if recover_after is not None:
                runtime.sim.schedule(recover_after, victim.recover)

    return spawn(runtime.sim, run(), name=f"kill-primary:{group.groupid}")
