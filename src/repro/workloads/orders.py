"""Order-entry workload: three replicated services under one transaction.

A placed order spans three module groups -- inventory, payments, and the
order ledger -- so every order is a three-participant distributed
transaction.  Either the stock is reserved *and* the customer charged
*and* the order recorded, or none of it happened.  Invariants:

- stock conservation: ``stock_left + units_sold == initial_stock``;
- money conservation: customer balances + merchant revenue is constant;
- books match: ``units_sold`` equals the units recorded in the order log,
  and revenue equals the sum of recorded order prices.
"""

from __future__ import annotations

from repro.app.context import TransactionAborted
from repro.app.module import ModuleSpec, procedure, transaction_program


class InventorySpec(ModuleSpec):
    """Items with stock counts."""

    def __init__(self, items=("widget", "gadget"), stock: int = 50):
        self.items = tuple(items)
        self.stock = stock

    def initial_objects(self):
        objects = {}
        for item in self.items:
            objects[f"{item}:stock"] = self.stock
            objects[f"{item}:sold"] = 0
        return objects

    @procedure
    def reserve(self, ctx, item, quantity):
        stock = yield ctx.read_for_update(f"{item}:stock")
        if stock < quantity:
            raise TransactionAborted(f"{item} out of stock ({stock} < {quantity})")
        sold = yield ctx.read_for_update(f"{item}:sold")
        yield ctx.write(f"{item}:stock", stock - quantity)
        yield ctx.write(f"{item}:sold", sold + quantity)
        return stock - quantity

    @procedure
    def stock_left(self, ctx, item):
        value = yield ctx.read(f"{item}:stock")
        return value


class PaymentsSpec(ModuleSpec):
    """Customer balances plus the merchant's revenue account."""

    def __init__(self, customers=("alice", "bob"), balance: int = 500):
        self.customers = tuple(customers)
        self.balance = balance

    def initial_objects(self):
        objects = {customer: self.balance for customer in self.customers}
        objects["merchant:revenue"] = 0
        return objects

    @procedure
    def charge(self, ctx, customer, amount):
        balance = yield ctx.read_for_update(customer)
        if balance < amount:
            raise TransactionAborted(f"{customer} cannot pay {amount}")
        revenue = yield ctx.read_for_update("merchant:revenue")
        yield ctx.write(customer, balance - amount)
        yield ctx.write("merchant:revenue", revenue + amount)
        return balance - amount


class OrderLogSpec(ModuleSpec):
    """An append-style order ledger (one object per order slot)."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity

    def initial_objects(self):
        return {"order_count": 0}

    @procedure
    def record(self, ctx, customer, item, quantity, price):
        count = yield ctx.read_for_update("order_count")
        yield ctx.write("order_count", count + 1)
        yield ctx.write(
            f"order:{count}",
            {"customer": customer, "item": item, "quantity": quantity,
             "price": price},
        )
        return count


@transaction_program
def place_order_program(txn, customer, item, quantity, unit_price):
    """Reserve stock, charge the customer, record the order -- atomically."""
    price = quantity * unit_price
    yield txn.call("inventory", "reserve", item, quantity)
    yield txn.call("payments", "charge", customer, price)
    order_id = yield txn.call("orders", "record", customer, item, quantity, price)
    return order_id


def check_order_invariants(inventory_group, payments_group, orders_group,
                           inventory_spec: InventorySpec,
                           payments_spec: PaymentsSpec) -> None:
    """Assert the three-way books balance at the current primaries."""
    total_sold = 0
    for item in inventory_spec.items:
        stock = inventory_group.read_object(f"{item}:stock")
        sold = inventory_group.read_object(f"{item}:sold")
        assert stock >= 0, f"{item} oversold"
        assert stock + sold == inventory_spec.stock, f"{item} not conserved"
        total_sold += sold

    balances = sum(
        payments_group.read_object(customer)
        for customer in payments_spec.customers
    )
    revenue = payments_group.read_object("merchant:revenue")
    opening = payments_spec.balance * len(payments_spec.customers)
    assert balances + revenue == opening, "money not conserved"

    count = orders_group.read_object("order_count")
    recorded_units = 0
    recorded_value = 0
    for index in range(count):
        order = orders_group.read_object(f"order:{index}")
        recorded_units += order["quantity"]
        recorded_value += order["price"]
    assert recorded_units == total_sold, "order log disagrees with inventory"
    assert recorded_value == revenue, "order log disagrees with revenue"
