"""``python -m repro.scale``: the scale subsystem docs drift gate.

Subcommands::

    check-docs DOC
        Fail unless DOC mentions every ScaleConfig knob, the three scale
        trace events, the witness install message, the relayed-heartbeat
        detector entry point, and the scale CLIs (the docs-drift gate for
        docs/SCALE.md).

The determinism gate lives one module over:
``python -m repro.scale.gate``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.config import ScaleConfig

#: Trace event kinds the scale mechanisms emit.
SCALE_EVENT_KINDS = ("gossip_relay", "ack_tree", "witness_vote")

#: Wire vocabulary the mechanisms add.
SCALE_WIRE_TERMS = ("WitnessInstallMsg", "heard_relayed")

#: Command lines the doc must point readers at.
SCALE_CLIS = ("python -m repro.scale.gate", "python -m repro.scale check-docs")


def _check_docs(args) -> int:
    try:
        with open(args.doc, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        print(f"cannot read {args.doc}: {error}", file=sys.stderr)
        return 2
    knobs = tuple(field.name for field in dataclasses.fields(ScaleConfig))
    required = {
        "ScaleConfig knob": knobs,
        "event kind": SCALE_EVENT_KINDS,
        "wire term": SCALE_WIRE_TERMS,
        "CLI": SCALE_CLIS,
    }
    missing = [
        f"{category} {name!r}"
        for category, names in required.items()
        for name in names
        if name not in text
    ]
    if missing:
        print(f"{args.doc} is missing documentation for: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    total = sum(len(names) for names in required.values())
    print(f"{args.doc} documents all {total} scale terms "
          f"({len(knobs)} knobs, {len(SCALE_EVENT_KINDS)} event kinds, "
          f"{len(SCALE_WIRE_TERMS)} wire terms, {len(SCALE_CLIS)} CLIs)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scale", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser(
        "check-docs", help="fail unless DOC covers the scale vocabulary"
    )
    check.add_argument("doc")
    check.set_defaults(fn=_check_docs)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
