"""``python -m repro.scale.gate``: the scale determinism gate.

Runs one seeded retry-until-commit workload on a 7-cohort group under
each scale condition, each **twice**, and fails unless

- every run commits every write,
- the two same-seed runs of each condition agree byte-for-byte on
  metrics and on both digests (same seed => same run, with gossip, ack
  trees, and witnesses armed),
- ``scale=None`` and an all-off :class:`~repro.config.ScaleConfig`
  produce *ledger* digests byte-identical to each other -- disabled
  mechanisms cost nothing and perturb nothing, down to the schedule --
  and
- every armed mechanism's final replicated *state* digest is
  byte-identical to the baseline's (scaling mechanisms move messages
  and shift schedules; they may never change what the protocol
  computes).

This is CI's check that ``repro.scale`` is a dissemination/aggregation
plane, not a second protocol.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import ScaleConfig
from repro.harness.experiments_cohort import _scale_state_run

#: Gate conditions: None = the paper-faithful baseline; the all-off
#: ScaleConfig must be byte-identical to it, schedules included.
GATE_CONDITIONS = (
    ("baseline", None),
    ("all-off", ScaleConfig()),
    ("gossip", ScaleConfig(gossip=True)),
    ("acktree", ScaleConfig(ack_tree=True)),
    ("witness", ScaleConfig(witnesses=2)),
    ("all-on", ScaleConfig(gossip=True, ack_tree=True, witnesses=2)),
)

#: Conditions whose *schedule* (ledger digest) must match the baseline's.
SCHEDULE_IDENTICAL = ("baseline", "all-off")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], prog="python -m repro.scale.gate"
    )
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--txns", type=int, default=32)
    parser.add_argument("--cohorts", type=int, default=7)
    args = parser.parse_args(argv)

    failed = False
    baseline_ledger = None
    baseline_state = None
    for label, scale in GATE_CONDITIONS:
        runs = [
            _scale_state_run(
                args.seed, scale, txns=args.txns, n_cohorts=args.cohorts
            )
            for _ in range(2)
        ]
        metrics, ledger, state = runs[0]
        print(
            f"{label:>10}: writes={metrics['writes_committed']} "
            f"msgs={metrics['messages']} ledger={ledger[:12]}... "
            f"state={state[:12]}..."
        )
        if runs[0] != runs[1]:
            print(
                f"scalegate: FAIL -- {label} same-seed runs diverged:\n"
                f"  {runs[0]}\n  {runs[1]}",
                file=sys.stderr,
            )
            failed = True
        if metrics["writes_committed"] != args.txns:
            print(
                f"scalegate: FAIL -- {label} committed only "
                f"{metrics['writes_committed']}/{args.txns} writes",
                file=sys.stderr,
            )
            failed = True
        if label == "baseline":
            baseline_ledger = ledger
            baseline_state = state
            continue
        if label in SCHEDULE_IDENTICAL and ledger != baseline_ledger:
            print(
                f"scalegate: FAIL -- {label} schedule (ledger digest) "
                f"diverged from scale=None; disabled mechanisms must be "
                f"byte-identical:\n  {baseline_ledger}\n  {ledger}",
                file=sys.stderr,
            )
            failed = True
        if state != baseline_state:
            print(
                f"scalegate: FAIL -- {label} state digest diverged from "
                f"the baseline:\n  {baseline_state}\n  {state}",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print(
        f"scalegate: OK ({len(GATE_CONDITIONS)} conditions x 2 same-seed "
        "runs; all-off byte-identical to scale=None; armed states "
        "byte-identical to the baseline)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
