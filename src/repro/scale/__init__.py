"""repro.scale: mechanisms that keep large cohorts tractable (docs/SCALE.md).

VR'88 assumes every backup talks directly to the primary: I'm-alive
traffic is all-to-all and buffer-ack fan-in makes the primary an O(n)
hot spot.  "Can 100 Machines Agree?" (PAPERS.md) shows agreement
protocols degrade qualitatively around n=100; this package adds the
three classic remedies, each independently toggleable through
:class:`repro.config.ScaleConfig` and each *off by the absence of the
config* -- ``ProtocolConfig.scale is None`` (or a ScaleConfig with every
mechanism off) replays the paper-faithful schedules byte-for-byte,
proven by ``python -m repro.scale.gate`` and the ``scale_overhead``
perf scenario:

- **gossip heartbeats** -- each cohort heartbeats ``gossip_fanout``
  seeded-random peers per period, attaching fresh liveness *evidence*
  (``(mid, heard_at)`` pairs); receivers fold relayed evidence into the
  accrual detector via :meth:`repro.detect.FailureDetector.heard_relayed`,
  which advances last-heard without polluting the RTT or inter-arrival
  estimators (a relay hop is not an RTT sample);
- **ack trees** -- storage backups forward cumulative buffer acks up a
  deterministic ``ack_fanout``-ary tree (:class:`AckTree`, sorted by
  module id) instead of straight to the primary, coalescing their
  subtree's ``(mid, acked_ts)`` pairs for ``ack_delay`` first;
- **witness replicas** -- the highest ``witnesses`` module ids vote in
  view formation but hold no event buffer, shrinking replication
  fan-out; :func:`witness_mids` / :func:`validate_witnesses` bound them
  by ``n - majority(n)`` so force quorums stay all-storage.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.core.view import majority

__all__ = [
    "AckTree",
    "max_witnesses",
    "storage_size",
    "validate_witnesses",
    "witness_mids",
]


def max_witnesses(config_size: int) -> int:
    """Most witnesses a *config_size*-member group can afford.

    A force waits on ``sub_majority`` storage-backup acks, i.e. the event
    reaches ``majority(n)`` members counting the primary.  For that quorum
    to exist among storage members alone -- witnesses hold no buffer --
    at least ``majority(n)`` members must be storage, leaving at most
    ``n - majority(n)`` witnesses.
    """
    return max(0, config_size - majority(config_size))


def witness_mids(config_size: int, witnesses: int) -> FrozenSet[int]:
    """The witness module ids: the highest *witnesses* mids of the group.

    Deterministic by construction (mids are dense 0..n-1), and never
    includes mid 0, the seed view's primary.
    """
    if witnesses <= 0:
        return frozenset()
    return frozenset(range(config_size - witnesses, config_size))


def storage_size(config_size: int, witnesses: int) -> int:
    """Members that hold an event buffer (primary included)."""
    return config_size - max(0, witnesses)


def validate_witnesses(config_size: int, witnesses: int) -> None:
    """Raise ValueError unless *witnesses* leaves an all-storage force quorum."""
    if witnesses < 0:
        raise ValueError(f"witnesses must be >= 0, got {witnesses}")
    limit = max_witnesses(config_size)
    if witnesses > limit:
        raise ValueError(
            f"witnesses={witnesses} exceeds the bound for a "
            f"{config_size}-member group: at most {limit} members may be "
            f"bufferless (a force quorum needs majority({config_size})="
            f"{majority(config_size)} storage members)"
        )


class AckTree:
    """The deterministic fan-in tree buffer acks climb toward the primary.

    Built over the current view's *storage* backups sorted ascending by
    module id; node ``i`` (0-based in that order) reports to the primary
    when ``i < fanout`` and to node ``i // fanout - 1`` otherwise, so the
    primary hears from at most ``fanout`` tree roots and every interior
    node from at most ``fanout`` children.  Everyone computes the same
    tree from the same view, with no coordination.
    """

    __slots__ = ("primary", "order", "index", "fanout")

    def __init__(self, primary: int, backups: Iterable[int], fanout: int):
        self.primary = primary
        self.order: Tuple[int, ...] = tuple(sorted(backups))
        self.index = {mid: i for i, mid in enumerate(self.order)}
        self.fanout = max(1, fanout)

    def parent(self, mid: int) -> int:
        """Where *mid* sends its (aggregated) ack; primary for roots."""
        i = self.index.get(mid)
        if i is None or i < self.fanout:
            return self.primary
        return self.order[i // self.fanout - 1]

    def children(self, mid: int) -> Tuple[int, ...]:
        """The mids whose acks *mid* aggregates (empty for leaves)."""
        i = self.index.get(mid)
        if i is None:
            return ()
        base = self.fanout * (i + 1)
        return self.order[base:base + self.fanout]
