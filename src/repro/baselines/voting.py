"""Quorum-consensus (voting) replication, after Gifford [16] (section 5).

"The best known replication technique is voting.  With voting, write
operations are usually performed at all cohorts, and reads are performed
at only one cohort, but in general writes can be performed at a majority
of cohorts and reads at enough cohorts that each read will intersect each
write at at least one cohort."

Operation-level implementation (the altitude of the paper's comparison):

- **read(key)**: query a read quorum of ``r`` replicas; the result is the
  value with the highest version number.
- **write(key, value)**: two rounds at a write quorum of ``w`` replicas --
  lock-and-read-version, then write-and-unlock with version ``max + 1``.
  A denied lock (concurrent writer) releases and retries after backoff;
  this is where the paper notes voting "can deadlock if messages for
  concurrent updates arrive at the cohorts in different orders" -- our
  try-lock variant converts the deadlock into retries, which the metrics
  expose as extra messages.

Requires ``r + w > n`` and ``w > n/2`` so quorums intersect.  An operation
succeeds only if a full quorum responds: with write-all (w = n) a single
crashed replica blocks all writes -- exactly the availability contrast
experiment E6 measures against viewstamped replication.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Tuple

from repro.net.messages import Message
from repro.sim.future import Future
from repro.sim.node import Actor, Node


# -- wire messages ----------------------------------------------------------


@dataclasses.dataclass(slots=True)
class VoteReadReq(Message):
    op_id: int
    key: str
    reply_to: str


@dataclasses.dataclass(slots=True)
class VoteReadReply(Message):
    op_id: int
    key: str
    value: Any
    version: int
    replica: int


@dataclasses.dataclass(slots=True)
class VoteLockReq(Message):
    op_id: int
    key: str
    reply_to: str


@dataclasses.dataclass(slots=True)
class VoteLockReply(Message):
    op_id: int
    key: str
    granted: bool
    version: int
    replica: int


@dataclasses.dataclass(slots=True)
class VoteWriteReq(Message):
    op_id: int
    key: str
    value: Any
    version: int
    reply_to: str


@dataclasses.dataclass(slots=True)
class VoteWriteReply(Message):
    op_id: int
    key: str
    replica: int


@dataclasses.dataclass(slots=True)
class VoteUnlockReq(Message):
    op_id: int
    key: str


# -- replica -----------------------------------------------------------------


class VotingReplica(Actor):
    """One voting replica: versioned values plus per-key write locks."""

    def __init__(self, node: Node, runtime, address: str, initial: Dict[str, Any]):
        super().__init__(node, address)
        self.runtime = runtime
        self.store: Dict[str, Tuple[Any, int]] = {
            key: (value, 0) for key, value in initial.items()
        }
        self.locks: Dict[str, int] = {}  # key -> holding op_id
        self.replica_id = int(address.rsplit("/", 1)[1])
        runtime.network.register(self)

    def handle_message(self, message, source: str) -> None:
        if isinstance(message, VoteReadReq):
            value, version = self.store.get(message.key, (None, -1))
            self._send(
                message.reply_to,
                VoteReadReply(
                    op_id=message.op_id,
                    key=message.key,
                    value=value,
                    version=version,
                    replica=self.replica_id,
                ),
            )
        elif isinstance(message, VoteLockReq):
            holder = self.locks.get(message.key)
            granted = holder is None or holder == message.op_id
            if granted:
                self.locks[message.key] = message.op_id
            _value, version = self.store.get(message.key, (None, -1))
            self._send(
                message.reply_to,
                VoteLockReply(
                    op_id=message.op_id,
                    key=message.key,
                    granted=granted,
                    version=version,
                    replica=self.replica_id,
                ),
            )
        elif isinstance(message, VoteWriteReq):
            if self.locks.get(message.key) == message.op_id:
                current = self.store.get(message.key, (None, -1))
                if message.version > current[1]:
                    self.store[message.key] = (message.value, message.version)
                del self.locks[message.key]
                self._send(
                    message.reply_to,
                    VoteWriteReply(
                        op_id=message.op_id, key=message.key, replica=self.replica_id
                    ),
                )
        elif isinstance(message, VoteUnlockReq):
            if self.locks.get(message.key) == message.op_id:
                del self.locks[message.key]

    def _send(self, destination: str, message) -> None:
        self.runtime.network.send(self.address, destination, message)

    def on_crash(self) -> None:
        self.locks.clear()  # volatile; versions persist in memory semantics
        # A real voting system logs versions stably; we keep the store so a
        # recovered replica rejoins with its last state (Gifford's
        # representatives were stable).


@dataclasses.dataclass
class _PendingOp:
    kind: str  # "read" | "write-lock" | "write-commit"
    key: str
    future: Future
    quorum: Tuple[str, ...]
    needed: int
    replies: list = dataclasses.field(default_factory=list)
    value: Any = None
    retries_left: int = 4
    timer: Any = None


class VotingSystem:
    """Factory wiring n replicas onto their own nodes."""

    def __init__(self, runtime, name: str, n: int, initial: Dict[str, Any]):
        self.runtime = runtime
        self.name = name
        self.n = n
        self.replicas = []
        for index in range(n):
            node = runtime.create_node(f"{name}-n{index}")
            self.replicas.append(
                VotingReplica(node, runtime, f"{name}/{index}", initial)
            )

    def addresses(self) -> Tuple[str, ...]:
        return tuple(replica.address for replica in self.replicas)

    def read_value(self, key: str):
        """Oracle read of the latest committed version (test helper)."""
        best = (None, -1)
        for replica in self.replicas:
            entry = replica.store.get(key, (None, -1))
            if entry[1] > best[1]:
                best = entry
        return best[0]


class VotingClient(Actor):
    """Performs quorum reads and writes against a :class:`VotingSystem`."""

    def __init__(
        self,
        node: Node,
        runtime,
        address: str,
        system: VotingSystem,
        read_quorum: int,
        write_quorum: int,
        op_timeout: float = 30.0,
    ):
        if read_quorum + write_quorum <= system.n:
            raise ValueError("quorums must intersect: r + w > n")
        if 2 * write_quorum <= system.n:
            raise ValueError("write quorums must intersect: w > n/2")
        super().__init__(node, address)
        self.runtime = runtime
        self.system = system
        self.read_quorum = read_quorum
        self.write_quorum = write_quorum
        self.op_timeout = op_timeout
        self._ops: Dict[int, _PendingOp] = {}
        self._next_op = 0
        self._rng = runtime.sim.rng.fork(f"voting/{address}")
        runtime.network.register(self)

    # -- API ----------------------------------------------------------------

    def read(self, key: str) -> Future:
        """Read from a read quorum; resolves to the freshest value."""
        op_id, future = self._new_op()
        quorum = self._pick_quorum(self.read_quorum)
        self._ops[op_id] = _PendingOp(
            kind="read", key=key, future=future, quorum=quorum, needed=len(quorum)
        )
        for address in quorum:
            self._send(address, VoteReadReq(op_id=op_id, key=key, reply_to=self.address))
        self._arm(op_id)
        return future

    def write(self, key: str, value: Any) -> Future:
        """Write at a write quorum; resolves to the new version number."""
        op_id, future = self._new_op()
        self._start_write_round(op_id, key, value, future, retries_left=4)
        return future

    def _start_write_round(self, op_id, key, value, future, retries_left) -> None:
        quorum = self._pick_quorum(self.write_quorum)
        self._ops[op_id] = _PendingOp(
            kind="write-lock",
            key=key,
            future=future,
            quorum=quorum,
            needed=len(quorum),
            value=value,
            retries_left=retries_left,
        )
        for address in quorum:
            self._send(address, VoteLockReq(op_id=op_id, key=key, reply_to=self.address))
        self._arm(op_id)

    # -- replies ------------------------------------------------------------

    def handle_message(self, message, source: str) -> None:
        op = self._ops.get(getattr(message, "op_id", -1))
        if op is None:
            # Stray reply for a finished/abandoned op; release any lock.
            if isinstance(message, VoteLockReply) and message.granted:
                self._send(source, VoteUnlockReq(op_id=message.op_id, key=message.key))
            return
        if isinstance(message, VoteReadReply) and op.kind == "read":
            op.replies.append(message)
            if len(op.replies) >= op.needed:
                best = max(op.replies, key=lambda reply: reply.version)
                self._finish(message.op_id, best.value)
        elif isinstance(message, VoteLockReply) and op.kind == "write-lock":
            op.replies.append(message)
            if not message.granted:
                self._abandon_write(message.op_id, "lock denied")
                return
            if len(op.replies) >= op.needed:
                version = max(reply.version for reply in op.replies) + 1
                op.kind = "write-commit"
                op.replies = []
                for address in op.quorum:
                    self._send(
                        address,
                        VoteWriteReq(
                            op_id=message.op_id,
                            key=op.key,
                            value=op.value,
                            version=version,
                            reply_to=self.address,
                        ),
                    )
                op.value = version
        elif isinstance(message, VoteWriteReply) and op.kind == "write-commit":
            op.replies.append(message)
            if len(op.replies) >= op.needed:
                self._finish(message.op_id, op.value)

    # -- internals -----------------------------------------------------------

    def _new_op(self) -> Tuple[int, Future]:
        self._next_op += 1
        return self._next_op, Future(label=f"vote-op:{self._next_op}")

    def _pick_quorum(self, size: int) -> Tuple[str, ...]:
        addresses = list(self.system.addresses())
        self._rng.shuffle(addresses)
        return tuple(addresses[:size])

    def _send(self, destination: str, message) -> None:
        self.runtime.network.send(self.address, destination, message)

    def _arm(self, op_id: int) -> None:
        op = self._ops.get(op_id)
        if op is not None:
            op.timer = self.set_timer(self.op_timeout, self._on_timeout, op_id)

    def _on_timeout(self, op_id: int) -> None:
        op = self._ops.get(op_id)
        if op is None:
            return
        if op.kind == "read":
            if op.retries_left > 0:
                op.retries_left -= 1
                op.quorum = self._pick_quorum(self.read_quorum)
                op.replies = []
                for address in op.quorum:
                    self._send(
                        address, VoteReadReq(op_id=op_id, key=op.key, reply_to=self.address)
                    )
                self._arm(op_id)
            else:
                self._fail(op_id, "read quorum unavailable")
        else:
            self._abandon_write(op_id, "write quorum unavailable")

    def _abandon_write(self, op_id: int, reason: str) -> None:
        op = self._ops.pop(op_id, None)
        if op is None:
            return
        if op.timer is not None:
            op.timer.cancel()
        for address in op.quorum:
            self._send(address, VoteUnlockReq(op_id=op_id, key=op.key))
        if op.retries_left > 0 and op.kind == "write-lock":
            value = op.value
            future = op.future
            delay = self._rng.uniform(1.0, 5.0)
            self.set_timer(
                delay,
                self._start_write_round,
                op_id,
                op.key,
                value,
                future,
                op.retries_left - 1,
            )
        else:
            if not op.future.done:
                op.future.set_exception(RuntimeError(reason))

    def _finish(self, op_id: int, value: Any) -> None:
        op = self._ops.pop(op_id, None)
        if op is None:
            return
        if op.timer is not None:
            op.timer.cancel()
        if not op.future.done:
            op.future.set_result(value)

    def _fail(self, op_id: int, reason: str) -> None:
        op = self._ops.pop(op_id, None)
        if op is None:
            return
        if op.timer is not None:
            op.timer.cancel()
        if not op.future.done:
            op.future.set_exception(RuntimeError(reason))
