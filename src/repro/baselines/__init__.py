"""Baseline systems the paper compares against (section 5).

- :mod:`repro.baselines.unreplicated` -- a conventional non-replicated
  transaction system with stable storage (section 3.7's correspondence).
- :mod:`repro.baselines.voting` -- Gifford-style quorum consensus
  (read-one/write-all and majority quorums) at the operation level.
- :mod:`repro.baselines.pair` -- a Tandem-style primary/backup pair.
- :mod:`repro.baselines.isis_like` -- Isis-style effect piggybacking with
  byte accounting.
- :mod:`repro.baselines.virtual_partitions` -- the three-phase virtual
  partitions view-change protocol, for message/round cost comparison.
"""

from repro.baselines.unreplicated import build_unreplicated_system
from repro.baselines.voting import VotingClient, VotingSystem
from repro.baselines.pair import PairClient, PairSystem
from repro.baselines.isis_like import IsisClient, IsisSystem
from repro.baselines.virtual_partitions import VirtualPartitionsGroup

__all__ = [
    "IsisClient",
    "IsisSystem",
    "PairClient",
    "PairSystem",
    "VirtualPartitionsGroup",
    "VotingClient",
    "VotingSystem",
    "build_unreplicated_system",
]
