"""Tandem-style primary/backup pair (section 5).

"Tandem's Nonstop system and the Auragen system are primary copy methods
but there is just one backup, so they can survive only a single failure.
Furthermore, the primary/backup pair must reside at a single node
(containing multiple processors).  If these constraints are acceptable,
these methods are efficient.  Ours is more general."

Operation-level implementation: the primary applies each operation and
synchronously checkpoints it to its single backup before replying.  If the
primary fails, the backup takes over immediately (the shared chassis means
failure detection is reliable and partitions between the pair are
impossible -- we model that by never injecting partitions between the two
and using a short takeover timeout).  A second failure leaves the pair
dead: experiment E13 measures exactly that cliff against a 3- or 5-cohort
viewstamped group.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from repro.net.messages import Message
from repro.sim.future import Future
from repro.sim.node import Actor, Node


@dataclasses.dataclass(slots=True)
class PairOpReq(Message):
    op_id: int
    op: str  # "read" | "write" | "add"
    key: str
    value: Any
    reply_to: str


@dataclasses.dataclass(slots=True)
class PairOpReply(Message):
    op_id: int
    result: Any


@dataclasses.dataclass(slots=True)
class PairCheckpoint(Message):
    seq: int
    key: str
    value: Any


@dataclasses.dataclass(slots=True)
class PairCheckpointAck(Message):
    seq: int


@dataclasses.dataclass(slots=True)
class PairPing(Message):
    pass


class PairMember(Actor):
    """One half of the pair; role (primary/backup) can flip once."""

    def __init__(
        self,
        node: Node,
        runtime,
        address: str,
        peer_address: str,
        is_primary: bool,
        initial: Dict[str, Any],
        takeover_timeout: float = 25.0,
    ):
        super().__init__(node, address)
        self.runtime = runtime
        self.peer_address = peer_address
        self.is_primary = is_primary
        self.store: Dict[str, Any] = dict(initial)
        self.takeover_timeout = takeover_timeout
        self._seq = 0
        self._pending: Dict[int, Tuple[PairOpReq, Any]] = {}  # seq -> (req, result)
        self._last_peer_heard = 0.0
        runtime.network.register(self)
        self._arm_watchdog()
        self._arm_ping()

    # -- liveness ------------------------------------------------------------

    def _arm_ping(self) -> None:
        self._send(self.peer_address, PairPing())
        self.set_timer(5.0, self._arm_ping)

    def _arm_watchdog(self) -> None:
        if not self.is_primary:
            silence = self.sim.now - self._last_peer_heard
            if self._last_peer_heard > 0 and silence > self.takeover_timeout:
                self.is_primary = True  # takeover
                self.runtime.metrics.incr("pair_takeovers")
        self.set_timer(5.0, self._arm_watchdog)

    # -- messages -------------------------------------------------------------

    def handle_message(self, message, source: str) -> None:
        if isinstance(message, PairPing):
            self._last_peer_heard = self.sim.now
            return
        if isinstance(message, PairOpReq):
            self._handle_op(message)
        elif isinstance(message, PairCheckpoint):
            self._last_peer_heard = self.sim.now
            self.store[message.key] = message.value
            self._send(source, PairCheckpointAck(seq=message.seq))
        elif isinstance(message, PairCheckpointAck):
            entry = self._pending.pop(message.seq, None)
            if entry is not None:
                request, result = entry
                self._send(request.reply_to, PairOpReply(op_id=request.op_id, result=result))

    def _handle_op(self, request: PairOpReq) -> None:
        if not self.is_primary:
            return  # clients discover the new primary by probing both halves
        if request.op == "read":
            self._send(
                request.reply_to,
                PairOpReply(op_id=request.op_id, result=self.store.get(request.key)),
            )
            return
        if request.op == "write":
            result = request.value
        elif request.op == "add":
            result = self.store.get(request.key, 0) + request.value
        else:
            return
        self.store[request.key] = result
        peer_node = self.runtime.network.node_of(self.peer_address)
        if peer_node is not None and peer_node.up:
            self._seq += 1
            self._pending[self._seq] = (request, result)
            self._send(
                self.peer_address,
                PairCheckpoint(seq=self._seq, key=request.key, value=result),
            )
        else:
            # Running solo after the partner died -- reply immediately.
            self._send(request.reply_to, PairOpReply(op_id=request.op_id, result=result))

    def _send(self, destination: str, message) -> None:
        self.runtime.network.send(self.address, destination, message)

    def on_crash(self) -> None:
        self._pending.clear()


class PairSystem:
    """A primary/backup pair on two nodes."""

    def __init__(self, runtime, name: str, initial: Dict[str, Any]):
        self.runtime = runtime
        self.name = name
        node_a = runtime.create_node(f"{name}-nA")
        node_b = runtime.create_node(f"{name}-nB")
        self.primary = PairMember(
            node_a, runtime, f"{name}/A", f"{name}/B", True, initial
        )
        self.backup = PairMember(
            node_b, runtime, f"{name}/B", f"{name}/A", False, initial
        )

    def members(self):
        return (self.primary, self.backup)

    def addresses(self) -> Tuple[str, str]:
        return (self.primary.address, self.backup.address)

    def alive_primary(self) -> Optional[PairMember]:
        for member in self.members():
            if member.node.up and member.is_primary:
                return member
        return None


class PairClient(Actor):
    """Submits operations, failing over between the two halves."""

    def __init__(self, node: Node, runtime, address: str, system: PairSystem,
                 op_timeout: float = 30.0):
        super().__init__(node, address)
        self.runtime = runtime
        self.system = system
        self.op_timeout = op_timeout
        self._next_op = 0
        self._pending: Dict[int, dict] = {}
        runtime.network.register(self)

    def op(self, op: str, key: str, value: Any = None) -> Future:
        self._next_op += 1
        op_id = self._next_op
        future = Future(label=f"pair-op:{op_id}")
        state = {
            "future": future,
            "request": PairOpReq(op_id=op_id, op=op, key=key, value=value,
                                 reply_to=self.address),
            "targets": list(self.system.addresses()),
            "tries": 4,
        }
        self._pending[op_id] = state
        self._transmit(op_id)
        return future

    def read(self, key: str) -> Future:
        return self.op("read", key)

    def write(self, key: str, value: Any) -> Future:
        return self.op("write", key, value)

    def add(self, key: str, delta: Any) -> Future:
        return self.op("add", key, delta)

    def _transmit(self, op_id: int) -> None:
        state = self._pending.get(op_id)
        if state is None:
            return
        if state["tries"] <= 0:
            self._pending.pop(op_id, None)
            if not state["future"].done:
                state["future"].set_exception(RuntimeError("pair unavailable"))
            return
        state["tries"] -= 1
        # Try both halves; only the current primary answers.
        for address in state["targets"]:
            self.runtime.network.send(self.address, address, state["request"])
        state["timer"] = self.set_timer(self.op_timeout, self._transmit, op_id)

    def handle_message(self, message, source: str) -> None:
        if isinstance(message, PairOpReply):
            state = self._pending.pop(message.op_id, None)
            if state is None:
                return
            if state.get("timer") is not None:
                state["timer"].cancel()
            if not state["future"].done:
                state["future"].set_result(message.result)
