"""Isis-style replication with effect piggybacking (section 5).

"In Isis, calls are sent to a single cohort...  the cohort communicates the
effects of reads and writes to other cohorts in background mode, and
piggybacks them on reply messages.  This piggybacked information
accompanies all future client messages, including calls to other servers
as well as prepare and commit messages...  Unlike our pset, however,
piggybacked information in Isis cannot be discarded when transactions
commit.  A disadvantage of Isis is the large amount of extra information
flowing on every message, and the difficulty in garbage collecting that
information."

This baseline reproduces exactly that byte-flow behaviour (experiment E9):

- a call goes to *any* cohort of the group;
- writes acquire locks at all cohorts (simplified two-round write-lock
  acquisition), reads lock locally;
- the cohort returns the call's effects in the reply's piggyback;
- the client accumulates every effect it has ever seen and attaches the
  whole set to **every** subsequent message -- there is no commit-time
  discard, so the payload grows without bound;
- cohorts apply piggybacked effects they have not yet seen, which is what
  lets any cohort serve any later call without waiting for background
  propagation.

Byte volumes are measured by the network metrics via each message's
structural size, so the comparison against viewstamped replication's psets
is apples-to-apples.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Set, Tuple

from repro.net.messages import Message
from repro.sim.future import Future
from repro.sim.node import Actor, Node


@dataclasses.dataclass(frozen=True)
class Effect:
    """One recorded state change, identified globally."""

    effect_id: int
    key: str
    value: Any


@dataclasses.dataclass(slots=True)
class IsisCallReq(Message):
    op_id: int
    op: str  # "read" | "write" | "add"
    key: str
    value: Any
    reply_to: str
    piggyback: Tuple[Effect, ...] = ()


@dataclasses.dataclass(slots=True)
class IsisCallReply(Message):
    op_id: int
    result: Any
    piggyback: Tuple[Effect, ...] = ()


@dataclasses.dataclass(slots=True)
class IsisWriteLockReq(Message):
    op_id: int
    key: str
    reply_to: str
    piggyback: Tuple[Effect, ...] = ()


@dataclasses.dataclass(slots=True)
class IsisWriteLockReply(Message):
    op_id: int
    granted: bool
    replica: int


@dataclasses.dataclass(slots=True)
class IsisBackgroundEffects(Message):
    effects: Tuple[Effect, ...] = ()


class IsisCohort(Actor):
    """One Isis-style cohort of a replicated group."""

    def __init__(self, node: Node, runtime, address: str, initial: Dict[str, Any],
                 peers: List[str]):
        super().__init__(node, address)
        self.runtime = runtime
        self.peers = peers  # filled by IsisSystem after construction
        self.store: Dict[str, Any] = dict(initial)
        self.seen_effects: Set[int] = set()
        self.locks: Dict[str, int] = {}
        self.replica_id = int(address.rsplit("/", 1)[1])
        self._pending_writes: Dict[int, dict] = {}
        self._next_effect = 0
        runtime.network.register(self)

    # -- effects ------------------------------------------------------------

    def _apply_piggyback(self, effects: Tuple[Effect, ...]) -> None:
        for effect in effects:
            if effect.effect_id not in self.seen_effects:
                self.seen_effects.add(effect.effect_id)
                self.store[effect.key] = effect.value
                # Applying a write's effect also releases the write lock the
                # coordinating cohort took at us for that key.
                self.locks.pop(effect.key, None)

    def _mint_effect(self, key: str, value: Any) -> Effect:
        self._next_effect += 1
        effect = Effect(
            effect_id=self.replica_id * 1_000_000 + self._next_effect,
            key=key,
            value=value,
        )
        self.seen_effects.add(effect.effect_id)
        return effect

    # -- messages -------------------------------------------------------------

    def handle_message(self, message, source: str) -> None:
        if isinstance(message, IsisCallReq):
            self._apply_piggyback(message.piggyback)
            if message.op == "read":
                # Read lock acquired locally; effect is "a read lock has
                # been acquired" -- we skip materializing read effects for
                # byte fairness (they'd only make Isis look worse).
                self._send(
                    message.reply_to,
                    IsisCallReply(
                        op_id=message.op_id,
                        result=self.store.get(message.key),
                        piggyback=(),
                    ),
                )
                return
            # Writes: acquire write locks at all cohorts first.
            state = {"request": message, "grants": 1, "needed": 1 + len(self.peers)}
            self._pending_writes[message.op_id] = state
            if not self.peers:
                self._complete_write(message.op_id)
                return
            for peer in self.peers:
                self._send(
                    peer,
                    IsisWriteLockReq(
                        op_id=message.op_id,
                        key=message.key,
                        reply_to=self.address,
                        piggyback=message.piggyback,
                    ),
                )
        elif isinstance(message, IsisWriteLockReq):
            self._apply_piggyback(message.piggyback)
            holder = self.locks.get(message.key)
            granted = holder is None or holder == message.op_id
            if granted:
                self.locks[message.key] = message.op_id
            self._send(
                message.reply_to,
                IsisWriteLockReply(
                    op_id=message.op_id, granted=granted, replica=self.replica_id
                ),
            )
        elif isinstance(message, IsisWriteLockReply):
            state = self._pending_writes.get(message.op_id)
            if state is None:
                return
            if not message.granted:
                # Contention: back off and retry the whole lock round.
                request = state["request"]
                self._pending_writes.pop(message.op_id, None)
                self.set_timer(3.0, self.handle_message, request, request.reply_to)
                return
            state["grants"] += 1
            if state["grants"] >= state["needed"]:
                self._complete_write(message.op_id)
        elif isinstance(message, IsisBackgroundEffects):
            self._apply_piggyback(message.effects)

    def _complete_write(self, op_id: int) -> None:
        state = self._pending_writes.pop(op_id, None)
        if state is None:
            return
        request: IsisCallReq = state["request"]
        if request.op == "add":
            new_value = self.store.get(request.key, 0) + request.value
        else:
            new_value = request.value
        self.store[request.key] = new_value
        effect = self._mint_effect(request.key, new_value)
        # Background propagation (releases peer locks implicitly: simplified).
        for peer in self.peers:
            self._send(peer, IsisBackgroundEffects(effects=(effect,)))
        self.locks.pop(request.key, None)
        self._send(
            request.reply_to,
            IsisCallReply(op_id=request.op_id, result=new_value, piggyback=(effect,)),
        )

    def _send(self, destination: str, message) -> None:
        self.runtime.network.send(self.address, destination, message)


class IsisSystem:
    """n Isis cohorts on their own nodes."""

    def __init__(self, runtime, name: str, n: int, initial: Dict[str, Any]):
        self.runtime = runtime
        self.name = name
        self.cohorts: List[IsisCohort] = []
        for index in range(n):
            node = runtime.create_node(f"{name}-n{index}")
            self.cohorts.append(
                IsisCohort(node, runtime, f"{name}/{index}", initial, peers=[])
            )
        for cohort in self.cohorts:
            cohort.peers = [
                other.address for other in self.cohorts if other is not cohort
            ]

    def addresses(self) -> Tuple[str, ...]:
        return tuple(cohort.address for cohort in self.cohorts)


class IsisClient(Actor):
    """A client that carries its ever-growing effect set on every message."""

    def __init__(self, node: Node, runtime, address: str, system: IsisSystem,
                 op_timeout: float = 60.0):
        super().__init__(node, address)
        self.runtime = runtime
        self.system = system
        self.op_timeout = op_timeout
        self.carried: List[Effect] = []  # never garbage collected (section 5)
        self._next_op = 0
        self._pending: Dict[int, dict] = {}
        self._rng = runtime.sim.rng.fork(f"isis/{address}")
        runtime.network.register(self)

    def op(self, op: str, key: str, value: Any = None) -> Future:
        self._next_op += 1
        op_id = self._next_op
        future = Future(label=f"isis-op:{op_id}")
        target = self._rng.choice(list(self.system.addresses()))
        request = IsisCallReq(
            op_id=op_id,
            op=op,
            key=key,
            value=value,
            reply_to=self.address,
            piggyback=tuple(self.carried),
        )
        self._pending[op_id] = {"future": future, "request": request, "target": target}
        self.runtime.network.send(self.address, target, request)
        self._pending[op_id]["timer"] = self.set_timer(
            self.op_timeout, self._on_timeout, op_id
        )
        return future

    def read(self, key: str) -> Future:
        return self.op("read", key)

    def write(self, key: str, value: Any) -> Future:
        return self.op("write", key, value)

    def add(self, key: str, delta: Any) -> Future:
        return self.op("add", key, delta)

    def _on_timeout(self, op_id: int) -> None:
        state = self._pending.pop(op_id, None)
        if state is not None and not state["future"].done:
            state["future"].set_exception(RuntimeError("isis op timed out"))

    def handle_message(self, message, source: str) -> None:
        if isinstance(message, IsisCallReply):
            state = self._pending.pop(message.op_id, None)
            if state is None:
                return
            if state.get("timer") is not None:
                state["timer"].cancel()
            self.carried.extend(message.piggyback)
            if not state["future"].done:
                state["future"].set_result(message.result)

    @property
    def carried_bytes(self) -> int:
        from repro.net.messages import estimate_size

        return estimate_size(tuple(self.carried))
