"""The virtual partitions view-change protocol (El Abbadi/Skeen/Cristian),
as characterized in section 5 -- the baseline for view-change cost (E4).

"The virtual partitions protocol requires three phases.  The first round
establishes the new view, the second informs the cohorts of the new view,
and in the third, the cohorts all communicate with one another to find out
the current state.  We avoid extra work by using viewstamps in phase 1
(the first round) to determine what each cohort knows."

This implementation runs the three phases with real messages over the
simulated network so rounds, message counts, and elapsed time are measured
rather than asserted:

- **phase 1**: the manager invites all cohorts; each accepts with the new
  viewid (no state information -- that is the point of the comparison);
- **phase 2**: the manager announces the formed view; cohorts acknowledge;
- **phase 3**: every member sends its state summary to every other member
  (all-to-all), after which the view is operational.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.net.messages import Message
from repro.sim.future import Future
from repro.sim.node import Actor, Node


@dataclasses.dataclass(slots=True)
class VPInvite(Message):
    viewid: int
    manager: str


@dataclasses.dataclass(slots=True)
class VPAccept(Message):
    viewid: int
    member: str


@dataclasses.dataclass(slots=True)
class VPNewView(Message):
    viewid: int
    members: Tuple[str, ...]


@dataclasses.dataclass(slots=True)
class VPNewViewAck(Message):
    viewid: int
    member: str


@dataclasses.dataclass(slots=True)
class VPStateExchange(Message):
    viewid: int
    member: str
    state_summary: Tuple


class VPCohort(Actor):
    """One cohort of a virtual-partitions group."""

    def __init__(self, node: Node, runtime, address: str, group: "VirtualPartitionsGroup"):
        super().__init__(node, address)
        self.runtime = runtime
        self.group = group
        self.viewid = 0
        self.state_summary: Tuple = (address, 0)
        self._accepts: Dict[int, Set[str]] = {}
        self._acks: Dict[int, Set[str]] = {}
        self._exchanges: Dict[int, Set[str]] = {}
        self._members: Dict[int, Tuple[str, ...]] = {}
        runtime.network.register(self)

    # -- manager side ---------------------------------------------------------

    def start_view_change(self, done: Future) -> None:
        self.viewid += 1
        viewid = self.viewid
        self.group._watchers[viewid] = done
        self.group._started_at[viewid] = self.sim.now
        self._accepts[viewid] = {self.address}
        for peer in self.group.addresses():
            if peer != self.address:
                self._send(peer, VPInvite(viewid=viewid, manager=self.address))
        self._maybe_phase2(viewid)

    def _maybe_phase2(self, viewid: int) -> None:
        live = [
            peer
            for peer in self.group.addresses()
            if self.runtime.network.node_of(peer) is not None
            and self.runtime.network.node_of(peer).up
        ]
        if self._accepts.get(viewid, set()) >= set(live):
            members = tuple(sorted(self._accepts[viewid]))
            self._members[viewid] = members
            self._acks[viewid] = {self.address}
            for peer in members:
                if peer != self.address:
                    self._send(peer, VPNewView(viewid=viewid, members=members))
            self._maybe_phase3(viewid)

    def _maybe_phase3(self, viewid: int) -> None:
        members = self._members.get(viewid, ())
        if self._acks.get(viewid, set()) >= set(members):
            # Phase 3: all-to-all state exchange; the manager tells members
            # to begin by virtue of having collected the acks (we model the
            # exchange directly -- each member sends to each other member).
            for member in members:
                cohort = self.group.cohort_at(member)
                if cohort is not None and cohort.node.up:
                    cohort._begin_exchange(viewid, members)

    # -- member side -------------------------------------------------------------

    def _begin_exchange(self, viewid: int, members: Tuple[str, ...]) -> None:
        self._members[viewid] = members
        self._exchanges.setdefault(viewid, set()).add(self.address)
        for peer in members:
            if peer != self.address:
                self._send(
                    peer,
                    VPStateExchange(
                        viewid=viewid,
                        member=self.address,
                        state_summary=self.state_summary,
                    ),
                )
        self._maybe_operational(viewid)

    def _maybe_operational(self, viewid: int) -> None:
        members = self._members.get(viewid, ())
        if not members:
            return
        if self._exchanges.get(viewid, set()) >= set(members):
            self.group._cohort_operational(viewid, self.address, members)

    def handle_message(self, message, source: str) -> None:
        if isinstance(message, VPInvite):
            if message.viewid > self.viewid:
                self.viewid = message.viewid
                self._send(
                    message.manager,
                    VPAccept(viewid=message.viewid, member=self.address),
                )
        elif isinstance(message, VPAccept):
            self._accepts.setdefault(message.viewid, set()).add(message.member)
            self._maybe_phase2(message.viewid)
        elif isinstance(message, VPNewView):
            self.viewid = max(self.viewid, message.viewid)
            self._members[message.viewid] = message.members
            self._send(
                source, VPNewViewAck(viewid=message.viewid, member=self.address)
            )
        elif isinstance(message, VPNewViewAck):
            self._acks.setdefault(message.viewid, set()).add(message.member)
            self._maybe_phase3(message.viewid)
        elif isinstance(message, VPStateExchange):
            self._exchanges.setdefault(message.viewid, set()).add(message.member)
            self._maybe_operational(message.viewid)

    def _send(self, destination: str, message) -> None:
        self.runtime.network.send(self.address, destination, message)


class VirtualPartitionsGroup:
    """n virtual-partitions cohorts; measures view-change cost."""

    MESSAGE_TYPES = (
        "VPInvite",
        "VPAccept",
        "VPNewView",
        "VPNewViewAck",
        "VPStateExchange",
    )

    def __init__(self, runtime, name: str, n: int):
        self.runtime = runtime
        self.name = name
        self.cohorts: List[VPCohort] = []
        self._watchers: Dict[int, Future] = {}
        self._started_at: Dict[int, float] = {}
        self._operational: Dict[int, Set[str]] = {}
        for index in range(n):
            node = runtime.create_node(f"{name}-n{index}")
            self.cohorts.append(VPCohort(node, runtime, f"{name}/{index}", self))

    def addresses(self) -> Tuple[str, ...]:
        return tuple(cohort.address for cohort in self.cohorts)

    def cohort_at(self, address: str) -> Optional[VPCohort]:
        for cohort in self.cohorts:
            if cohort.address == address:
                return cohort
        return None

    def trigger_view_change(self, manager_index: int = 0) -> Future:
        """Run one full view change; resolves to elapsed virtual time."""
        done = Future(label=f"vp-change:{self.name}")
        self.cohorts[manager_index].start_view_change(done)
        return done

    def _cohort_operational(self, viewid: int, address: str, members) -> None:
        ready = self._operational.setdefault(viewid, set())
        ready.add(address)
        live_members = {
            member
            for member in members
            if self.runtime.network.node_of(member) is not None
            and self.runtime.network.node_of(member).up
        }
        if ready >= live_members:
            watcher = self._watchers.pop(viewid, None)
            if watcher is not None and not watcher.done:
                watcher.set_result(
                    self.runtime.sim.now - self._started_at[viewid]
                )

    def message_count(self) -> int:
        return sum(
            self.runtime.metrics.messages_sent.get(t, 0) for t in self.MESSAGE_TYPES
        )
