"""The conventional non-replicated transaction system (section 3.7).

"There is a one-to-one correspondence between event records and
information written to stable storage by a conventional transaction system
and therefore our system works because a conventional one does.  The
completed-call records are equivalent to the data records that must be
forced to stable storage before preparing, and the commit and abort
records are the same as their stable storage counterparts."

We exploit that correspondence directly: the unreplicated baseline *is* the
viewstamped system with a single cohort per group and ``force_to_stable``
on -- every force (before a prepare accept, at the coordinator's commit
point, before a commit ack) blocks on a stable-storage write instead of on
backup acknowledgments.  Identical code paths, so latency and message
comparisons (experiments E1, E3, E13) measure exactly the replication
delta the paper argues about.
"""

from __future__ import annotations

import dataclasses

from repro.app.module import EmptyModule
from repro.config import ProtocolConfig
from repro.runtime import Runtime


def unreplicated_config(
    stable_write_latency: float, base: ProtocolConfig | None = None
) -> ProtocolConfig:
    """A config for 1-cohort conventional groups."""
    config = dataclasses.replace(
        base if base is not None else ProtocolConfig(),
        force_to_stable=True,
        stable_write_latency=stable_write_latency,
    )
    return config


def build_unreplicated_system(
    spec,
    seed: int = 0,
    stable_write_latency: float = 5.0,
    link=None,
    server_group: str = "server",
    client_group: str = "clients",
):
    """Runtime with an unreplicated server, client group, and driver.

    Returns (runtime, server_group, client_group, driver).
    """
    config = unreplicated_config(stable_write_latency)
    kwargs = {"config": config}
    if link is not None:
        kwargs["link"] = link
    rt = Runtime(seed=seed, **kwargs)
    server = rt.create_group(server_group, spec, n_cohorts=1)
    clients = rt.create_group(client_group, EmptyModule(), n_cohorts=1)
    driver = rt.create_driver("driver")
    return rt, server, clients, driver
