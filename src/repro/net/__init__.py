"""Simulated network substrate (paper section 1 failure model).

Provides addressed, datagram-style message delivery between actors with
configurable delay, loss, duplication and reordering, plus partition and
link-failure injection.
"""

from repro.net.link import LAN, LOSSY, WAN, LinkModel
from repro.net.messages import Envelope, Message, estimate_size
from repro.net.network import Network

__all__ = [
    "LAN",
    "LOSSY",
    "WAN",
    "Envelope",
    "LinkModel",
    "Message",
    "Network",
    "estimate_size",
]
