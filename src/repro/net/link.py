"""Link behaviour model: delay, loss, duplication, reordering.

The paper's network assumptions (section 1): the network may lose, delay,
and duplicate messages, or deliver them out of order; link failures may
partition the network.  :class:`LinkModel` parameterizes exactly those
behaviours.
"""

from __future__ import annotations

import dataclasses

from repro.sim.rng import SeededRng


@dataclasses.dataclass
class LinkModel:
    """Stochastic behaviour of every link in a network.

    Attributes
    ----------
    base_delay:
        Minimum one-way latency.
    jitter:
        Uniform extra latency in ``[0, jitter]``.  Because each message draws
        its own jitter, messages can overtake each other -- this is how
        reordering arises, as it does in real datagram networks.
    loss_probability:
        Chance an individual message is silently dropped.
    duplicate_probability:
        Chance a message is delivered twice (the duplicate takes its own
        independent delay draw).
    """

    base_delay: float = 1.0
    jitter: float = 0.2
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise ValueError("duplicate_probability must be in [0, 1)")

    def draw_delay(self, rng: SeededRng) -> float:
        if self.jitter == 0:
            return self.base_delay
        return self.base_delay + rng.uniform(0.0, self.jitter)

    def drops(self, rng: SeededRng) -> bool:
        return rng.chance(self.loss_probability)

    def duplicates(self, rng: SeededRng) -> bool:
        return rng.chance(self.duplicate_probability)


#: A well-behaved LAN: small constant-ish delay, no loss.
LAN = LinkModel(base_delay=1.0, jitter=0.2)

#: A lossy, jittery network that exercises retry paths.
LOSSY = LinkModel(
    base_delay=1.0, jitter=1.0, loss_probability=0.05, duplicate_probability=0.02
)

#: A wide-area network: long, highly variable delays with mild loss but no
#: partitions -- the regime where fixed LAN-tuned timeouts misfire (E16).
WAN = LinkModel(
    base_delay=5.0, jitter=4.0, loss_probability=0.02, duplicate_probability=0.01
)
