"""Base message type and byte-size estimation.

Byte sizes matter for the Isis comparison (experiment E9): the paper argues
Isis must piggyback ever-growing effect information on every message, while
viewstamped replication's psets stay small and are discarded at commit.  We
estimate wire size structurally so the comparison is apples-to-apples.

This module is on the per-message hot path (every send runs ``byte_size``),
so it avoids repeated ``dataclasses.fields`` reflection with a per-class
field-name cache, and ``msg_type`` is a class attribute stamped at subclass
creation rather than a per-access property.

Event records are immutable once buffered but are re-sent many times (every
unbatched flush re-ships the unacked suffix), so their sizes are interned:
a dataclass whose class sets ``_size_cacheable = True`` gets its computed
size stashed on the instance and sized as one dict lookup thereafter.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Tuple, Type

_HEADER_BYTES = 32  # source, destination, msg id, type tag

#: Per-class cache of dataclass field names, so byte sizing does not pay
#: ``dataclasses.fields`` reflection on every message.
_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}


def _field_names(cls: type) -> Tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(field.name for field in dataclasses.fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def estimate_size(value: Any) -> int:
    """Rough wire-size estimate of a payload value, in bytes."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        total = 4
        for item in value:
            total += estimate_size(item)
        return total
    if isinstance(value, dict):
        total = 4
        for key, item in value.items():
            total += estimate_size(key) + estimate_size(item)
        return total
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        if getattr(value, "_size_cacheable", False):
            # Frozen but slot-less dataclasses (event records) carry a
            # __dict__; the interned size lives there, outside the declared
            # fields, so it never feeds back into the estimate itself.
            cached = value.__dict__.get("_wire_size")
            if cached is not None:
                return cached
            total = 0
            for name in _field_names(type(value)):
                total += estimate_size(getattr(value, name))
            object.__setattr__(value, "_wire_size", total)
            return total
        total = 0
        for name in _field_names(type(value)):
            total += estimate_size(getattr(value, name))
        return total
    if hasattr(value, "byte_size"):
        return value.byte_size()
    return 16  # opaque object


@dataclasses.dataclass(slots=True)
class Message:
    """Base class for every wire message in the system.

    Subclasses are frozen-ish dataclasses named after the paper's messages
    (call, reply, prepare, commit, abort, invite, accept, init-view, ...).
    ``msg_type`` defaults to the class name, which is what metrics key on.
    """

    msg_type = "Message"  # class attribute, restamped per subclass below

    def __init_subclass__(cls: Type["Message"], **kwargs: Any) -> None:
        # No zero-arg super() here: dataclass(slots=True) recreates the
        # class, which leaves the implicit __class__ cell pointing at the
        # pre-slots Message and would raise TypeError for subclasses.
        object.__init_subclass__(**kwargs)
        cls.msg_type = cls.__name__

    def byte_size(self) -> int:
        total = _HEADER_BYTES
        for name in _field_names(type(self)):
            total += estimate_size(getattr(self, name))
        return total


@dataclasses.dataclass(slots=True)
class Envelope:
    """A message in flight: routing metadata wrapped around the payload.

    ``copies`` counts outstanding scheduled deliveries (2 when the link
    duplicated the datagram); the network recycles the envelope through a
    freelist once every copy has been consumed."""

    msg_id: int
    source: str
    destination: str
    payload: Message
    sent_at: float
    copies: int = 1
