"""Base message type and byte-size estimation.

Byte sizes matter for the Isis comparison (experiment E9): the paper argues
Isis must piggyback ever-growing effect information on every message, while
viewstamped replication's psets stay small and are discarded at commit.  We
estimate wire size structurally so the comparison is apples-to-apples.
"""

from __future__ import annotations

import dataclasses
from typing import Any

_HEADER_BYTES = 32  # source, destination, msg id, type tag


def estimate_size(value: Any) -> int:
    """Rough wire-size estimate of a payload value, in bytes."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(estimate_size(item) for item in value)
    if isinstance(value, dict):
        return 4 + sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items()
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return sum(
            estimate_size(getattr(value, field.name))
            for field in dataclasses.fields(value)
        )
    if hasattr(value, "byte_size"):
        return value.byte_size()
    return 16  # opaque object


@dataclasses.dataclass
class Message:
    """Base class for every wire message in the system.

    Subclasses are frozen-ish dataclasses named after the paper's messages
    (call, reply, prepare, commit, abort, invite, accept, init-view, ...).
    ``msg_type`` defaults to the class name, which is what metrics key on.
    """

    @property
    def msg_type(self) -> str:
        return type(self).__name__

    def byte_size(self) -> int:
        return _HEADER_BYTES + sum(
            estimate_size(getattr(self, field.name))
            for field in dataclasses.fields(self)
        )


@dataclasses.dataclass
class Envelope:
    """A message in flight: routing metadata wrapped around the payload."""

    msg_id: int
    source: str
    destination: str
    payload: Message
    sent_at: float
