"""The simulated network: addressing, delivery, partitions, dedup.

Semantics (paper section 1 and 3.1):

- Messages may be lost, delayed, duplicated, and reordered (``LinkModel``).
- Link failures can partition the network into subnetworks; partitions are
  eventually repaired (``partition`` / ``heal``).
- The delivery system suppresses *network-generated* duplicates even across
  a crash/recover of the receiver (section 3.1 assumes "the message delivery
  system maintains some connection information that enables it to not
  deliver duplicate messages").  Dedup state therefore lives in the network,
  not on the node.  Application-level retransmissions are new messages and
  are *not* suppressed; the protocol handles those with call ids.
- A message to a crashed node is lost.  Partition membership is checked both
  at send and at delivery time: a message in flight when a partition forms
  does not cross it (conservative, and the harder case for the protocol).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.analysis.metrics import Metrics
from repro.net.link import LAN, LinkModel
from repro.net.messages import Envelope, Message
from repro.sim.kernel import Simulator
from repro.sim.node import Actor, Node


class Network:
    """Message plane connecting actors by string addresses."""

    def __init__(
        self,
        sim: Simulator,
        link: LinkModel = LAN,
        metrics: Optional[Metrics] = None,
    ):
        self.sim = sim
        self.link = link
        self.metrics = metrics if metrics is not None else Metrics()
        self.rng = sim.rng.fork("network")
        self._actors: Dict[str, Actor] = {}
        self._next_msg_id = 0
        self._partition: Optional[list[Set[str]]] = None  # blocks of node ids
        self._failed_links: Set[Tuple[str, str]] = set()
        self._failed_directed: Set[Tuple[str, str]] = set()  # (src, dst) node ids
        self._delivered_ids: Set[int] = set()
        self._link_overrides: Dict[Tuple[str, str], LinkModel] = {}
        # Structural (topology-derived) per-pair models, keyed by directed
        # *node id* pairs.  These describe where nodes live (repro.geo),
        # not an injected fault: they survive heal_all() and never count
        # as a disruption.  The cache resolves address pairs to models
        # lazily (None = "fall through to self.link at send time").
        self._structural_links: Dict[Tuple[str, str], LinkModel] = {}
        self._structural_cache: Dict[Tuple[str, str], Optional[LinkModel]] = {}
        # Plain-int totals on the per-message hot path; the per-type
        # breakdown lives in Metrics, these feed repro.perf cheaply.
        self.messages_sent_total = 0
        self.messages_delivered_total = 0
        self.messages_dropped_total = 0
        self.messages_duplicated_total = 0
        self.messages_deduped_total = 0
        # repro.trace attachment point; None = tracing disabled (the
        # per-message cost is then one load + ``is None`` test per hook).
        self.tracer = None
        # Bounded envelope freelist: envelopes are recycled once every
        # scheduled copy has been consumed, killing the per-send allocation
        # on the hot path.
        self._envelope_pool: list[Envelope] = []
        # Opt-in per-address load counters (E21 measures primary hot-spot
        # load); None keeps the hot path at one load + ``is None`` test.
        self._address_counters: Optional[dict] = None

    def enable_address_counters(self) -> None:
        """Start counting sends/deliveries per address (repro.scale E21)."""
        if self._address_counters is None:
            self._address_counters = {"sent": {}, "delivered": {}}

    def address_counters(self) -> Optional[dict]:
        """``{"sent": {addr: n}, "delivered": {addr: n}}`` or None."""
        return self._address_counters

    def _acquire_envelope(self, destination: str, payload: Message, source: str) -> Envelope:
        self._next_msg_id += 1
        pool = self._envelope_pool
        if pool:
            envelope = pool.pop()
            envelope.msg_id = self._next_msg_id
            envelope.source = source
            envelope.destination = destination
            envelope.payload = payload
            envelope.sent_at = self.sim.now
            envelope.copies = 1
            return envelope
        return Envelope(
            msg_id=self._next_msg_id,
            source=source,
            destination=destination,
            payload=payload,
            sent_at=self.sim.now,
        )

    def _release_envelope(self, envelope: Envelope) -> None:
        envelope.copies -= 1
        if envelope.copies > 0:
            return  # a duplicated copy is still scheduled
        if len(self._envelope_pool) < 256:
            envelope.payload = None  # type: ignore[assignment]
            self._envelope_pool.append(envelope)

    def perf_counters(self) -> dict:
        """Message-plane counters as a plain dict (for :mod:`repro.perf`)."""
        return {
            "messages_sent": self.messages_sent_total,
            "messages_delivered": self.messages_delivered_total,
            "messages_dropped": self.messages_dropped_total,
            "messages_duplicated": self.messages_duplicated_total,
        }

    # -- registration -------------------------------------------------------

    def register(self, actor: Actor) -> None:
        """Make *actor* reachable at ``actor.address``."""
        if actor.address in self._actors:
            raise ValueError(f"address {actor.address!r} already registered")
        self._actors[actor.address] = actor

    def actor_at(self, address: str) -> Optional[Actor]:
        return self._actors.get(address)

    def node_of(self, address: str) -> Optional[Node]:
        actor = self._actors.get(address)
        return actor.node if actor is not None else None

    # -- partitions and link failures -----------------------------------------

    def partition(self, blocks: Iterable[Iterable[str]]) -> None:
        """Split the network into blocks of *node ids* that cannot cross-talk.

        Nodes absent from every block form an implicit final block together.
        """
        self._partition = [set(block) for block in blocks]
        self.sim.trace("partition", blocks=[sorted(b) for b in self._partition])

    def heal(self) -> None:
        """Repair all partitions and failed links (bidirectional *and*
        one-way).  Per-pair link-model overrides and the network-wide
        default link are NOT restored here -- see
        :meth:`FaultController.heal_all` for the full contract."""
        self._partition = None
        self._failed_links.clear()
        self._failed_directed.clear()
        self.sim.trace("heal")

    def fail_link(self, node_a: str, node_b: str) -> None:
        """Sever the (bidirectional) link between two nodes."""
        self._failed_links.add(self._link_key(node_a, node_b))

    def repair_link(self, node_a: str, node_b: str) -> None:
        self._failed_links.discard(self._link_key(node_a, node_b))

    def fail_link_oneway(self, src_node: str, dst_node: str) -> None:
        """Sever only src -> dst traffic (asymmetric / gray failure):
        dst's messages still reach src, so the two sides disagree about
        who is unreachable."""
        self._failed_directed.add((src_node, dst_node))

    def repair_link_oneway(self, src_node: str, dst_node: str) -> None:
        self._failed_directed.discard((src_node, dst_node))

    def set_link_model(self, src: str, dst: str, model: LinkModel) -> None:
        """Override link behaviour for one directed address pair.

        This is the *fault* surface (degraded links, gray failures): the
        override counts as a disruption for :meth:`disrupted` and is
        cleared by ``FaultController.heal_all``.  Topology-derived models
        belong in :meth:`set_structural_link` instead.
        """
        self._link_overrides[(src, dst)] = model

    def set_link_model_pair(self, a: str, b: str, model: LinkModel) -> None:
        """Override link behaviour for *both* directions between two
        addresses.

        Directed-pair overrides are easy to get wrong (setting only
        ``a -> b`` silently leaves the return path on the default link);
        use this helper whenever the degradation is symmetric.
        """
        self._link_overrides[(a, b)] = model
        self._link_overrides[(b, a)] = model

    def clear_link_override(self, src: str, dst: str) -> None:
        """Drop one directed pair's override (back to ``self.link``).

        Restoring by *removing* the entry rather than writing the default
        model back keeps :meth:`disrupted` accurate: a healed pair no
        longer counts as an active disruption.
        """
        self._link_overrides.pop((src, dst), None)

    def clear_link_overrides(self) -> None:
        """Drop every per-pair link-model override (back to ``self.link``).

        Structural (topology) link models are untouched: healing a fault
        must not flatten the geography.
        """
        self._link_overrides.clear()

    # -- structural (topology) link models -----------------------------------

    def set_structural_link(
        self, src_node: str, dst_node: str, model: LinkModel
    ) -> None:
        """Install the *structural* model for one directed node pair.

        Structural models describe the topology (intra-zone / intra-DC /
        cross-DC distances from :class:`repro.geo.Topology`); they are
        distinct from fault-injected overrides: :meth:`disrupted` ignores
        them, ``heal_all()`` leaves them in place, and a fault override
        for the same address pair takes precedence while active.
        """
        self._structural_links[(src_node, dst_node)] = model
        # Address-pair resolutions are memoized; any change invalidates.
        self._structural_cache.clear()

    def clear_structural_links(self) -> None:
        """Drop every structural model (back to the flat network)."""
        self._structural_links.clear()
        self._structural_cache.clear()

    def structural_links(self) -> Dict[Tuple[str, str], LinkModel]:
        return dict(self._structural_links)

    def _structural_model(self, source: str, destination: str) -> LinkModel:
        """The structural model for an address pair (default: ``self.link``).

        Cached per directed address pair; a cached ``None`` means "no
        structural entry -- use the *current* default link", so swapping
        ``self.link`` (e.g. ``FaultController.lossy``) still takes effect
        for unplaced pairs.
        """
        key = (source, destination)
        cache = self._structural_cache
        if key in cache:
            model = cache[key]
            return model if model is not None else self.link
        src_node = self.node_of(source)
        dst_node = self.node_of(destination)
        model = None
        if src_node is not None and dst_node is not None:
            model = self._structural_links.get(
                (src_node.node_id, dst_node.node_id)
            )
        cache[key] = model
        return model if model is not None else self.link

    # -- disruption inspection (repro.live StallReports) --------------------

    def partition_blocks(self) -> Optional[list]:
        """Current partition blocks as sorted lists, or None if healed."""
        if self._partition is None:
            return None
        return [sorted(block) for block in self._partition]

    def failed_links(self) -> list:
        """Failed links as rendered strings: ``a<->b`` and ``a->b``."""
        links = [f"{a}<->{b}" for a, b in sorted(self._failed_links)]
        links += [f"{a}->{b}" for a, b in sorted(self._failed_directed)]
        return links

    def link_overrides(self) -> Dict[Tuple[str, str], LinkModel]:
        return dict(self._link_overrides)

    def disrupted(self, default_link: Optional[LinkModel] = None) -> bool:
        """Whether any injected network disruption is currently active.

        Only *fault* state counts: partitions, failed links, per-pair
        fault overrides, and a swapped default link.  Structural
        (topology) link models are the network's permanent shape, not a
        disruption -- otherwise a geo topology would pause every liveness
        window forever.
        """
        if self._partition is not None or self._failed_links or self._failed_directed:
            return True
        if self._link_overrides:
            return True
        return default_link is not None and self.link is not default_link

    def in_flight_estimate(self) -> int:
        """Messages scheduled but not yet delivered/dropped/suppressed."""
        return (
            self.messages_sent_total
            + self.messages_duplicated_total
            - self.messages_delivered_total
            - self.messages_dropped_total
            - self.messages_deduped_total
        )

    @staticmethod
    def _link_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _block_of(self, node_id: str) -> int:
        assert self._partition is not None
        for index, block in enumerate(self._partition):
            if node_id in block:
                return index
        return len(self._partition)  # implicit leftover block

    def can_communicate(self, src_addr: str, dst_addr: str) -> bool:
        """Whether the current partition/link state lets src reach dst."""
        src_node = self.node_of(src_addr)
        dst_node = self.node_of(dst_addr)
        if src_node is None or dst_node is None:
            return False
        if src_node is dst_node:
            return True
        if self._link_key(src_node.node_id, dst_node.node_id) in self._failed_links:
            return False
        if (
            self._failed_directed
            and (src_node.node_id, dst_node.node_id) in self._failed_directed
        ):
            return False
        if self._partition is not None:
            if self._block_of(src_node.node_id) != self._block_of(dst_node.node_id):
                return False
        return True

    # -- send/deliver -----------------------------------------------------------

    def send(self, source: str, destination: str, payload: Message) -> None:
        """Fire-and-forget datagram send.  All loss is silent, as on a LAN."""
        envelope = self._acquire_envelope(destination, payload, source)
        self.messages_sent_total += 1
        self.metrics.on_send(payload.msg_type, payload.byte_size())
        counters = self._address_counters
        if counters is not None:
            sent = counters["sent"]
            sent[source] = sent.get(source, 0) + 1
        tracer = self.tracer
        if tracer is not None:
            tracer.on_send(envelope)

        src_node = self.node_of(source)
        if src_node is not None and not src_node.up:
            # A crashed node cannot send; count it for debugging visibility.
            self.messages_dropped_total += 1
            self.metrics.on_drop(payload.msg_type)
            if tracer is not None:
                tracer.on_drop(envelope, "source_crashed", source)
            self._release_envelope(envelope)
            return
        if not self.can_communicate(source, destination):
            self.messages_dropped_total += 1
            self.metrics.on_drop(payload.msg_type)
            if tracer is not None:
                tracer.on_drop(envelope, "partitioned_at_send", source)
            self._release_envelope(envelope)
            return

        # Fault override > structural (topology) model > default link.
        model = self._link_overrides.get((source, destination))
        if model is None:
            model = (
                self._structural_model(source, destination)
                if self._structural_links
                else self.link
            )
        if model.drops(self.rng):
            self.messages_dropped_total += 1
            self.metrics.on_drop(payload.msg_type)
            if tracer is not None:
                tracer.on_drop(envelope, "link_loss", source)
            self._release_envelope(envelope)
            return
        self.sim.schedule(model.draw_delay(self.rng), self._deliver, envelope)
        if model.duplicates(self.rng):
            envelope.copies = 2
            self.messages_duplicated_total += 1
            self.metrics.on_duplicate(payload.msg_type)
            self.sim.schedule(model.draw_delay(self.rng), self._deliver, envelope)

    def _deliver(self, envelope: Envelope) -> None:
        tracer = self.tracer
        actor = self._actors.get(envelope.destination)
        if actor is None or not actor.node.up:
            self.messages_dropped_total += 1
            self.metrics.on_drop(envelope.payload.msg_type)
            if tracer is not None:
                tracer.on_drop(envelope, "destination_down", envelope.destination)
            self._release_envelope(envelope)
            return
        if not self.can_communicate(envelope.source, envelope.destination):
            self.messages_dropped_total += 1
            self.metrics.on_drop(envelope.payload.msg_type)
            if tracer is not None:
                tracer.on_drop(envelope, "partitioned_in_flight", envelope.destination)
            self._release_envelope(envelope)
            return
        if envelope.msg_id in self._delivered_ids:
            # Network-generated duplicate: suppressed per section 3.1.
            self.messages_deduped_total += 1
            self._release_envelope(envelope)
            return
        self._delivered_ids.add(envelope.msg_id)
        if len(self._delivered_ids) > 200_000:
            # Ids are monotonically increasing; old ones can never reappear
            # because both copies of a duplicate are scheduled at send time.
            cutoff = self._next_msg_id - 100_000
            self._delivered_ids = {i for i in self._delivered_ids if i > cutoff}
        self.messages_delivered_total += 1
        self.metrics.on_deliver(envelope.payload.msg_type)
        counters = self._address_counters
        if counters is not None:
            delivered = counters["delivered"]
            delivered[envelope.destination] = (
                delivered.get(envelope.destination, 0) + 1
            )
        if tracer is None:
            payload, source = envelope.payload, envelope.source
            self._release_envelope(envelope)
            actor.handle_message(payload, source)
            return
        eid = tracer.on_deliver(envelope)
        tracer.push(eid)
        try:
            actor.handle_message(envelope.payload, envelope.source)
        finally:
            tracer.pop()
            self._release_envelope(envelope)
