"""Transaction substrate: identifiers, psets, locks, versioned objects."""

from repro.txn.ids import Aid, CallId
from repro.txn.locks import LockManager
from repro.txn.objects import READ, WRITE, ObjectStore, StoredObject
from repro.txn.pset import PSet, PSetPair

__all__ = [
    "Aid",
    "CallId",
    "LockManager",
    "ObjectStore",
    "PSet",
    "PSetPair",
    "READ",
    "StoredObject",
    "WRITE",
]
