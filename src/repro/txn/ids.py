"""Transaction, call, and subaction identifiers.

The paper makes the transaction id (*aid*) "unique across view changes by
including mygroupid and cur_viewid in it" (section 3.1).  That embedding is
load-bearing beyond uniqueness: a cohort answering a query (section 3.4) can
see from the aid alone which group coordinates the transaction and in which
view it started -- if that view is older than the group's current view and
no committing record survived, the transaction can never commit and may be
reported aborted.
"""

from __future__ import annotations

import dataclasses

from repro.core.viewstamp import ViewId


@dataclasses.dataclass(frozen=True, order=True)
class Aid:
    """A transaction identifier: coordinator group + view of birth + seq."""

    groupid: str
    viewid: ViewId
    seq: int

    def __str__(self) -> str:
        return f"{self.groupid}#{self.viewid}#{self.seq}"


@dataclasses.dataclass(frozen=True, order=True)
class CallId:
    """A remote-call identifier, unique per call attempt.

    ``subaction`` distinguishes retries under nested transactions
    (section 3.6): a retried call is a *new* subaction with a new CallId, so
    server-side duplicate suppression never confuses it with the orphaned
    attempt.
    """

    aid: Aid
    seq: int
    subaction: int = 0

    def __str__(self) -> str:
        return f"{self.aid}/c{self.seq}.{self.subaction}"
