"""The pset: per-transaction record of every remote call's viewstamp.

Section 3.1: "Information about these viewstamps is collected as the
transaction runs in a data structure called the pset, which is a set of
``<groupid, viewstamp>`` pairs.  The pset contains an entry for every call
made by the transaction; a pair ``<g, v>`` indicates that group g ran a
call for the transaction and assigned it viewstamp v."

The pset is the paper's answer to Isis-style piggybacking: it names *that*
events happened (a few dozen bytes), not *what* they were, and it is
discarded when the transaction ends -- experiment E9 measures this.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, Iterator, Optional

from repro.core.viewstamp import Viewstamp, vs_max


@dataclasses.dataclass(frozen=True, order=True)
class PSetPair:
    """One ``<groupid: int, vs: viewstamp>`` entry."""

    groupid: str
    vs: Viewstamp

    def byte_size(self) -> int:
        return len(self.groupid) + 16


class PSet:
    """An immutable-by-convention set of :class:`PSetPair`.

    Mutation is via :meth:`add` / :meth:`merge`, which the client primary
    applies as replies arrive (Figure 2 step 2: "add the elements of the
    pset in the reply message to the transaction's pset").
    """

    def __init__(self, pairs: Optional[Iterable[PSetPair]] = None):
        self._pairs: set[PSetPair] = set(pairs) if pairs else set()

    def add(self, groupid: str, vs: Viewstamp) -> None:
        self._pairs.add(PSetPair(groupid, vs))

    def merge(self, other: "PSet") -> None:
        self._pairs |= other._pairs

    def pairs(self) -> FrozenSet[PSetPair]:
        return frozenset(self._pairs)

    def participants(self) -> frozenset[str]:
        """The groups touched by the transaction (Figure 2: "determine who
        the participants are from the pset")."""
        return frozenset(pair.groupid for pair in self._pairs)

    def latest_for(self, groupid: str) -> Optional[Viewstamp]:
        """``vs_max`` restricted to this pset (see section 3.2)."""
        return vs_max(self._pairs, groupid)

    def copy(self) -> "PSet":
        return PSet(self._pairs)

    def __iter__(self) -> Iterator[PSetPair]:
        return iter(sorted(self._pairs))

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, pair: PSetPair) -> bool:
        return pair in self._pairs

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PSet) and self._pairs == other._pairs

    def __repr__(self) -> str:
        return f"PSet({sorted(self._pairs)!r})"

    def byte_size(self) -> int:
        return 4 + sum(pair.byte_size() for pair in self._pairs)
