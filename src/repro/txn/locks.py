"""Strict two-phase locking over the object store (paper section 3).

"We assume that transactions are synchronized by means of strict 2-phase
locking with read and write locks."  The paper leaves conflict handling
unspecified; we queue waiters FIFO and let the caller impose a timeout
(the documented deadlock-breaking deviation in DESIGN.md section 3.5).

Semantics:

- read locks are shared; write locks are exclusive;
- a transaction upgrades its own read lock to a write lock when it is the
  sole reader (otherwise it waits for the other readers);
- at *prepare*, read locks are released (Figure 3 step 1), which is legal
  under strict 2PL because the transaction acquires no further locks;
- at *commit*, tentative versions are installed and all locks released;
- at *abort*, tentative versions and locks are discarded.

All grant decisions are synchronous and deterministic (FIFO), so runs are
reproducible.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

from repro.sim.future import Future
from repro.txn.objects import READ, WRITE, LockInfo, ObjectStore, TentativeWrite


@dataclasses.dataclass
class _Waiter:
    aid: Any
    kind: str
    future: Future
    subaction: int


class LockManager:
    """Grants read/write locks on a single group's objects."""

    def __init__(self, store: ObjectStore):
        self.store = store
        self._wait_queues: Dict[str, List[_Waiter]] = {}
        # Reverse index: aid -> uids it holds locks on, in acquisition
        # order (dict used as an ordered set).  Keeps the per-transaction
        # lifecycle methods (release_reads/install/discard) O(locks held)
        # instead of O(store size), which dominates profiles on large
        # keyspaces.  Invariant: uid in _held[aid]  <=>  aid in
        # store.get(uid).lockers.
        self._held: Dict[Any, Dict[str, None]] = {}

    # -- acquisition -----------------------------------------------------------

    def acquire(self, uid: str, aid: Any, kind: str, subaction: int = 0) -> Future:
        """Request a lock; the future resolves when the lock is granted.

        If the lock is free (or compatible, or an immediate upgrade), the
        future is already resolved on return, so uncontended transactions
        never yield to the scheduler for locking.
        """
        if kind not in (READ, WRITE):
            raise ValueError(f"unknown lock kind {kind!r}")
        future = Future(label=f"lock:{uid}:{aid}:{kind}")
        obj = self.store.ensure(uid)
        queue = self._wait_queues.get(uid, [])
        # FIFO fairness: a new request must not overtake waiting conflicting
        # requests, or writers starve.  A request only bypasses the queue if
        # the queue is empty or the request is a re-entrant/upgrade claim.
        if self._grantable(obj, aid, kind) and (not queue or aid in obj.lockers):
            self._grant(uid, obj, aid, kind)
            future.set_result(None)
            return future
        self._wait_queues.setdefault(uid, []).append(
            _Waiter(aid=aid, kind=kind, future=future, subaction=subaction)
        )
        return future

    def _grantable(self, obj, aid: Any, kind: str) -> bool:
        holders = obj.lockers
        if aid in holders:
            current = holders[aid]
            if kind == READ or current.kind == WRITE:
                return True  # re-entrant
            # upgrade READ -> WRITE: sole reader only
            return all(other == aid for other in holders)
        if not holders:
            return True
        if kind == READ:
            return all(info.kind == READ for info in holders.values())
        return False

    def _grant(self, uid: str, obj, aid: Any, kind: str) -> None:
        info = obj.lockers.get(aid)
        if info is None:
            obj.lockers[aid] = LockInfo(kind=kind)
        elif kind == WRITE and info.kind == READ:
            info.kind = WRITE
        self._held.setdefault(aid, {})[uid] = None

    def _pump(self, uid: str) -> None:
        """Grant the longest compatible prefix of the wait queue."""
        queue = self._wait_queues.get(uid)
        if not queue:
            return
        obj = self.store.ensure(uid)
        granted_any = True
        while granted_any and queue:
            granted_any = False
            head = queue[0]
            if self._grantable(obj, head.aid, head.kind):
                queue.pop(0)
                self._grant(uid, obj, head.aid, head.kind)
                head.future.set_result(None)
                granted_any = True
        if not queue:
            del self._wait_queues[uid]

    # -- write-through ---------------------------------------------------------

    def record_write(self, uid: str, aid: Any, value: Any, subaction: int = 0) -> None:
        """Record a tentative version.  Caller must hold the write lock."""
        obj = self.store.get(uid)
        info = obj.lockers.get(aid)
        if info is None or info.kind != WRITE:
            raise ValueError(f"{aid} does not hold a write lock on {uid!r}")
        info.writes.append(TentativeWrite(subaction=subaction, value=value))

    def read_value(self, uid: str, aid: Any) -> Any:
        """Read through tentative versions.  Caller must hold a lock."""
        obj = self.store.get(uid)
        if aid not in obj.lockers:
            raise ValueError(f"{aid} does not hold a lock on {uid!r}")
        return obj.value_for(aid)

    # -- lifecycle ------------------------------------------------------------

    def release_reads(self, aid: Any) -> None:
        """Drop pure read locks at prepare time (Figure 3)."""
        held = self._held.get(aid)
        if not held:
            return
        for uid in list(held):
            obj = self.store.get(uid)
            info = obj.lockers.get(aid)
            if info is not None and info.kind == READ:
                del obj.lockers[aid]
                del held[uid]
                self._pump(uid)
        if not held:
            del self._held[aid]

    def install(self, aid: Any) -> list[str]:
        """Commit: tentative versions become base; locks released.

        Returns the uids whose base version changed.
        """
        changed = []
        for uid in self._held.pop(aid, ()):
            obj = self.store.get(uid)
            info = obj.lockers.pop(aid, None)
            if info is None:
                continue
            if info.writes:
                obj.base = info.tentative_value()
                obj.version += 1
                changed.append(uid)
            self._pump(uid)
        return changed

    def discard(self, aid: Any) -> None:
        """Abort: drop locks and tentative versions.

        Pending requests are withdrawn *before* held locks are released --
        otherwise pumping the queue could re-grant the aborted
        transaction's own queued request.
        """
        self.cancel_waits(aid)
        for uid in self._held.pop(aid, ()):
            obj = self.store.get(uid)
            if obj.lockers.pop(aid, None) is not None:
                self._pump(uid)

    def discard_subaction(self, aid: Any, subaction: int) -> None:
        """Abort one subaction: drop its tentative writes only (section 3.6).

        Locks stay with the transaction (Argus semantics: subactions of one
        transaction share its lock family), so the retried call can proceed.
        """
        for uid in self._held.get(aid, ()):
            info = self.store.get(uid).lockers.get(aid)
            if info is not None:
                info.drop_subaction(subaction)

    def cancel_waits(self, aid: Any) -> None:
        """Withdraw pending lock requests (waiter timed out or txn aborted)."""
        for uid in list(self._wait_queues):
            queue = self._wait_queues[uid]
            remaining = []
            cancelled = False
            for waiter in queue:
                if waiter.aid == aid:
                    waiter.future.cancel()
                    cancelled = True
                else:
                    remaining.append(waiter)
            if remaining:
                self._wait_queues[uid] = remaining
            else:
                del self._wait_queues[uid]
            if cancelled:
                self._pump(uid)

    def holders_of(self, uid: str) -> Dict[Any, str]:
        obj = self.store.ensure(uid)
        return {aid: info.kind for aid, info in obj.lockers.items()}

    def locks_held_by(self, aid: Any) -> Dict[str, str]:
        held = {}
        for uid in self._held.get(aid, ()):
            info = self.store.get(uid).lockers.get(aid)
            if info is not None:
                held[uid] = info.kind
        return held

    def materialize(self, uid: str, aid: Any, kind: str) -> LockInfo:
        """Directly install a lock without queueing (view-change replay).

        Used when a new primary rebuilds lock state from surviving records
        (section 3.7): those locks were granted under 2PL before the view
        change, so installing them cannot conflict.  Keeps the reverse
        index consistent, unlike writing ``obj.lockers`` directly.
        """
        obj = self.store.ensure(uid)
        info = obj.lockers.get(aid)
        if info is None:
            info = LockInfo(kind=kind)
            obj.lockers[aid] = info
        if kind == WRITE:
            info.kind = WRITE
        self._held.setdefault(aid, {})[uid] = None
        return info

    def reset(self) -> None:
        """Drop all lock state (used when installing a newview gstate)."""
        self.store.clear_locks()
        self._held.clear()
        for queue in self._wait_queues.values():
            for waiter in queue:
                waiter.future.cancel()
        self._wait_queues.clear()
