"""Versioned objects: base versions, tentative versions, lockers.

Figure 1 of the paper:

    object    = <uid: int, base: T, lockers: {lock_info}>
    lock_info = <locker: aid, info: oneof[read: null, write: T]>

A transaction "modifies a tentative version, which is discarded if the
transaction aborts and becomes the base version if it commits" (section 3).
Tentative versions live inside the locker entry, exactly as in the paper.

Subaction support (section 3.6): each tentative write is tagged with the
subaction number that made it, so an aborted subaction's writes can be
discarded while the rest of the transaction's writes survive.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, Tuple

READ = "read"
WRITE = "write"


@dataclasses.dataclass
class TentativeWrite:
    """One write by (aid, subaction); later writes shadow earlier ones."""

    subaction: int
    value: Any


@dataclasses.dataclass
class LockInfo:
    """A locker entry: who holds what kind of lock, plus tentative writes."""

    kind: str  # READ or WRITE
    writes: list[TentativeWrite] = dataclasses.field(default_factory=list)

    def tentative_value(self) -> Any:
        if not self.writes:
            raise ValueError("no tentative writes")
        return self.writes[-1].value

    def drop_subaction(self, subaction: int) -> None:
        self.writes = [w for w in self.writes if w.subaction != subaction]
        if not self.writes and self.kind == WRITE:
            # The write lock came from subactions that all aborted; the
            # remaining claim (if the txn also read) is at most a read.
            self.kind = READ


@dataclasses.dataclass
class StoredObject:
    """One object in a group's gstate."""

    uid: str
    base: Any
    lockers: Dict[Any, LockInfo] = dataclasses.field(default_factory=dict)
    version: int = 0  # bumped on every install; used by the 1SR checker

    def value_for(self, aid) -> Any:
        """Read through: a transaction sees its own tentative writes."""
        info = self.lockers.get(aid)
        if info is not None and info.writes:
            return info.tentative_value()
        return self.base


class ObjectStore:
    """The objects portion of a cohort's gstate."""

    def __init__(self) -> None:
        self._objects: Dict[str, StoredObject] = {}

    def create(self, uid: str, value: Any) -> StoredObject:
        if uid in self._objects:
            raise ValueError(f"object {uid!r} already exists")
        obj = StoredObject(uid=uid, base=value)
        self._objects[uid] = obj
        return obj

    def ensure(self, uid: str, default: Any = None) -> StoredObject:
        if uid not in self._objects:
            self._objects[uid] = StoredObject(uid=uid, base=default)
        return self._objects[uid]

    def get(self, uid: str) -> StoredObject:
        return self._objects[uid]

    def __contains__(self, uid: str) -> bool:
        return uid in self._objects

    def uids(self) -> Iterable[str]:
        return self._objects.keys()

    # -- gstate snapshot / restore (for newview records) --------------------

    def snapshot(self) -> Dict[str, Tuple[Any, int]]:
        """Base versions only: lock state is rematerialized from pending
        completed-call records by the new primary (section 3.3 compromise)."""
        return {uid: (obj.base, obj.version) for uid, obj in self._objects.items()}

    def restore(self, snapshot: Dict[str, Tuple[Any, int]]) -> None:
        self._objects = {
            uid: StoredObject(uid=uid, base=base, version=version)
            for uid, (base, version) in snapshot.items()
        }

    def clear_locks(self) -> None:
        for obj in self._objects.values():
            obj.lockers.clear()
