"""Workload drivers: front-ends that submit transactions to client groups.

A driver plays the role of the end user (say, a travel agent at a
terminal): it sends a transaction request to the client group's primary and
waits for the outcome.  If the primary is lost, the driver re-probes the
group and re-submits.  Submission is at-most-once *per attempt*: a
re-submission after a silent timeout starts a fresh transaction (the
previous attempt, if it got anywhere, was auto-aborted by the client
group's view change, or -- rarely -- committed without the driver learning
it; the :class:`~repro.analysis.ledger.TransactionLedger` is the ground
truth the harness reports from).
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Dict, NamedTuple, Optional, Tuple

from repro.core import messages as m
from repro.core.cache import ClientCache
from repro.detect import Backoff, RttEstimator
from repro.sim.future import Future
from repro.sim.node import Actor, Node


class CallFailed(Exception):
    """Raised by :meth:`CallResult.unwrap` on a non-committed outcome."""

    def __init__(self, result: "CallResult"):
        super().__init__(f"transaction did not commit: {result.status}")
        self.result = result


class CallResult(NamedTuple):
    """Typed outcome of one :meth:`Driver.call`.

    A NamedTuple on purpose: legacy callers that unpack the old bare
    ``(status, value)`` pair keep working unchanged, while new code reads
    ``result.committed`` / ``result.value`` or uses :meth:`unwrap`.

    ``status`` is one of:

    - ``"committed"`` -- the transaction committed; ``value`` is the
      program's result.
    - ``"aborted"`` -- the transaction definitely aborted; ``value`` is
      ``None``.
    - ``"unknown"`` -- the group was unreachable for the whole retry
      budget; the attempt may or may not have committed (the transaction
      ledger is the ground truth).
    """

    status: str
    value: Any = None

    @property
    def committed(self) -> bool:
        return self.status == "committed"

    @property
    def aborted(self) -> bool:
        return self.status == "aborted"

    @property
    def unknown(self) -> bool:
        return self.status == "unknown"

    def unwrap(self) -> Any:
        """Return ``value``, raising :class:`CallFailed` unless committed."""
        if self.status != "committed":
            raise CallFailed(self)
        return self.value


class ReadResult(NamedTuple):
    """Typed outcome of one :meth:`Driver.read`.

    ``status`` is ``"ok"`` or ``"failed"``.  ``mode`` says how the value
    was obtained: ``"lease"`` (linearizable local read at a leased
    primary), ``"backup"`` (stale-bounded read from a backup's applied
    prefix), ``"cache"`` (client-side commit-set cache hit), or ``"txn"``
    (fell back to the full transactional call path).  ``staleness`` is
    the bound the server (or cache) vouches for -- 0.0 for lease and txn
    reads.
    """

    status: str
    value: Any = None
    mode: str = "none"
    staleness: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclasses.dataclass
class _PendingRead:
    request_id: int
    groupid: str
    uid: str
    future: Future
    retries_left: int
    timeout: float
    max_staleness: Optional[float]
    prefer: str  # which serving mode the next attempt targets
    #: (coordinator groupid, program, args) full-path read
    fallback: Optional[Tuple[str, str, Tuple]]
    timer: Any = None
    submitted_at: float = 0.0


@dataclasses.dataclass
class _PendingRequest:
    request_id: int
    groupid: str
    program: str
    args: Tuple
    future: Future
    retries_left: int
    timeout: float
    timer: Any = None
    submitted_at: float = 0.0
    backoff: Any = None  # adaptive mode: jittered growth across re-sends


class Driver(Actor):
    """Submits transaction programs to a client group and awaits outcomes."""

    def __init__(self, node: Node, runtime, name: str):
        super().__init__(node, name)
        self.runtime = runtime
        self.config = runtime.config
        self.tracer = runtime.tracer
        self.cache = ClientCache()
        self.rtt = RttEstimator()  # fed by observed end-to-end txn latencies
        self._rng = runtime.sim.rng.fork(f"driver-backoff/{name}")
        self._requests: Dict[int, _PendingRequest] = {}
        self._next_request = 0
        # -- read serving path (repro.reads) --
        self._reads: Dict[int, _PendingRead] = {}
        self._read_rng = runtime.sim.rng.fork(f"driver-reads/{name}")
        # -- geo routing (repro.geo): a sited driver reads from the
        # nearest serving replica instead of drawing one uniformly.
        self.site = runtime.node_sites.get(node.node_id)
        geo_cfg = self.config.geo
        self._geo_routing = (
            geo_cfg is not None
            and geo_cfg.topology is not None
            and geo_cfg.geo_routing
            and self.site is not None
        )
        reads_cfg = self.config.reads
        self.read_cache = None
        if reads_cfg is not None and reads_cfg.enabled and reads_cfg.client_cache:
            from repro.reads.cache import CommitSetCache

            self.read_cache = CommitSetCache(
                staleness=reads_cfg.cache_staleness,
                capacity=reads_cfg.cache_capacity,
                clock=lambda: self.sim.now,
            )
        runtime.network.register(self)

    # -- API ----------------------------------------------------------------

    def call(
        self,
        target: Any,
        program: str,
        *args: Any,
        retries: int = 8,
        timeout: Optional[float] = None,
    ) -> Future:
        """Run *program* at *target*; resolves to a :class:`CallResult`.

        The one submission surface.  *target* may be:

        - a plain groupid string -- the request goes to that group's
          primary (the old ``submit``);
        - a :class:`~repro.shard.facade.ShardedGroup`, or the name of one
          registered on the runtime -- the façade's shard map routes
          key-addressed programs to the owning shard (the old
          ``submit_keyed``).

        The returned future resolves to a :class:`CallResult` (a
        ``(status, value)`` NamedTuple, so tuple unpacking still works).
        ``timeout`` is the wait per attempt before re-probing and
        retrying; it defaults to twice the protocol's call timeout.
        """
        groupid, program, args = self._route(target, program, tuple(args))
        return self._call_group(
            groupid, program, args, retries=retries, timeout=timeout
        )

    def _route(self, target: Any, program: str, args: Tuple) -> Tuple[str, str, Tuple]:
        """Resolve *target* to (groupid, program, args), via a sharded
        façade when the target is one (by instance or registered name)."""
        if isinstance(target, str):
            sharded = self.runtime.sharded.get(target)
            if sharded is None:
                return target, program, args
        else:
            sharded = target
        return sharded.route(program, args, origin=self)

    def _call_group(
        self,
        groupid: str,
        program: str,
        args: Tuple,
        retries: int = 8,
        timeout: Optional[float] = None,
    ) -> Future:
        if timeout is not None and timeout <= 0:
            raise ValueError(f"call() timeout must be > 0, got {timeout!r}")
        self._next_request += 1
        if timeout is not None:
            per_attempt = timeout  # explicit user choice stays verbatim
        else:
            per_attempt = self.config.call_timeout * 2
            if self.config.adaptive_timeouts and self.rtt.rto is not None:
                # A stalled attempt is re-submitted once the wait clearly
                # exceeds an observed end-to-end transaction time.
                per_attempt = min(
                    per_attempt, max(self.config.min_timeout, 3.0 * self.rtt.rto)
                )
        request = _PendingRequest(
            request_id=self._next_request,
            groupid=groupid,
            program=program,
            args=tuple(args),
            future=Future(label=f"submit:{program}:{self._next_request}"),
            retries_left=retries,
            timeout=per_attempt,
            submitted_at=self.sim.now,
        )
        if timeout is None and self.config.adaptive_timeouts:
            request.backoff = Backoff(
                per_attempt,
                self._rng,
                multiplier=self.config.backoff_multiplier,
                cap_factor=self.config.backoff_cap,
                jitter=self.config.backoff_jitter,
            )
        self._requests[request.request_id] = request
        if self.tracer is not None:
            self.tracer.emit(
                "txn_submit",
                node=self.node.node_id,
                driver=self.address,
                request_id=request.request_id,
                group=groupid,
                program=program,
            )
        self._send(request)
        return request.future

    # -- deprecated shims (external callers only; src/ uses call()) ----------

    def submit(
        self,
        groupid: str,
        program: str,
        *args: Any,
        retries: int = 8,
        timeout: Optional[float] = None,
    ) -> Future:
        """Deprecated: use :meth:`call` with a groupid target."""
        warnings.warn(
            "Driver.submit() is deprecated; use Driver.call()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._call_group(
            groupid, program, tuple(args), retries=retries, timeout=timeout
        )

    def submit_keyed(
        self,
        sharded,
        program: str,
        *args: Any,
        retries: int = 8,
        timeout: Optional[float] = None,
    ) -> Future:
        """Deprecated: use :meth:`call` with the façade (or its name) as
        the target."""
        warnings.warn(
            "Driver.submit_keyed() is deprecated; use Driver.call()",
            DeprecationWarning,
            stacklevel=2,
        )
        if isinstance(sharded, str):
            sharded = self.runtime.sharded[sharded]
        groupid, routed_program, routed_args = sharded.route(
            program, tuple(args), origin=self
        )
        return self._call_group(
            groupid, routed_program, routed_args, retries=retries, timeout=timeout
        )

    # -- reads (repro.reads serving path) -------------------------------------

    def read(
        self,
        groupid: str,
        uid: str,
        *,
        max_staleness: Optional[float] = None,
        prefer: str = "primary",
        fallback: Optional[Tuple[str, str, Tuple]] = None,
        retries: int = 8,
        timeout: Optional[float] = None,
    ) -> Future:
        """Read one object's committed value outside the call path.

        Resolves to a :class:`ReadResult`.  *prefer* picks the first
        serving mode tried: ``"primary"`` (leased linearizable read),
        ``"backup"`` (stale-bounded read, honoring *max_staleness*), or
        ``"nearest"`` (geo routing: whichever view member is closest to
        this driver's site -- primary semantics if that is the primary,
        stale-bounded otherwise; degrades to ``"primary"`` on a site-less
        driver or flat network).  Rejections steer later attempts: a
        primary without a lease is retried at a backup and a too-stale
        backup at the primary, so the read lands wherever the group can
        serve it.  *fallback* is an optional ``(coordinator groupid,
        program, args)`` triple run through the full transactional call
        path when the fast path is unavailable (e.g. reads disabled);
        without it such reads resolve failed.
        """
        if prefer not in ("primary", "backup", "nearest"):
            raise ValueError(
                f"read() prefer must be primary|backup|nearest, got {prefer!r}"
            )
        self._next_request += 1
        request = _PendingRead(
            request_id=self._next_request,
            groupid=groupid,
            uid=uid,
            future=Future(label=f"read:{uid}:{self._next_request}"),
            retries_left=retries,
            timeout=timeout if timeout is not None else self.config.call_timeout,
            max_staleness=max_staleness,
            prefer=prefer,
            fallback=fallback,
            submitted_at=self.sim.now,
        )
        if self.read_cache is not None:
            hit = self.read_cache.lookup(uid, max_staleness)
            if hit is not None:
                value, staleness = hit
                self.runtime.metrics.incr("driver_cache_reads")
                request.future.set_result(
                    ReadResult("ok", value, "cache", staleness)
                )
                return request.future
        self._reads[request.request_id] = request
        self._send_read(request)
        return request.future

    def note_write(self, uid: str, value: Any) -> None:
        """Feed the commit-set cache an observed committed write (the
        driver cannot infer written keys from a program name, so keyed
        workloads report them here)."""
        if self.read_cache is not None:
            self.read_cache.note(uid, value)

    def _send_read(self, request: _PendingRead) -> None:
        entry = self.cache.get(request.groupid)
        if entry is None:
            self._probe(request.groupid)
        else:
            address = entry.primary_address
            if request.prefer == "backup" and entry.view.backups:
                if self._geo_routing:
                    # Geo routing replaces the uniform draw: read from
                    # the backup nearest this driver's site (no RNG pull,
                    # so flat-network schedules are untouched -- this
                    # branch only exists when geo is armed).
                    chosen = self.runtime.location.nearest_backup(
                        request.groupid, entry.view, self.site
                    )
                    if chosen is not None:
                        address = chosen
                        self._trace_geo_route(request, address, "backup")
                else:
                    members = dict(self.runtime.location.lookup(request.groupid))
                    backups = [
                        members[mid] for mid in sorted(entry.view.backups)
                        if mid in members
                    ]
                    if backups:
                        address = self._read_rng.choice(backups)
            elif request.prefer == "nearest" and self._geo_routing:
                chosen = self.runtime.location.nearest_member(
                    request.groupid, entry.view, self.site
                )
                if chosen is not None:
                    address = chosen
                    self._trace_geo_route(
                        request,
                        address,
                        "primary" if address == entry.primary_address else "backup",
                    )
            self.runtime.network.send(
                self.address,
                address,
                m.ReadMsg(
                    request_id=request.request_id,
                    uid=request.uid,
                    reply_to=self.address,
                    max_staleness=request.max_staleness,
                ),
            )
        request.timer = self.node.set_timer(
            request.timeout, self._on_read_timeout, request.request_id
        )

    def _trace_geo_route(
        self, request: _PendingRead, target: str, role: str
    ) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "geo_route",
                node=self.node.node_id,
                driver=self.address,
                site=self.site,
                group=request.groupid,
                target=target,
                target_site=self.runtime.location.site_of(target),
                role=role,
                prefer=request.prefer,
            )

    def _on_read_timeout(self, request_id: int) -> None:
        request = self._reads.get(request_id)
        if request is None:
            return
        if request.retries_left <= 0:
            self._reads.pop(request_id, None)
            self._finish_read_via_fallback(request, "retries exhausted")
            return
        request.retries_left -= 1
        self.cache.invalidate(request.groupid)
        self._send_read(request)

    def _finish_read_via_fallback(self, request: _PendingRead, reason: str) -> None:
        """Fast path unavailable: run the transactional fallback, or fail."""
        if request.timer is not None:
            request.timer.cancel()
            request.timer = None
        if request.future.done:
            return
        if request.fallback is None:
            request.future.set_result(ReadResult("failed", None, "none", 0.0))
            return
        coordinator, program, args = request.fallback
        self.runtime.metrics.incr("driver_read_fallbacks")
        call = self._call_group(coordinator, program, tuple(args))

        def chain(future: Future) -> None:
            if request.future.done:
                return
            result: CallResult = future.result()
            if result.committed:
                if self.read_cache is not None:
                    self.read_cache.note(request.uid, result.value)
                request.future.set_result(
                    ReadResult("ok", result.value, "txn", 0.0)
                )
            else:
                request.future.set_result(
                    ReadResult("failed", None, "txn", 0.0)
                )

        call.add_done_callback(chain)

    def _on_read_reply(self, message: m.ReadReplyMsg) -> None:
        request = self._reads.pop(message.request_id, None)
        if request is None:
            return
        if request.timer is not None:
            request.timer.cancel()
        if request.future.done:
            return
        latency = self.sim.now - request.submitted_at
        self.runtime.metrics.observe("driver_read_latency", latency)
        if self.read_cache is not None:
            # The value was committed at least `staleness` ago.
            self.read_cache.note(
                message.uid, message.value, t=self.sim.now - message.staleness
            )
        request.future.set_result(
            ReadResult("ok", message.value, message.mode, message.staleness)
        )

    def _on_read_reject(self, message: m.ReadRejectMsg) -> None:
        request = self._reads.get(message.request_id)
        if request is None:
            return
        if message.viewid is not None and message.view is not None:
            self.cache.update(
                message.groupid,
                message.viewid,
                message.view,
                self.runtime.location.primary_address(message.groupid, message.view),
            )
        if message.reason == "reads_disabled" or request.retries_left <= 0:
            self._reads.pop(message.request_id, None)
            self._finish_read_via_fallback(request, message.reason)
            return
        request.retries_left -= 1
        # Steer the next attempt toward whichever mode can serve: a
        # leaseless primary suggests a backup read, a too-stale backup
        # suggests the primary (or another backup).
        if message.reason == "no_lease":
            request.prefer = "backup"
        elif message.reason in ("too_stale", "not_active"):
            request.prefer = "primary"
        if request.timer is not None:
            request.timer.cancel()
        if message.viewid is None:
            self.cache.invalidate(request.groupid)
        self._send_read(request)

    # -- transmission ----------------------------------------------------------

    def _send(self, request: _PendingRequest) -> None:
        entry = self.cache.get(request.groupid)
        if entry is None:
            self._probe(request.groupid)
        else:
            self.runtime.network.send(
                self.address,
                entry.primary_address,
                m.TxnRequestMsg(
                    request_id=request.request_id,
                    program=request.program,
                    args=request.args,
                    reply_to=self.address,
                ),
            )
        delay = request.timeout
        if request.backoff is not None:
            delay = request.backoff.next(request.timeout)
        request.timer = self.node.set_timer(
            delay, self._on_timeout, request.request_id
        )

    def _probe(self, groupid: str) -> None:
        for _mid, address in self.runtime.location.lookup(groupid):
            self.runtime.network.send(
                self.address, address, m.ViewProbeMsg(reply_to=self.address)
            )

    def _on_timeout(self, request_id: int) -> None:
        request = self._requests.get(request_id)
        if request is None:
            return
        if request.retries_left <= 0:
            self._requests.pop(request_id, None)
            self._resolve_unknown(request, "retries exhausted")
            return
        request.retries_left -= 1
        self.cache.invalidate(request.groupid)
        self._send(request)

    def _resolve_unknown(self, request: _PendingRequest, reason: str) -> None:
        """Give up on a request: the attempt may or may not have committed
        (the ledger is the ground truth).  Cancelling and nulling the timer
        matters on the kernel's lazy-cancel path: a resolved request must
        not pin a live heap entry (or fire into a cleared table) later."""
        if request.timer is not None:
            request.timer.cancel()
            request.timer = None
        if not request.future.done:
            request.future.set_result(CallResult("unknown", None))
        if self.tracer is not None:
            self.tracer.emit(
                "txn_outcome",
                node=self.node.node_id,
                driver=self.address,
                request_id=request.request_id,
                outcome="unknown",
                reason=reason,
            )

    # -- message handling ---------------------------------------------------------

    def handle_message(self, message, source: str) -> None:
        if isinstance(message, m.ReadReplyMsg):
            self._on_read_reply(message)
            return
        if isinstance(message, m.ReadRejectMsg):
            self._on_read_reject(message)
            return
        if isinstance(message, m.TxnOutcomeMsg):
            request = self._requests.pop(message.request_id, None)
            if request is None:
                return
            if request.timer is not None:
                request.timer.cancel()
            if not request.future.done:
                latency = self.sim.now - request.submitted_at
                self.runtime.metrics.observe("driver_txn_latency", latency)
                self.rtt.observe(latency)
                if self.tracer is not None:
                    self.tracer.emit(
                        "txn_outcome",
                        node=self.node.node_id,
                        driver=self.address,
                        request_id=message.request_id,
                        outcome=message.outcome,
                    )
                request.future.set_result(
                    CallResult(message.outcome, message.result)
                )
        elif isinstance(message, m.ViewProbeReplyMsg):
            if message.active and message.viewid is not None:
                primary_address = self.runtime.location.primary_address(
                    message.groupid, message.view
                )
                if self.cache.update(
                    message.groupid, message.viewid, message.view, primary_address
                ):
                    for request in list(self._requests.values()):
                        if (
                            request.groupid == message.groupid
                            and self.cache.get(request.groupid) is not None
                        ):
                            if request.timer is not None:
                                request.timer.cancel()
                            self._send(request)
                    for read in list(self._reads.values()):
                        if (
                            read.groupid == message.groupid
                            and self.cache.get(read.groupid) is not None
                        ):
                            if read.timer is not None:
                                read.timer.cancel()
                            self._send_read(read)
        elif isinstance(message, m.ViewChangedMsg):
            # Our request hit a non-primary.  Use the rejection's view info
            # if it carries any, otherwise probe the group.
            if message.groupid:
                if message.viewid is not None and message.view is not None:
                    primary_address = self.runtime.location.primary_address(
                        message.groupid, message.view
                    )
                    moved = self.cache.update(
                        message.groupid, message.viewid, message.view, primary_address
                    )
                    if moved:
                        for request in list(self._requests.values()):
                            if request.groupid == message.groupid:
                                if request.timer is not None:
                                    request.timer.cancel()
                                self._send(request)
                else:
                    self._probe(message.groupid)

    def on_crash(self) -> None:
        # Losing volatile state must not strand callers: resolve every
        # pending submission to "unknown" and drop its timer.
        for request in self._requests.values():
            self._resolve_unknown(request, "driver crashed")
        self._requests.clear()
        for read in self._reads.values():
            if read.timer is not None:
                read.timer.cancel()
                read.timer = None
            if not read.future.done:
                read.future.set_result(ReadResult("failed", None, "none", 0.0))
        self._reads.clear()
        if self.read_cache is not None:
            self.read_cache.commit_set.clear()
