"""``python -m repro.geo``: the geo subsystem docs drift gate.

Subcommands::

    check-docs DOC
        Fail unless DOC mentions every GeoConfig knob, placement policy,
        link-model preset, region fault kind, the geo_route trace event,
        the "nearest" read preference, and the geo CLIs (the docs-drift
        gate for docs/GEO.md).

The E20 determinism gate lives one module over:
``python -m repro.geo.gate``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.config import GeoConfig
from repro.geo.placement import PLACEMENT_POLICIES

#: The named link-model tiers a Topology derives (docs/GEO.md).
LINK_PRESETS = ("INTRA_ZONE", "INTRA_DC", "CROSS_DC")

#: Region-scale fault surface on FaultController.
REGION_FAULT_KINDS = ("region_partition", "wan_degradation", "restore_wan")

#: Trace event kinds the geo routing layer emits.
GEO_EVENT_KINDS = ("geo_route",)

#: Driver read preferences the geo layer adds or reinterprets.
GEO_READ_PREFERENCES = ("nearest",)

#: Command lines the doc must point readers at.
GEO_CLIS = ("python -m repro.geo.gate", "python -m repro.geo check-docs")


def _check_docs(args) -> int:
    try:
        with open(args.doc, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        print(f"cannot read {args.doc}: {error}", file=sys.stderr)
        return 2
    knobs = tuple(field.name for field in dataclasses.fields(GeoConfig))
    required = {
        "GeoConfig knob": knobs,
        "placement policy": PLACEMENT_POLICIES,
        "link preset": LINK_PRESETS,
        "region fault": REGION_FAULT_KINDS,
        "event kind": GEO_EVENT_KINDS,
        "read preference": GEO_READ_PREFERENCES,
        "CLI": GEO_CLIS,
    }
    missing = [
        f"{category} {name!r}"
        for category, names in required.items()
        for name in names
        if name not in text
    ]
    if missing:
        print(f"{args.doc} is missing documentation for: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    total = sum(len(names) for names in required.values())
    print(f"{args.doc} documents all {total} geo terms "
          f"({len(knobs)} knobs, {len(PLACEMENT_POLICIES)} policies, "
          f"{len(LINK_PRESETS)} presets, "
          f"{len(REGION_FAULT_KINDS)} region faults, "
          f"{len(GEO_EVENT_KINDS)} event kind, "
          f"{len(GEO_READ_PREFERENCES)} read preference, "
          f"{len(GEO_CLIS)} CLIs)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.geo", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser(
        "check-docs", help="fail unless DOC covers the geo vocabulary"
    )
    check.add_argument("doc")
    check.set_defaults(fn=_check_docs)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
