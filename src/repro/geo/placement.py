"""Placement policies: which site each cohort of a group lands on.

``Runtime.create_group`` (and therefore ``sharded_group``, which builds
its shards through it) consults the runtime's resolved policy whenever a
geo topology is armed and the caller did not pass explicit nodes.  A
policy maps ``(topology, groupid, n_cohorts)`` to one site per mid, in
mid order -- mid 0 is the group's initial primary, which is what
``primary_affinity`` exploits.

Policies are deliberately *stateful* (per-DC cursors, a group counter)
so consecutive groups -- e.g. a sharded group's shards -- interleave
across the topology deterministically by creation order.  Configure them
by name (``"spread"``, ``"single_dc"``, ``"single_dc:dc-a"``,
``"primary_affinity:dc-b"``) so each :class:`~repro.runtime.Runtime`
resolves a fresh instance; passing a policy *instance* shares its
cursors across every runtime that uses that config.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.geo.topology import Topology

#: The names ``resolve_placement`` accepts (docs/GEO.md vocabulary).
PLACEMENT_POLICIES = ("spread", "single_dc", "primary_affinity")


class PlacementPolicy:
    """Maps a group's cohorts to topology sites."""

    name = "policy"

    def place(self, topology: Topology, groupid: str, n_cohorts: int) -> List[str]:
        """One site per mid (index = mid), consuming this policy's cursors."""
        raise NotImplementedError

    def _take(
        self, topology: Topology, dc_name: str, cursors: Dict[str, int]
    ) -> str:
        """The DC's next slot-weighted site, advancing its cursor."""
        cycle = topology.sites_of(dc_name)
        cursor = cursors.get(dc_name, 0)
        cursors[dc_name] = cursor + 1
        return cycle[cursor % len(cycle)]


class Spread(PlacementPolicy):
    """Naive geo-redundancy: cohort i -> datacenter ``i % n_dcs``.

    Maximizes surviving-region coverage but puts every quorum on the
    WAN: each force waits for a cross-DC majority.
    """

    name = "spread"

    def __init__(self) -> None:
        self._cursors: Dict[str, int] = {}

    def place(self, topology: Topology, groupid: str, n_cohorts: int) -> List[str]:
        dcs = topology.dc_names()
        return [
            self._take(topology, dcs[index % len(dcs)], self._cursors)
            for index in range(n_cohorts)
        ]


class SingleDc(PlacementPolicy):
    """Whole groups in one datacenter: LAN quorums, region-sized blast radius.

    ``SingleDc("dc-a")`` pins every group to that DC; ``SingleDc()``
    round-robins *whole groups* across DCs by creation order, which gives
    a sharded group one shard per DC -- locality-aware sharding with only
    cross-shard 2PC paying WAN prices.
    """

    name = "single_dc"

    def __init__(self, dc: Optional[str] = None) -> None:
        self.dc = dc
        self._group_index = 0
        self._cursors: Dict[str, int] = {}

    def place(self, topology: Topology, groupid: str, n_cohorts: int) -> List[str]:
        dcs = topology.dc_names()
        if self.dc is not None:
            if self.dc not in dcs:
                raise ValueError(f"unknown datacenter {self.dc!r} (have {list(dcs)})")
            dc = self.dc
        else:
            dc = dcs[self._group_index % len(dcs)]
        self._group_index += 1
        return [self._take(topology, dc, self._cursors) for _ in range(n_cohorts)]


class PrimaryAffinity(PlacementPolicy):
    """A LAN majority in *region* (primary included), the rest spread.

    The first ``n // 2 + 1`` mids -- a bare majority, led by mid 0, the
    initial primary -- land in *region*, so every force commits on a
    LAN quorum; the remaining cohorts round-robin the other DCs for
    region-failure survival (losing *region* costs the majority, the
    deliberate trade this policy makes for local commit latency).
    """

    name = "primary_affinity"

    def __init__(self, region: str) -> None:
        self.region = region
        self._cursors: Dict[str, int] = {}

    def place(self, topology: Topology, groupid: str, n_cohorts: int) -> List[str]:
        dcs = topology.dc_names()
        if self.region not in dcs:
            raise ValueError(
                f"unknown region {self.region!r} (have {list(dcs)})"
            )
        majority = n_cohorts // 2 + 1
        others = [dc for dc in dcs if dc != self.region] or [self.region]
        sites = [
            self._take(topology, self.region, self._cursors)
            for _ in range(min(majority, n_cohorts))
        ]
        for index in range(n_cohorts - len(sites)):
            sites.append(
                self._take(topology, others[index % len(others)], self._cursors)
            )
        return sites


def spread() -> Spread:
    return Spread()


def single_dc(dc: Optional[str] = None) -> SingleDc:
    return SingleDc(dc)


def primary_affinity(region: str) -> PrimaryAffinity:
    return PrimaryAffinity(region)


def resolve_placement(spec: Union[str, PlacementPolicy]) -> PlacementPolicy:
    """A fresh policy from a name spec, or *spec* itself if already one.

    Accepted names: ``"spread"``, ``"single_dc"``, ``"single_dc:DC"``,
    ``"primary_affinity:REGION"``.
    """
    if isinstance(spec, PlacementPolicy):
        return spec
    name, _, arg = spec.partition(":")
    if name == "spread" and not arg:
        return Spread()
    if name == "single_dc":
        return SingleDc(arg or None)
    if name == "primary_affinity" and arg:
        return PrimaryAffinity(arg)
    raise ValueError(
        f"unknown placement {spec!r}; expected one of "
        f"{', '.join(PLACEMENT_POLICIES)} "
        "(single_dc:DC and primary_affinity:REGION take an argument)"
    )
