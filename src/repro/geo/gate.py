"""``python -m repro.geo.gate``: the E20 geo determinism gate.

Runs one seeded workload -- retry-until-commit distinct-key writes plus
a nearest-routed read-only loop -- under the flat network (``geo is
None``) and under each placement policy on the standard 3-DC topology,
each configuration **twice**, and fails unless

- every run commits every write,
- the two same-seed runs of each configuration agree byte-for-byte on
  metrics and on the sha256 state digest (same seed => same run, with
  topologies, placement, and geo routing armed), and
- every placement's final replicated state is byte-identical to the
  flat-network run's (geography moves messages and shifts latencies;
  it may never change what the protocol *computes*).

This is CI's check that ``repro.geo`` is a transport/placement plane,
not a second protocol.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments_geo import E20_PLACEMENTS, _geo_state_run

#: Gate conditions: None = the flat (paper-faithful) baseline.
GATE_CONDITIONS = (None,) + E20_PLACEMENTS + ("single_dc:dc-a",)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], prog="python -m repro.geo.gate"
    )
    parser.add_argument("--seed", type=int, default=20)
    parser.add_argument("--txns", type=int, default=24)
    args = parser.parse_args(argv)

    failed = False
    reference_digest = None
    for condition in GATE_CONDITIONS:
        label = condition if condition is not None else "flat"
        runs = [
            _geo_state_run(args.seed, condition, txns=args.txns)
            for _ in range(2)
        ]
        metrics, digest = runs[0]
        print(
            f"{label:>20}: writes={metrics['writes_committed']} "
            f"reads_ok={metrics['reads_ok']} modes={metrics['read_modes']} "
            f"digest={digest[:16]}..."
        )
        if runs[0] != runs[1]:
            print(
                f"geogate: FAIL -- {label} same-seed runs diverged:\n"
                f"  {runs[0]}\n  {runs[1]}",
                file=sys.stderr,
            )
            failed = True
        if metrics["writes_committed"] != args.txns:
            print(
                f"geogate: FAIL -- {label} committed only "
                f"{metrics['writes_committed']}/{args.txns} writes",
                file=sys.stderr,
            )
            failed = True
        if condition is None:
            reference_digest = digest
        elif digest != reference_digest:
            print(
                f"geogate: FAIL -- {label} state digest diverged from the "
                f"flat-network baseline:\n"
                f"  {reference_digest}\n  {digest}",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print(
        f"geogate: OK ({len(GATE_CONDITIONS)} conditions x 2 same-seed "
        "runs, byte-identical digests, state byte-identical to the "
        "flat-network baseline)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
