"""repro.geo: multi-datacenter topologies, placement, and geo routing.

The paper assumes a flat network.  This package models *where* cohorts
and clients live (datacenters -> zones -> node slots), derives per-pair
structural link models from that shape, places replica groups across it
(:mod:`repro.geo.placement`), and lets drivers route reads to the
nearest serving replica.  Everything is gated behind
``ProtocolConfig(geo=GeoConfig(topology=...))`` -- ``geo is None`` is
byte-identical to the flat network.  See docs/GEO.md.

CLI::

    python -m repro.geo check-docs docs/GEO.md   # docs drift gate
    python -m repro.geo.gate                     # E20 determinism gate
"""

from repro.config import GeoConfig
from repro.geo.placement import (
    PLACEMENT_POLICIES,
    PlacementPolicy,
    PrimaryAffinity,
    SingleDc,
    Spread,
    primary_affinity,
    resolve_placement,
    single_dc,
    spread,
)
from repro.geo.topology import (
    CROSS_DC,
    INTRA_DC,
    INTRA_ZONE,
    Datacenter,
    Topology,
    Zone,
    symmetric_topology,
)

__all__ = [
    "CROSS_DC",
    "Datacenter",
    "GeoConfig",
    "INTRA_DC",
    "INTRA_ZONE",
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "PrimaryAffinity",
    "SingleDc",
    "Spread",
    "Topology",
    "Zone",
    "primary_affinity",
    "resolve_placement",
    "single_dc",
    "spread",
    "symmetric_topology",
]
