"""Declarative multi-datacenter topologies (datacenters -> zones -> slots).

The paper assumes one flat network; ``Topology`` describes where nodes
*live* so the network can charge distance-appropriate delay and loss per
directed pair.  Three tiers of :class:`~repro.net.link.LinkModel` are
derived for any pair of sites:

- same zone        -> ``intra_zone``   (sub-millisecond rack fabric)
- same DC, other zone -> ``intra_dc``  (the LAN preset's regime)
- different DCs    -> ``cross_dc`` or a per-DC-pair override (WAN regime)

Sites are ``"dc/zone"`` strings; a zone's ``slots`` is advisory capacity
that weights round-robin placement (a zone with 2 slots receives twice
the cohorts of a 1-slot zone) -- the simulation never refuses to place a
node, it just cycles.

Topology models are *structural*: :class:`~repro.runtime.Runtime`
installs them via ``Network.set_structural_link``, so they are distinct
from fault-injected overrides, survive ``heal_all()``, and never count
as a liveness disruption.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.net.link import LinkModel

#: Same-zone fabric: faster than the flat-network LAN default.
INTRA_ZONE = LinkModel(base_delay=0.5, jitter=0.1)

#: Cross-zone, same-DC: the LAN regime (matches the flat default).
INTRA_DC = LinkModel(base_delay=1.0, jitter=0.2)

#: Cross-DC WAN: an order of magnitude slower, mildly lossy.  Chosen so
#: a cross-DC round trip (~24-32 time units) stays inside the default
#: call/force timeouts -- geography stretches latency without starving
#: the protocol.
CROSS_DC = LinkModel(
    base_delay=12.0,
    jitter=4.0,
    loss_probability=0.005,
    duplicate_probability=0.001,
)


@dataclasses.dataclass(frozen=True)
class Zone:
    """One failure/latency domain inside a datacenter."""

    name: str
    slots: int = 1

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"zone name must be non-empty, '/'-free: {self.name!r}")
        if self.slots < 1:
            raise ValueError(f"zone {self.name!r} needs at least 1 slot")


@dataclasses.dataclass(frozen=True)
class Datacenter:
    """A named region holding one or more zones."""

    name: str
    zones: Tuple[Zone, ...]

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"datacenter name must be non-empty, '/'-free: {self.name!r}")
        if not self.zones:
            raise ValueError(f"datacenter {self.name!r} has no zones")
        names = [zone.name for zone in self.zones]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate zone names in datacenter {self.name!r}: {names}")


class Topology:
    """Datacenters -> zones -> slots, with derived per-pair link models.

    ``pair_overrides`` maps *directed* ``(dc_a, dc_b)`` name pairs to a
    LinkModel replacing the ``cross_dc`` tier for that direction (model
    an asymmetric backbone by overriding only one direction).
    """

    def __init__(
        self,
        datacenters: Tuple[Datacenter, ...],
        intra_zone: LinkModel = INTRA_ZONE,
        intra_dc: LinkModel = INTRA_DC,
        cross_dc: LinkModel = CROSS_DC,
        pair_overrides: Optional[Dict[Tuple[str, str], LinkModel]] = None,
    ):
        datacenters = tuple(datacenters)
        if not datacenters:
            raise ValueError("a topology needs at least one datacenter")
        names = [dc.name for dc in datacenters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate datacenter names: {names}")
        self.datacenters = datacenters
        self.intra_zone = intra_zone
        self.intra_dc = intra_dc
        self.cross_dc = cross_dc
        self.pair_overrides = dict(pair_overrides or {})
        for dc_a, dc_b in self.pair_overrides:
            if dc_a not in names or dc_b not in names:
                raise ValueError(
                    f"pair_overrides names unknown datacenter: ({dc_a!r}, {dc_b!r})"
                )
        self._sites: Tuple[str, ...] = tuple(
            f"{dc.name}/{zone.name}" for dc in datacenters for zone in dc.zones
        )
        self._site_set = frozenset(self._sites)
        # Slot-weighted per-DC site cycles, declaration order (placement
        # policies walk these deterministically).
        self._dc_cycles: Dict[str, Tuple[str, ...]] = {
            dc.name: tuple(
                f"{dc.name}/{zone.name}"
                for zone in dc.zones
                for _ in range(zone.slots)
            )
            for dc in datacenters
        }

    # -- site addressing -----------------------------------------------------

    def sites(self) -> Tuple[str, ...]:
        """Every ``"dc/zone"`` site, declaration order."""
        return self._sites

    def has_site(self, site: str) -> bool:
        return site in self._site_set

    def dc_names(self) -> Tuple[str, ...]:
        return tuple(dc.name for dc in self.datacenters)

    def dc_of(self, site: str) -> str:
        """The datacenter (region) a site belongs to."""
        if site not in self._site_set:
            raise ValueError(f"unknown site {site!r} (have {list(self._sites)})")
        return site.split("/", 1)[0]

    def sites_of(self, dc_name: str) -> Tuple[str, ...]:
        """The DC's slot-weighted site cycle (zone with 2 slots appears twice)."""
        try:
            return self._dc_cycles[dc_name]
        except KeyError:
            raise ValueError(
                f"unknown datacenter {dc_name!r} (have {list(self.dc_names())})"
            ) from None

    def slot_count(self) -> int:
        return sum(len(cycle) for cycle in self._dc_cycles.values())

    # -- derived link models -------------------------------------------------

    def link_between(self, site_a: str, site_b: str) -> LinkModel:
        """The structural model for traffic ``site_a -> site_b``."""
        for site in (site_a, site_b):
            if site not in self._site_set:
                raise ValueError(f"unknown site {site!r} (have {list(self._sites)})")
        if site_a == site_b:
            return self.intra_zone
        dc_a = site_a.split("/", 1)[0]
        dc_b = site_b.split("/", 1)[0]
        if dc_a == dc_b:
            return self.intra_dc
        return self.pair_overrides.get((dc_a, dc_b), self.cross_dc)

    def distance(self, site_a: str, site_b: str) -> float:
        """A routing metric: the pair's structural base delay."""
        return self.link_between(site_a, site_b).base_delay

    def describe(self) -> str:
        lines = []
        for dc in self.datacenters:
            zones = ", ".join(f"{z.name}({z.slots})" for z in dc.zones)
            lines.append(f"{dc.name}: {zones}")
        return "\n".join(lines)


def symmetric_topology(
    n_dcs: int = 3,
    zones_per_dc: int = 2,
    slots_per_zone: int = 2,
    **kwargs,
) -> Topology:
    """The standard E20 shape: ``dc-a .. dc-N``, each with ``z1 .. zM``."""
    if n_dcs < 1 or n_dcs > 26:
        raise ValueError("n_dcs must be in 1..26")
    return Topology(
        tuple(
            Datacenter(
                f"dc-{chr(ord('a') + index)}",
                tuple(
                    Zone(f"z{z + 1}", slots_per_zone) for z in range(zones_per_dc)
                ),
            )
            for index in range(n_dcs)
        ),
        **kwargs,
    )
