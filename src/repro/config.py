"""Protocol tuning knobs, gathered in one place.

Defaults are expressed in the same (arbitrary) time unit as the network's
``LinkModel.base_delay`` (default 1.0); think "milliseconds on a LAN".
The paper's engineering advice is encoded in the defaults:

- section 4.1: "a manager should use a fairly long timeout while it waits to
  hear from all cohorts ... an underling should use a fairly long timeout
  before it becomes a manager" -- hence ``invite_timeout`` and
  ``underling_timeout`` are generous multiples of a round trip;
- section 3.7: "Careful engineering is needed here to provide both speedy
  delivery and small numbers of messages" -- ``flush_interval`` trades
  prepare-time force stalls (E2) against background message volume.

The knobs are grouped into three nested sub-configs:

- :class:`TimingConfig` holds every timeout/interval, so a variant sweep
  (E16/E17/E18) can configure one object and pass it as
  ``ProtocolConfig(timing=...)``;
- :class:`BatchConfig` holds the replication hot-path batching knobs
  (disabled by default -- ``BatchConfig()`` reproduces the paper-faithful
  unbatched baseline);
- :class:`ReadConfig` holds the read-dominant serving path (primary
  leases, stale-bounded backup reads, client commit-set caches; disabled
  by default -- every read pays the full call path, as in the paper).

For backwards compatibility every :class:`TimingConfig` knob is *also* a
flat field on :class:`ProtocolConfig` (``ProtocolConfig(call_timeout=60)``
and ``dataclasses.replace(cfg, flush_interval=2.0)`` keep working); the two
representations are reconciled in ``__post_init__``.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover -- type-only; avoids a config<->geo cycle
    from repro.geo.topology import Topology

from repro.storage.stable import StableStoragePolicy


@dataclasses.dataclass
class TimingConfig:
    """Every timeout and interval of the protocol, in one sweepable object.

    Field meanings are documented on :class:`ProtocolConfig`, which mirrors
    each of these as a flat attribute.
    """

    # -- communication buffer (section 2, 3) --
    flush_interval: float = 5.0
    force_timeout: float = 60.0
    # -- failure detection (section 4) --
    im_alive_interval: float = 10.0
    suspect_multiplier: float = 3.5
    # -- adaptive detection & retry pacing (repro.detect) --
    min_timeout: float = 5.0
    backoff_multiplier: float = 2.0
    backoff_cap: float = 8.0
    backoff_jitter: float = 0.5
    promotion_jitter: float = 0.5
    # -- view change (section 4, figure 5) --
    invite_timeout: float = 40.0
    underling_timeout: float = 80.0
    view_retry_delay: float = 25.0
    # -- transaction processing (section 3) --
    call_timeout: float = 50.0
    call_probes: int = 2
    prepare_timeout: float = 60.0
    commit_retry_interval: float = 40.0
    lock_timeout: float = 120.0
    query_interval: float = 80.0
    # -- stable storage (section 4.2) --
    stable_write_latency: float = 5.0


@dataclasses.dataclass
class BatchConfig:
    """Replication hot-path batching and pipelining (see docs/PERF.md).

    ``BatchConfig()`` (``enabled=False``) is the paper-faithful baseline:
    every ``force_to`` flushes immediately and every :class:`BufferMsg` is
    acknowledged individually.  With ``enabled=True`` the primary coalesces
    records into one serialized flush per ``flush_interval`` tick, keeps up
    to ``pipeline_depth`` record batches in flight per backup before
    stop-and-wait, backups coalesce their cumulative acks onto the same
    tick, and buffer traffic doubles as liveness (suppressing redundant
    I'm-alive heartbeats).  Safety is unchanged: delivery stays in-order
    and gapless, forces still wait for a sub-majority, and commit acks
    still follow the force (proven by the batching determinism tests).
    """

    #: Master switch; False reproduces the unbatched protocol exactly.
    enabled: bool = False
    #: Max records per BufferMsg (also the unbatched per-flush cap).
    max_batch: int = 64
    #: Coalescing delay before a scheduled flush/ack tick fires.  Small
    #: relative to the network's base delay, so batching adds at most one
    #: micro-tick of latency to a force.
    flush_interval: float = 0.5
    #: Record batches in flight per backup before the primary stops
    #: sending and waits for acks (go-back-N window, in units of
    #: ``max_batch`` records).
    pipeline_depth: int = 4
    #: Buffer traffic carries ``sent_at`` and feeds the failure detector;
    #: heartbeats to recently-served peers are suppressed.
    piggyback_liveness: bool = True

    def window(self) -> int:
        """In-flight record window per backup (records, not messages)."""
        return max(1, self.pipeline_depth) * max(1, self.max_batch)


@dataclasses.dataclass
class ReadConfig:
    """The read-dominant serving path (see docs/READS.md).

    ``ReadConfig()`` (``enabled=False``) is the paper-faithful baseline:
    every read is a full transaction through the primary's event buffer
    and nothing below exists on the wire.  With ``enabled=True``:

    - the primary answers :class:`~repro.core.messages.ReadMsg` requests
      from committed state *locally* while it holds a quorum lease --
      grants piggyback on the I'm-alive/buffer-ack traffic the backups
      already send, and every view formation carries the acceptors'
      outstanding promise bounds so a new primary defers activation until
      any lease a prior primary could still hold has expired;
    - backups answer reads from their applied prefix, tagged with the
      viewstamp they reflect, iff the prefix's staleness is within the
      request's ``max_staleness`` bound;
    - drivers may keep a Wren-style commit-set cache of ``(key, value,
      timestamp)`` entries pruned against a stable-timestamp watermark.

    Safety does not depend on clocks being synchronized -- the simulator's
    clock is global -- but it does depend on ``lease_duration`` staying
    below the time a partitioned primary keeps serving after its grants
    stop renewing, which is exactly what the grant expiries encode.
    """

    #: Master switch; False reproduces the read-through-the-call-path
    #: protocol exactly (the ``reads is None`` hot path, perf-gated by
    #: the ``lease_overhead`` scenario).
    enabled: bool = False
    #: How far ahead a grant (and therefore a promise) extends.  Must
    #: comfortably exceed ``im_alive_interval`` so heartbeat-carried
    #: renewals keep a healthy lease alive, and should stay below
    #: ``underling_timeout`` so lease waits do not dominate view changes.
    lease_duration: float = 30.0
    #: Backups answer stale-bounded reads from their applied prefix.
    backup_reads: bool = True
    #: Bound used when a read request does not carry its own.
    default_max_staleness: float = 50.0
    #: Drivers keep a commit-set cache (Wren-style) of read/write results.
    client_cache: bool = False
    #: Cache watermark window: entries with timestamp older than
    #: ``now - cache_staleness`` are pruned (``t >= lst`` survives).
    cache_staleness: float = 25.0
    #: Commit-set entries kept per driver (oldest evicted beyond this).
    cache_capacity: int = 1024


@dataclasses.dataclass
class GeoConfig:
    """Geo-replication: topology, placement, and client routing (docs/GEO.md).

    ``ProtocolConfig.geo`` defaults to ``None`` -- the paper-faithful
    flat network, byte-identical to the pre-geo schedules (perf-gated by
    the ``geo_overhead`` scenario).  Arming a topology makes the runtime
    install its per-pair models as *structural* links, place cohorts by
    the ``placement`` policy, and register every cohort's and driver's
    site with the :class:`~repro.location.LocationService`.
    """

    #: Where nodes can live; ``None`` keeps even an instantiated
    #: GeoConfig inert (flat network).
    topology: Optional["Topology"] = None
    #: A placement name (``"spread"``, ``"single_dc"``, ``"single_dc:DC"``,
    #: ``"primary_affinity:REGION"``) or a PlacementPolicy instance.
    #: Names are recommended: each Runtime resolves a fresh instance.
    placement: Union[str, object] = "spread"
    #: Drivers with a site route reads to the nearest lease-holding
    #: replica (nearest backup for ``prefer="backup"``/``"nearest"``)
    #: instead of choosing uniformly; emits ``geo_route`` trace events.
    geo_routing: bool = True


@dataclasses.dataclass
class ScaleConfig:
    """Large-cohort mechanisms: gossip, ack trees, witnesses (docs/SCALE.md).

    ``ProtocolConfig.scale`` defaults to ``None`` -- the paper-faithful
    cohort where every backup talks directly to the primary, byte-identical
    to the pre-scale schedules (perf-gated by the ``scale_overhead``
    scenario and proven by ``python -m repro.scale.gate``).  Each mechanism
    below is independently toggleable; ``ScaleConfig()`` with all three off
    also reproduces the baseline schedule exactly.

    - ``gossip``: instead of every cohort heartbeating every peer
      (O(n^2) I'm-alive traffic, with the primary an O(n) hub), each
      cohort heartbeats ``gossip_fanout`` seeded-random peers per period
      and piggybacks recent liveness *evidence* -- ``(mid, heard_at)``
      pairs -- which receivers fold into the accrual detector via
      :meth:`repro.detect.FailureDetector.heard_relayed` (advancing
      last-heard without polluting the RTT/interval estimators, since a
      relay hop is not an RTT sample).
    - ``ack_tree``: storage backups forward their cumulative buffer acks
      up a deterministic ``ack_fanout``-ary tree (sorted by module id)
      instead of straight to the primary; interior nodes coalesce their
      subtree's ``(mid, acked_ts)`` pairs for ``ack_delay`` before
      forwarding, so the primary's ack fan-in is O(fanout), not O(n).
      Composes with :class:`BatchConfig` ack coalescing.
    - ``witnesses``: the highest ``witnesses`` module ids in each group
      vote in view formation (their acceptances count toward the
      majority) but hold no event buffer -- the primary never replicates
      records to them, shrinking fan-out from n-1 to n-1-witnesses.
      Bounded by ``witnesses <= n - majority(n)`` so every force quorum
      still consists entirely of storage replicas.
    """

    #: Epidemic heartbeat dissemination (off = all-peers heartbeats).
    gossip: bool = False
    #: Peers each heartbeat round targets when gossip is on.
    gossip_fanout: int = 3
    #: Evidence freshness window, in ``im_alive_interval`` units: only
    #: peers heard within this horizon are relayed as evidence.
    evidence_horizon_intervals: float = 3.0
    #: Aggregate buffer acks up a fan-in tree (off = acks go direct).
    ack_tree: bool = False
    #: Fan-in of the ack tree (children per interior node, and the number
    #: of tree roots reporting directly to the primary).
    ack_fanout: int = 4
    #: Coalescing delay before an interior node forwards its subtree's
    #: aggregated acks upward.
    ack_delay: float = 0.5
    #: Bufferless voting members per group (0 = every member replicates).
    witnesses: int = 0

    def any_enabled(self) -> bool:
        """True iff some mechanism actually changes the wire protocol."""
        return self.gossip or self.ack_tree or self.witnesses > 0


#: Names of the knobs mirrored between TimingConfig and ProtocolConfig.
_TIMING_FIELDS: Tuple[str, ...] = tuple(
    field.name for field in dataclasses.fields(TimingConfig)
)

#: Shared default instance the flat-field defaults are read from.
_DEFAULT_TIMING = TimingConfig()


@dataclasses.dataclass
class ProtocolConfig:
    """Timeouts and intervals for cohorts, clients, and failure detection.

    Timing knobs live canonically in ``self.timing`` (a
    :class:`TimingConfig`) and batching knobs in ``self.batch`` (a
    :class:`BatchConfig`); the flat timing attributes below are kept in
    sync for compatibility.  When both a nested ``timing=`` and an explicit
    flat kwarg are given, a flat value that differs from its default wins
    (this is what keeps ``dataclasses.replace(cfg, call_timeout=...)``
    working -- ``replace`` re-passes the synced nested config alongside the
    overridden flat field).  The one ambiguity: explicitly passing a flat
    value equal to its default *plus* a nested config that disagrees
    resolves to the nested value; pass ``timing=`` alone in that case.
    """

    # -- communication buffer (section 2, 3) --
    flush_interval: float = _DEFAULT_TIMING.flush_interval   # background send
    #                                       of buffered events (doubles as the
    #                                       retransmit tick in batched mode)
    force_timeout: float = _DEFAULT_TIMING.force_timeout     # give up on a
    #                                       force -> view change

    # -- failure detection (section 4) --
    im_alive_interval: float = _DEFAULT_TIMING.im_alive_interval  # heartbeat period
    suspect_multiplier: float = _DEFAULT_TIMING.suspect_multiplier  # missed-
    #                                       heartbeat threshold, in periods

    # -- adaptive detection & retry pacing (beyond the paper; repro.detect) --
    adaptive_timeouts: bool = True        # derive operational timeouts from
    #                                       live RTT estimates and use accrual
    #                                       suspicion; False restores the
    #                                       paper-faithful fixed constants
    min_timeout: float = _DEFAULT_TIMING.min_timeout  # floor for any
    #                                       RTT-derived timeout
    backoff_multiplier: float = _DEFAULT_TIMING.backoff_multiplier  # exponential
    #                                       retry growth factor
    backoff_cap: float = _DEFAULT_TIMING.backoff_cap  # retry delay cap, in
    #                                       base delays
    backoff_jitter: float = _DEFAULT_TIMING.backoff_jitter  # retry jitter
    #                                       spread (delay scaled by 1 +/-
    #                                       jitter/2, seeded RNG)
    promotion_jitter: float = _DEFAULT_TIMING.promotion_jitter  # underling->
    #                                       manager timeout spread,
    #                                       desynchronizing competing managers

    # -- view change (section 4, figure 5) --
    invite_timeout: float = _DEFAULT_TIMING.invite_timeout  # manager waits
    #                                       this long for accepts
    underling_timeout: float = _DEFAULT_TIMING.underling_timeout  # underling ->
    #                                       manager on silence
    view_retry_delay: float = _DEFAULT_TIMING.view_retry_delay  # manager
    #                                       retries formation after fail
    ordered_managers: bool = True         # section 4.1: only become manager if
    #                                       higher-priority cohorts look dead
    extended_formation_rule: bool = False # beyond-the-paper condition 4: form
    #                                       when enough *backups* of the latest
    #                                       view accepted normally that every
    #                                       possible force quorum is covered
    #                                       (see DESIGN.md D11); the paper's
    #                                       rule only trusts the old primary

    # -- transaction processing (section 3) --
    call_timeout: float = _DEFAULT_TIMING.call_timeout  # client gives up on a
    #                                       remote call
    call_probes: int = _DEFAULT_TIMING.call_probes  # probes before declaring
    #                                       no-reply
    prepare_timeout: float = _DEFAULT_TIMING.prepare_timeout  # coordinator
    #                                       retry interval
    commit_retry_interval: float = _DEFAULT_TIMING.commit_retry_interval
    #                                       # coordinator re-sends commits
    lock_timeout: float = _DEFAULT_TIMING.lock_timeout  # deadlock breaker
    #                                       (documented deviation)
    query_interval: float = _DEFAULT_TIMING.query_interval  # participant
    #                                       queries coordinator

    # -- unilateral view edits (section 4.1, E12) --
    unilateral_edits: bool = False        # primary may exclude/add backups
    #                                       without a full view change

    # -- ablations (experiment E7) --
    viewstamp_checks: bool = True         # False emulates the virtual
    #                                       partitions rule: any transaction
    #                                       active across a view change must
    #                                       abort (section 5: "Virtual
    #                                       partitions force transactions that
    #                                       were active across a view change
    #                                       to abort... We use viewstamps to
    #                                       avoid the abort")
    force_on_call: bool = False           # section 6 ablation: force each
    #                                       completed-call record before the
    #                                       reply -- "there would be no aborts
    #                                       due to view changes, but calls
    #                                       would be processed more slowly"

    # -- stable storage (section 4.2) --
    stable_write_latency: float = _DEFAULT_TIMING.stable_write_latency
    storage_policy: StableStoragePolicy = StableStoragePolicy.MINIMAL
    force_to_stable: bool = False         # every force also blocks on a
    #                                       stable-storage write.  With a
    #                                       1-cohort group this *is* the
    #                                       conventional unreplicated system
    #                                       of section 3.7 (event records <->
    #                                       stable-storage records); with
    #                                       replicas it is the section 4.2
    #                                       catastrophe hardening.

    # -- nested sub-configs (canonical home of the knobs above) --
    timing: Optional[TimingConfig] = None
    batch: Optional[BatchConfig] = None
    reads: Optional[ReadConfig] = None
    # Unlike batch/reads, geo is NOT auto-instantiated: ``geo is None``
    # (or a GeoConfig without a topology) is the flat-network fast path.
    geo: Optional[GeoConfig] = None
    # Like geo, scale is NOT auto-instantiated: ``scale is None`` (or a
    # ScaleConfig with every mechanism off) is the paper-faithful cohort
    # fast path, byte-identical to pre-scale schedules.
    scale: Optional[ScaleConfig] = None

    def __post_init__(self) -> None:
        if self.batch is None:
            self.batch = BatchConfig()
        if self.reads is None:
            self.reads = ReadConfig()
        if self.timing is None:
            self.timing = TimingConfig(
                **{name: getattr(self, name) for name in _TIMING_FIELDS}
            )
            return
        # Reconcile nested and flat: an explicitly overridden flat value
        # (one that differs from the TimingConfig default) wins, everything
        # else comes from the nested config; then rebuild the nested config
        # from the merged values so the two views cannot disagree.
        merged = {}
        for name in _TIMING_FIELDS:
            flat = getattr(self, name)
            if flat != getattr(_DEFAULT_TIMING, name):
                merged[name] = flat
            else:
                merged[name] = getattr(self.timing, name)
        for name, value in merged.items():
            setattr(self, name, value)
        self.timing = TimingConfig(**merged)

    def suspect_timeout(self) -> float:
        """Silence longer than this marks a cohort unreachable."""
        return self.im_alive_interval * self.suspect_multiplier


@dataclasses.dataclass
class TraceConfig:
    """Knobs for :mod:`repro.trace` (pass to ``Runtime(trace=...)``).

    Tracing is wired at Runtime construction: omitting ``trace`` (or
    setting ``enabled=False``) leaves every instrumented hot path with a
    ``tracer is None`` test and nothing else -- the zero-cost path the
    ``trace_overhead`` perf scenario regression-gates.
    """

    enabled: bool = True
    #: Bounded in-memory sink: oldest events are evicted past this size.
    ring_size: int = 65_536
    #: "all", or an explicit tuple of monitor names from
    #: :data:`repro.trace.monitors.MONITORS` (empty tuple = tracing only).
    monitors: Union[str, Tuple[str, ...]] = "all"
    #: Written by ``Tracer.maybe_export()``: ``*.json`` gets Chrome
    #: ``trace_event`` format, anything else JSONL.
    export_path: Optional[str] = None
