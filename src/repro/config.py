"""Protocol tuning knobs, gathered in one place.

Defaults are expressed in the same (arbitrary) time unit as the network's
``LinkModel.base_delay`` (default 1.0); think "milliseconds on a LAN".
The paper's engineering advice is encoded in the defaults:

- section 4.1: "a manager should use a fairly long timeout while it waits to
  hear from all cohorts ... an underling should use a fairly long timeout
  before it becomes a manager" -- hence ``invite_timeout`` and
  ``underling_timeout`` are generous multiples of a round trip;
- section 3.7: "Careful engineering is needed here to provide both speedy
  delivery and small numbers of messages" -- ``flush_interval`` trades
  prepare-time force stalls (E2) against background message volume.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

from repro.storage.stable import StableStoragePolicy


@dataclasses.dataclass
class ProtocolConfig:
    """Timeouts and intervals for cohorts, clients, and failure detection."""

    # -- communication buffer (section 2, 3) --
    flush_interval: float = 5.0           # background send of buffered events
    force_timeout: float = 60.0           # give up on a force -> view change

    # -- failure detection (section 4) --
    im_alive_interval: float = 10.0       # heartbeat period
    suspect_multiplier: float = 3.5       # missed-heartbeat threshold, in periods

    # -- adaptive detection & retry pacing (beyond the paper; repro.detect) --
    adaptive_timeouts: bool = True        # derive operational timeouts from
    #                                       live RTT estimates and use accrual
    #                                       suspicion; False restores the
    #                                       paper-faithful fixed constants
    min_timeout: float = 5.0              # floor for any RTT-derived timeout
    backoff_multiplier: float = 2.0       # exponential retry growth factor
    backoff_cap: float = 8.0              # retry delay cap, in base delays
    backoff_jitter: float = 0.5           # retry jitter spread (delay scaled
    #                                       by 1 +/- jitter/2, seeded RNG)
    promotion_jitter: float = 0.5         # underling->manager timeout spread,
    #                                       desynchronizing competing managers

    # -- view change (section 4, figure 5) --
    invite_timeout: float = 40.0          # manager waits this long for accepts
    underling_timeout: float = 80.0       # underling -> manager on silence
    view_retry_delay: float = 25.0        # manager retries formation after fail
    ordered_managers: bool = True         # section 4.1: only become manager if
    #                                       higher-priority cohorts look dead
    extended_formation_rule: bool = False # beyond-the-paper condition 4: form
    #                                       when enough *backups* of the latest
    #                                       view accepted normally that every
    #                                       possible force quorum is covered
    #                                       (see DESIGN.md D11); the paper's
    #                                       rule only trusts the old primary

    # -- transaction processing (section 3) --
    call_timeout: float = 50.0            # client gives up on a remote call
    call_probes: int = 2                  # probes before declaring no-reply
    prepare_timeout: float = 60.0         # coordinator retry interval
    commit_retry_interval: float = 40.0   # coordinator re-sends commits
    lock_timeout: float = 120.0           # deadlock breaker (documented deviation)
    query_interval: float = 80.0          # participant queries coordinator

    # -- unilateral view edits (section 4.1, E12) --
    unilateral_edits: bool = False        # primary may exclude/add backups
    #                                       without a full view change

    # -- ablations (experiment E7) --
    viewstamp_checks: bool = True         # False emulates the virtual
    #                                       partitions rule: any transaction
    #                                       active across a view change must
    #                                       abort (section 5: "Virtual
    #                                       partitions force transactions that
    #                                       were active across a view change
    #                                       to abort... We use viewstamps to
    #                                       avoid the abort")
    force_on_call: bool = False           # section 6 ablation: force each
    #                                       completed-call record before the
    #                                       reply -- "there would be no aborts
    #                                       due to view changes, but calls
    #                                       would be processed more slowly"

    # -- stable storage (section 4.2) --
    stable_write_latency: float = 5.0
    storage_policy: StableStoragePolicy = StableStoragePolicy.MINIMAL
    force_to_stable: bool = False         # every force also blocks on a
    #                                       stable-storage write.  With a
    #                                       1-cohort group this *is* the
    #                                       conventional unreplicated system
    #                                       of section 3.7 (event records <->
    #                                       stable-storage records); with
    #                                       replicas it is the section 4.2
    #                                       catastrophe hardening.

    def suspect_timeout(self) -> float:
        """Silence longer than this marks a cohort unreachable."""
        return self.im_alive_interval * self.suspect_multiplier


@dataclasses.dataclass
class TraceConfig:
    """Knobs for :mod:`repro.trace` (pass to ``Runtime(trace=...)``).

    Tracing is wired at Runtime construction: omitting ``trace`` (or
    setting ``enabled=False``) leaves every instrumented hot path with a
    ``tracer is None`` test and nothing else -- the zero-cost path the
    ``trace_overhead`` perf scenario regression-gates.
    """

    enabled: bool = True
    #: Bounded in-memory sink: oldest events are evicted past this size.
    ring_size: int = 65_536
    #: "all", or an explicit tuple of monitor names from
    #: :data:`repro.trace.monitors.MONITORS` (empty tuple = tracing only).
    monitors: Union[str, Tuple[str, ...]] = "all"
    #: Written by ``Tracer.maybe_export()``: ``*.json`` gets Chrome
    #: ``trace_event`` format, anything else JSONL.
    export_path: Optional[str] = None
