"""Round-trip estimation and the timeouts derived from it.

The estimator is the classic Jacobson/Karels pair of exponentially
weighted moving averages (SRTT and RTTVAR, RFC 6298 coefficients) that
TCP uses for its retransmission timer.  Samples come from two places:

- heartbeat one-way delays (``ImAliveMsg.sent_at`` against the receiver's
  clock, doubled -- the simulator has a global clock, so this is exact);
- observed call round trips (request sent to reply received).

Call samples include server-side processing -- a call blocked on a lock
inflates SRTT -- which errs on the conservative side: timeouts grow
toward their fixed ceilings, they never become trigger-happy.
"""

from __future__ import annotations

from typing import Optional


class RttEstimator:
    """Jacobson/Karels smoothed RTT + variance -> retransmission timeout.

    ``rto`` is ``srtt + k * rttvar`` (k=4, as in TCP).  Until the first
    sample arrives the estimator reports ``None`` so consumers can fall
    back to their configured fixed timeout.
    """

    __slots__ = ("srtt", "rttvar", "samples", "_alpha", "_beta", "_k")

    def __init__(self, alpha: float = 0.125, beta: float = 0.25, k: float = 4.0):
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.samples = 0
        self._alpha = alpha
        self._beta = beta
        self._k = k

    def observe(self, sample: float) -> None:
        """Feed one round-trip sample (ignored if non-positive)."""
        if sample <= 0.0:
            return
        self.samples += 1
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
            return
        self.rttvar = (1.0 - self._beta) * self.rttvar + self._beta * abs(
            self.srtt - sample
        )
        self.srtt = (1.0 - self._alpha) * self.srtt + self._alpha * sample

    @property
    def rto(self) -> Optional[float]:
        """Current retransmission timeout, or None before any sample."""
        if self.srtt is None:
            return None
        return self.srtt + self._k * self.rttvar

    def reset(self) -> None:
        self.srtt = None
        self.rttvar = 0.0
        self.samples = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.srtt is None:
            return "RttEstimator(no samples)"
        return (
            f"RttEstimator(srtt={self.srtt:.3f}, rttvar={self.rttvar:.3f}, "
            f"rto={self.rto:.3f}, n={self.samples})"
        )


class AdaptiveTimeouts:
    """Protocol timeouts derived from a live RTO instead of constants.

    Each derived timeout is ``multiplier * rto`` plus a slack term for any
    known server-side waiting (a prepare may sit behind a buffer flush,
    for example), clamped to ``[config.min_timeout, fixed]`` where
    ``fixed`` is the paper-faithful constant from
    :class:`~repro.config.ProtocolConfig`.  The clamp means adaptive mode
    can only detect failures *faster* than the fixed configuration, never
    wait longer; and with ``adaptive_timeouts`` off (or before the first
    RTT sample) every method returns exactly the fixed constant.
    """

    def __init__(self, config, rtt: RttEstimator):
        self.config = config
        self.rtt = rtt

    def _derive(self, fixed: float, multiplier: float, slack: float = 0.0) -> float:
        if not self.config.adaptive_timeouts:
            return fixed
        rto = self.rtt.rto
        if rto is None:
            return fixed
        return min(fixed, max(self.config.min_timeout, multiplier * rto + slack))

    def call_timeout(self) -> float:
        """Per-attempt wait for a call reply (retransmits probe sooner)."""
        return self._derive(self.config.call_timeout, 3.0)

    def prepare_timeout(self) -> float:
        """Coordinator's wait for prepare-ok: the participant may have to
        force, which can sit behind a flush interval."""
        return self._derive(
            self.config.prepare_timeout, 4.0, slack=2.0 * self.config.flush_interval
        )

    def commit_retry_interval(self) -> float:
        """Coordinator's commit re-send period: the participant forces the
        committed record before acknowledging."""
        return self._derive(
            self.config.commit_retry_interval, 3.0, slack=self.config.flush_interval
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptiveTimeouts(call={self.call_timeout():.2f}, "
            f"prepare={self.prepare_timeout():.2f})"
        )
