"""Capped exponential backoff with deterministic seeded jitter.

Every retry path in the protocol draws its delay from a :class:`Backoff`
so that (a) persistent failures are retried progressively less often and
(b) *competing* retriers -- most importantly duelling view managers,
which with symmetric fixed delays mint competing viewids in lockstep
forever -- desynchronize.  Jitter comes from a named fork of the
simulator's seeded RNG, so the "random" spread is byte-for-byte
reproducible for a given seed.
"""

from __future__ import annotations

from typing import Optional


class Backoff:
    """Delay policy: ``min(base * multiplier**n, base * cap_factor)``,
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter/2, 1 + jitter/2]``.

    ``n`` is the number of draws since the last :meth:`reset`.  The base
    may be overridden per draw (callers whose base delay is itself
    adaptive -- e.g. RTT-derived call timeouts -- pass the live value).
    """

    __slots__ = ("base", "rng", "multiplier", "cap_factor", "jitter", "attempts")

    def __init__(
        self,
        base: float,
        rng,
        multiplier: float = 2.0,
        cap_factor: float = 8.0,
        jitter: float = 0.5,
    ):
        if base <= 0:
            raise ValueError("backoff base must be > 0")
        if multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if cap_factor < 1.0:
            raise ValueError("backoff cap_factor must be >= 1")
        if not 0.0 <= jitter < 2.0:
            raise ValueError("backoff jitter must be in [0, 2)")
        self.base = base
        self.rng = rng
        self.multiplier = multiplier
        self.cap_factor = cap_factor
        self.jitter = jitter
        self.attempts = 0

    def next(self, base: Optional[float] = None) -> float:
        """The next delay; advances the attempt counter."""
        b = self.base if base is None else base
        nominal = min(b * self.multiplier**self.attempts, b * self.cap_factor)
        self.attempts += 1
        if self.jitter > 0.0:
            nominal *= 1.0 + self.jitter * (self.rng.random() - 0.5)
        return nominal

    def reset(self) -> bool:
        """Restart from the base delay; True if any attempts were pending."""
        had_attempts = self.attempts > 0
        self.attempts = 0
        return had_attempts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Backoff(base={self.base}, x{self.multiplier}, "
            f"cap={self.cap_factor}x, attempts={self.attempts})"
        )
