"""Accrual-style failure suspicion from the heartbeat arrival process.

The paper's failure detector is a fixed threshold: silence longer than
``suspect_timeout()`` (a multiple of the configured heartbeat period)
marks a cohort unreachable.  On a lossy or jittery link that constant is
wrong in both directions -- too eager when beats are merely dropped, too
lazy when the link is actually fast.  Following the phi-accrual idea
(Hayashibara et al.), each peer's *observed* inter-arrival process is
summarized (EWMA mean + mean absolute deviation), and the suspicion level
is the current silence expressed in units of the expected inter-arrival
time.  Crossing ``config.suspect_multiplier`` marks the peer suspect --
the same threshold semantics as the fixed detector, but against a learned
baseline that widens automatically when the network drops beats.

With ``config.adaptive_timeouts`` off the detector reproduces the paper's
fixed rule exactly (silence > ``suspect_timeout()``), so ablations compare
like with like.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.detect.rtt import RttEstimator


class _PeerState:
    __slots__ = ("last_heard", "mean_interval", "interval_dev", "rtt", "suspected")

    def __init__(self) -> None:
        self.last_heard = 0.0
        self.mean_interval: Optional[float] = None
        self.interval_dev = 0.0
        self.rtt = RttEstimator()
        self.suspected = False


class FailureDetector:
    """Per-peer liveness estimation for one cohort.

    ``clock`` is a zero-argument callable returning the current simulated
    time; ``on_transition(mid, suspected)`` (optional) fires whenever a
    peer crosses the suspicion threshold in either direction, so hosts
    can count suspicions in metrics and the ledger.
    """

    #: EWMA gain for the inter-arrival mean/deviation (slow enough to ride
    #: out a couple of dropped beats, fast enough to track a mode change).
    GAIN = 0.2

    def __init__(
        self,
        config,
        peers: Iterable[int],
        clock: Callable[[], float],
        on_transition: Optional[Callable[[int, bool], None]] = None,
    ):
        self.config = config
        self.clock = clock
        self.on_transition = on_transition
        self._peers: Dict[int, _PeerState] = {mid: _PeerState() for mid in peers}

    def reset(self) -> None:
        """Forget all history (host crashed; volatile state is gone)."""
        self._peers = {mid: _PeerState() for mid in self._peers}

    def age_out(self, cutoff: float) -> list:
        """Forget peers whose evidence predates *cutoff*; returns their mids.

        Used on crash recovery: a heartbeat heard before a long downtime is
        not liveness evidence *now*, and a learned inter-arrival cadence
        stretched by pre-crash loss would make post-recover suspicion far
        too lazy.  Peers heard at or after *cutoff* keep their state (their
        beats genuinely are recent).
        """
        aged = []
        for mid, state in self._peers.items():
            if 0.0 < state.last_heard < cutoff:
                self._peers[mid] = _PeerState()
                aged.append(mid)
        return aged

    # -- feeding ------------------------------------------------------------

    def heard(self, mid: int, sent_at: Optional[float] = None) -> None:
        """A liveness-bearing message from *mid* arrived just now."""
        state = self._peers.get(mid)
        if state is None:
            return
        now = self.clock()
        if state.last_heard > 0.0:
            interval = now - state.last_heard
            if interval > 0.0:
                if state.mean_interval is None:
                    state.mean_interval = interval
                    state.interval_dev = interval / 2.0
                else:
                    gain = self.GAIN
                    state.interval_dev = (1.0 - gain) * state.interval_dev + (
                        gain * abs(interval - state.mean_interval)
                    )
                    state.mean_interval = (
                        1.0 - gain
                    ) * state.mean_interval + gain * interval
        state.last_heard = now
        if sent_at is not None and now >= sent_at:
            # Global simulated clock: one-way delay doubled is an exact RTT.
            state.rtt.observe(2.0 * (now - sent_at))
        if state.suspected:
            state.suspected = False
            if self.on_transition is not None:
                self.on_transition(mid, False)

    def heard_relayed(self, mid: int, evidence_at: float) -> None:
        """Second-hand liveness: a relay vouched *mid* was alive at *evidence_at*.

        Gossip (repro.scale) forwards ``(mid, heard_at)`` evidence through
        intermediaries, so the hop count between the evidence's origin and
        us is unknown -- relayed evidence must NOT feed the RTT estimator:
        a Jacobson/Karels sample inflated by relay hops would corrupt every
        RTO-derived timeout.  ``last_heard`` advances monotonically in
        *origin* time, and the inter-arrival EWMA is fed the origin-time
        delta: under epidemic dissemination a peer is heard *directly*
        only every ~``n/fanout`` periods, so arrival spacing of direct
        beats would learn an absurdly lazy baseline, while the cadence at
        which fresh evidence about the peer reaches us is exactly the
        expected-silence unit the accrual threshold should use.
        """
        state = self._peers.get(mid)
        if state is None:
            return
        if evidence_at <= state.last_heard:
            return
        if state.last_heard > 0.0:
            interval = evidence_at - state.last_heard
            if state.mean_interval is None:
                state.mean_interval = interval
                state.interval_dev = interval / 2.0
            else:
                gain = self.GAIN
                state.interval_dev = (1.0 - gain) * state.interval_dev + (
                    gain * abs(interval - state.mean_interval)
                )
                state.mean_interval = (
                    1.0 - gain
                ) * state.mean_interval + gain * interval
        state.last_heard = evidence_at
        if state.suspected:
            state.suspected = False
            if self.on_transition is not None:
                self.on_transition(mid, False)

    def observe_rtt(self, mid: int, sample: float) -> None:
        state = self._peers.get(mid)
        if state is not None:
            state.rtt.observe(sample)

    # -- querying -----------------------------------------------------------

    def last_heard(self, mid: int) -> float:
        state = self._peers.get(mid)
        return state.last_heard if state is not None else 0.0

    def expected_interval(self, mid: int) -> float:
        """Learned heartbeat inter-arrival estimate (mean + 2 deviations),
        never below the configured period (loss can only stretch it)."""
        configured = self.config.im_alive_interval
        state = self._peers.get(mid)
        if state is None or state.mean_interval is None:
            return configured
        return max(configured, state.mean_interval + 2.0 * state.interval_dev)

    def suspicion(self, mid: int) -> float:
        """Accrual level: current silence in expected inter-arrival units."""
        state = self._peers.get(mid)
        if state is None:
            return 0.0
        elapsed = self.clock() - state.last_heard
        return elapsed / self.expected_interval(mid)

    def is_suspect(self, mid: int) -> bool:
        state = self._peers.get(mid)
        if state is None:
            return False
        if self.config.adaptive_timeouts:
            suspect = self.suspicion(mid) > self.config.suspect_multiplier
        else:
            elapsed = self.clock() - state.last_heard
            suspect = elapsed > self.config.suspect_timeout()
        if suspect and not state.suspected:
            state.suspected = True
            if self.on_transition is not None:
                self.on_transition(mid, True)
        return suspect

    def rto(self, mid: int) -> Optional[float]:
        state = self._peers.get(mid)
        return state.rtt.rto if state is not None else None

    def group_rto(self) -> Optional[float]:
        """The slowest live peer RTO (None before any heartbeat sample)."""
        rtos = [
            state.rtt.rto
            for state in self._peers.values()
            if state.rtt.rto is not None
        ]
        return max(rtos) if rtos else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailureDetector(peers={sorted(self._peers)})"
