"""Adaptive failure detection and retry pacing (beyond the paper).

Section 4.1 hand-waves liveness: "a manager should use a fairly long
timeout while it waits to hear from all cohorts ... an underling should
use a fairly long timeout before it becomes a manager".  Fixed "fairly
long" timeouts are exactly what makes the protocol fragile on lossy
links: a single dropped invite stalls a view change for the whole static
timeout, and symmetric timeouts let competing managers mint competing
viewids in lockstep.  This package replaces the constants with live
estimates:

- :class:`RttEstimator` -- Jacobson/Karels SRTT/RTTVAR round-trip
  estimation, fed by "I'm alive" heartbeat timestamps and call round
  trips;
- :class:`AdaptiveTimeouts` -- derives the protocol's operational
  timeouts (``call_timeout``, ``prepare_timeout``,
  ``commit_retry_interval``) from the live RTO, clamped so they never
  exceed the paper-faithful fixed values;
- :class:`FailureDetector` -- accrual-style per-peer suspicion from the
  observed heartbeat arrival process, replacing the fixed
  ``suspect_timeout``;
- :class:`Backoff` -- capped exponential backoff with deterministic
  seeded jitter, drawn from by every retry path so that competing
  retriers desynchronize instead of livelocking.

Everything is driven by the simulator's seeded RNG and the simulated
clock, so runs stay byte-for-byte reproducible for a given seed.  Setting
``ProtocolConfig.adaptive_timeouts = False`` restores the paper-faithful
fixed-constant behaviour (used by the E16 baseline and the ablations).
"""

from repro.detect.backoff import Backoff
from repro.detect.rtt import AdaptiveTimeouts, RttEstimator
from repro.detect.suspicion import FailureDetector

__all__ = [
    "AdaptiveTimeouts",
    "Backoff",
    "FailureDetector",
    "RttEstimator",
]
