"""Client-side commit-set cache (Wren-style).

A driver with ``ReadConfig.client_cache`` enabled remembers the
``(key, value, timestamp)`` triples it has observed -- committed writes
it issued and read replies it received -- in a *commit set*.  A lookup
within the staleness window is answered locally without any network
round trip at all.

Pruning follows the Wren client cache: entries older than a stable
timestamp watermark ``lst = now - cache_staleness`` are discarded
wholesale, so the cache can never serve a value staler than the window.
A capacity bound evicts oldest-first on top of that.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple


class CommitSetCache:
    """Bounded commit set of (key, value, timestamp) entries."""

    def __init__(self, staleness: float, capacity: int, clock):
        self.staleness = staleness
        self.capacity = capacity
        self.clock = clock
        self.commit_set: List[Tuple[str, Any, float]] = []
        self.hits = 0
        self.misses = 0

    def note(self, key: str, value: Any, t: Optional[float] = None) -> None:
        """Record an observed committed value for *key* at time *t*."""
        if t is None:
            t = self.clock()
        self.commit_set.append((key, value, t))
        self.prune()

    def prune(self) -> None:
        """Drop entries older than the stable-timestamp watermark, then
        enforce capacity oldest-first."""
        lst = self.clock() - self.staleness
        self.commit_set[:] = [
            (k, v, t) for (k, v, t) in self.commit_set if t >= lst
        ]
        if len(self.commit_set) > self.capacity:
            del self.commit_set[: len(self.commit_set) - self.capacity]

    def lookup(
        self, key: str, max_staleness: Optional[float] = None
    ) -> Optional[Tuple[Any, float]]:
        """Newest cached (value, staleness) for *key* within the tighter of
        the cache window and the request bound, or None."""
        self.prune()
        now = self.clock()
        bound = self.staleness
        if max_staleness is not None:
            bound = min(bound, max_staleness)
        for k, v, t in reversed(self.commit_set):
            if k == key and now - t <= bound:
                self.hits += 1
                return v, now - t
        self.misses += 1
        return None

    def __len__(self) -> int:
        return len(self.commit_set)
