"""``python -m repro.reads``: the read-path docs drift gate.

Subcommands::

    check-docs DOC
        Fail unless DOC mentions every ReadConfig knob, read-path trace
        event kind, reject reason, serving mode, and the stale_lease
        monitor (the docs-drift gate for docs/READS.md).

The E19 determinism gate lives one module over:
``python -m repro.reads.gate``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.config import ReadConfig

#: Every trace event kind the read path emits (docs/TRACING.md).
READ_EVENT_KINDS = (
    "lease_grant",
    "lease_expire",
    "lease_read",
    "lease_wait",
    "stale_read",
)

#: Every reason a cohort can reject a ReadMsg with.
REJECT_REASONS = ("reads_disabled", "not_active", "no_lease", "too_stale")

#: Every mode a ReadResult can resolve with.
SERVING_MODES = ("lease", "backup", "cache", "txn", "none")

#: Monitors the read path relies on.
READ_MONITORS = ("stale_lease",)


def _check_docs(args) -> int:
    try:
        with open(args.doc, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        print(f"cannot read {args.doc}: {error}", file=sys.stderr)
        return 2
    knobs = tuple(field.name for field in dataclasses.fields(ReadConfig))
    required = {
        "ReadConfig knob": knobs,
        "event kind": READ_EVENT_KINDS,
        "reject reason": REJECT_REASONS,
        "serving mode": SERVING_MODES,
        "monitor": READ_MONITORS,
    }
    missing = [
        f"{category} {name!r}"
        for category, names in required.items()
        for name in names
        if name not in text
    ]
    if missing:
        print(f"{args.doc} is missing documentation for: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    total = sum(len(names) for names in required.values())
    print(f"{args.doc} documents all {total} read-path terms "
          f"({len(knobs)} knobs, {len(READ_EVENT_KINDS)} event kinds, "
          f"{len(REJECT_REASONS)} reject reasons, "
          f"{len(SERVING_MODES)} serving modes, "
          f"{len(READ_MONITORS)} monitor)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reads", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser(
        "check-docs", help="fail unless DOC covers the read-path vocabulary"
    )
    check.add_argument("doc")
    check.set_defaults(fn=_check_docs)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
