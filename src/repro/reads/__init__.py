"""repro.reads: the read-dominant serving path (beyond the paper).

The PODC '88 protocol pushes every operation -- reads included -- through
the primary's event buffer.  This package adds the serving-path machinery
production read-heavy traffic wants, gated by
:class:`~repro.config.ReadConfig` (disabled = paper-faithful baseline):

- **primary leases** (:class:`ReadState`): the primary serves
  linearizable local reads while a majority of the configuration holds
  unexpired grants for it; grants ride the I'm-alive/buffer-ack traffic
  backups already send, and view formation carries every acceptor's
  outstanding promise bound so a new primary defers activation until any
  lease an old primary could still hold has expired;
- **stale-bounded backup reads**: backups answer from their applied
  prefix, tagged with the viewstamp the prefix reflects, iff its
  staleness is within the request's ``max_staleness``;
- **client commit-set caches** (:class:`CommitSetCache`): drivers keep
  ``(key, value, timestamp)`` entries pruned against a stable-timestamp
  watermark, Wren-style.

``python -m repro.reads check-docs docs/READS.md`` is the docs drift
gate; ``python -m repro.reads.gate`` is the E19 determinism gate.
See docs/READS.md for the protocol and its safety argument.
"""

from repro.reads.cache import CommitSetCache
from repro.reads.lease import CRASH_GRANTEE, ReadState

__all__ = ["CRASH_GRANTEE", "CommitSetCache", "ReadState"]
