"""``python -m repro.reads.gate``: the E19 read-path determinism gate.

Runs one seeded workload -- retry-until-commit distinct-key writes with a
concurrent read-only open loop -- under the paper-faithful configuration
(reads disabled) and under each read serving configuration (leases,
backup reads, client cache), each config **twice**, and fails unless

- every run commits every write,
- the two same-seed runs of each config agree byte-for-byte on metrics
  and on the sha256 state digest (same seed => same run, with the read
  path armed), and
- every read-enabled run's final replicated state is byte-identical to
  the reads-disabled run's (serving reads from leases, backup prefixes,
  or client caches may change how reads are *answered*, never what the
  protocol *computes*).

This is CI's check that ``ReadConfig`` is an observation plane, not a
second write path.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments_reads import E19_CONDITIONS, _reads_state_run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], prog="python -m repro.reads.gate"
    )
    parser.add_argument("--seed", type=int, default=19)
    parser.add_argument("--txns", type=int, default=32)
    parser.add_argument("--duration", type=float, default=500.0)
    args = parser.parse_args(argv)

    failed = False
    reference_digest = None
    for condition in E19_CONDITIONS:
        runs = [
            _reads_state_run(
                args.seed, condition, txns=args.txns, duration=args.duration
            )
            for _ in range(2)
        ]
        metrics, digest = runs[0]
        print(
            f"{condition:>8}: writes={metrics['writes_committed']} "
            f"reads_ok={metrics['reads_ok']} modes={metrics['read_modes']} "
            f"digest={digest[:16]}..."
        )
        if runs[0] != runs[1]:
            print(
                f"readgate: FAIL -- {condition} same-seed runs diverged:\n"
                f"  {runs[0]}\n  {runs[1]}",
                file=sys.stderr,
            )
            failed = True
        if metrics["writes_committed"] != args.txns:
            print(
                f"readgate: FAIL -- {condition} committed only "
                f"{metrics['writes_committed']}/{args.txns} writes",
                file=sys.stderr,
            )
            failed = True
        if condition == "baseline":
            reference_digest = digest
        elif digest != reference_digest:
            print(
                f"readgate: FAIL -- {condition} state digest diverged from "
                f"the reads-disabled baseline:\n"
                f"  {reference_digest}\n  {digest}",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print(
        f"readgate: OK ({len(E19_CONDITIONS)} serving configs x 2 same-seed "
        "runs, byte-identical digests, state byte-identical to the "
        "reads-disabled baseline)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
