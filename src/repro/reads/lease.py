"""Lease and staleness bookkeeping for one cohort.

One :class:`ReadState` lives on each cohort of a reads-enabled group and
tracks both sides of the lease protocol plus the freshness of the
backup's applied prefix:

- *primary side*: ``grants`` maps each backup mid to the expiry of the
  newest grant received from it.  The lease is **valid** while the
  primary itself plus the backups with unexpired grants form a majority
  of the configuration -- the same majority rule view formation uses, so
  any view that forms while the lease is valid must include a grantor
  (or the primary itself), whose acceptance reports the promise.
- *backup side*: ``promises`` maps each grantee mid to the latest expiry
  this cohort has promised it.  Expired promises are pruned lazily;
  unexpired ones are attached to every view-change acceptance so the
  formation can compute the activation deferral bound.
- *freshness*: ``prefix_fresh_at`` is the last instant this cohort's
  applied prefix was known to match the primary's buffer timestamp
  (stamped when buffer application catches up, and refreshed by
  heartbeat-carried ``primary_ts`` while idle).  A stale-bounded read's
  staleness is ``now - prefix_fresh_at``.

Nothing here arms timers: validity is evaluated lazily against the
simulator clock, so a reads-enabled but idle group schedules exactly the
same events as a reads-disabled one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.core.view import majority

#: Grantee recorded by a crashed acceptor: its real promises (and their
#: grantees) died with its volatile state, so it conservatively reports a
#: full-duration promise to an unknown grantee, which every formation
#: must count against whatever primary it chooses.
CRASH_GRANTEE = -1


class ReadState:
    """Both sides of the lease protocol plus prefix freshness, per cohort."""

    def __init__(self, reads_config, config_size: int, clock):
        self.cfg = reads_config
        self.config_size = config_size
        self.clock = clock
        #: primary side: backup mid -> newest grant expiry received
        self.grants: Dict[int, float] = {}
        #: backup side: grantee mid -> latest promise expiry made
        self.promises: Dict[int, float] = {}
        #: last instant the applied prefix was known current
        self.prefix_fresh_at: float = clock()
        #: whether the last validity evaluation held (for grant/expire
        #: trace transitions; updated by callers via note_validity)
        self.was_valid = False

    # -- backup side: making promises ----------------------------------

    def make_promise(self, grantee: int) -> float:
        """Record and return the expiry of a grant to *grantee*."""
        expiry = self.clock() + self.cfg.lease_duration
        if self.promises.get(grantee, 0.0) < expiry:
            self.promises[grantee] = expiry
        return expiry

    def promise_residue(self, conservative: bool = False) -> None:
        """Replace all promises with a full-duration unknown-grantee bound.

        Used after recovery (``conservative=True`` semantics are implied):
        volatile promise state is gone, and a promise made any time before
        the crash expires no later than ``now + lease_duration``.
        """
        self.promises = {CRASH_GRANTEE: self.clock() + self.cfg.lease_duration}

    def outstanding_promises(self) -> Tuple[Tuple[int, float], ...]:
        """Unexpired (grantee, expiry) pairs, pruning the expired ones."""
        now = self.clock()
        self.promises = {
            grantee: expiry
            for grantee, expiry in self.promises.items()
            if expiry > now
        }
        return tuple(sorted(self.promises.items()))

    # -- primary side: holding the lease --------------------------------

    def record_grant(self, mid: int, until: float) -> None:
        if self.grants.get(mid, 0.0) < until:
            self.grants[mid] = until

    def lease_valid(self, view) -> bool:
        """True iff self + unexpired grantors form a configuration majority.

        Only grants from current view members count: an excluded cohort's
        grant proves nothing about the views that can form without us.
        """
        now = self.clock()
        holders = 1 + sum(
            1
            for mid in view.backups
            if self.grants.get(mid, 0.0) > now
        )
        return holders >= majority(self.config_size)

    def lease_until(self, view) -> float:
        """The instant validity lapses if no further grant arrives (0.0
        when not currently valid): the k-th largest unexpired grant
        expiry, where self plus k grantors are a bare majority."""
        now = self.clock()
        needed = majority(self.config_size) - 1  # grantors beyond self
        expiries = sorted(
            (
                self.grants.get(mid, 0.0)
                for mid in view.backups
                if self.grants.get(mid, 0.0) > now
            ),
            reverse=True,
        )
        if needed <= 0:
            return float("inf")  # a 1-cohort group is its own majority
        if len(expiries) < needed:
            return 0.0
        return expiries[needed - 1]

    def reset_grants(self) -> None:
        self.grants = {}
        self.was_valid = False

    # -- staleness -------------------------------------------------------

    def mark_fresh(self) -> None:
        self.prefix_fresh_at = self.clock()

    def staleness(self) -> float:
        return self.clock() - self.prefix_fresh_at


def formation_lease_bound(
    responses: Iterable, chosen_primary: int
) -> float:
    """The activation deferral for a view formed from *responses*.

    The latest expiry among all reported lease promises made to anyone
    other than *chosen_primary*.  Promises to the chosen primary itself
    are harmless -- that cohort stopped serving when it accepted the
    invitation, and it is the one whose activation is being deferred.
    The unknown grantee (:data:`CRASH_GRANTEE`) never matches, so
    crashed acceptors always defer.
    """
    bound = 0.0
    for acceptance in responses:
        for grantee, expiry in getattr(acceptance, "lease_promises", ()):
            if grantee != chosen_primary and expiry > bound:
                bound = expiry
    return bound
