"""The fixed, seeded scenario suite behind ``python -m repro.perf``.

Six scenarios spanning the regimes the roadmap cares about:

- ``micro_call_overhead``: the normal-case hot path -- a closed-loop
  read/write mix against a healthy 3-cohort group on a LAN.  This is the
  scenario the kernel optimizations are judged on.
- ``e13_end_to_end``: the E13 shape -- a write workload that rides out two
  staggered primary crashes, exercising view changes and call retries.
- ``lossy_view_change_storm``: the E16 shape -- LOSSY links, repeated
  primary crashes, and a partition storm; stresses timer churn from
  retransmission and failure detection (where lazy-cancel compaction pays).
- ``chaos_soak``: the seeded chaos soak from ``repro.harness.soak``,
  including its safety asserts.
- ``trace_overhead``: the same micro workload with repro.trace disabled,
  ring-buffered, and fully exported; regression-gates the tracing
  subsystem's "zero cost when disabled" claim.
- ``sharded_routing``: the E17 shape -- the canonical sharded workload
  (single-key seq_puts plus cross-shard transfers) over a 4-shard
  façade; regression-gates the routing layer and cross-group 2PC.
- ``batching_throughput`` / ``batching_pipeline``: the E18 shapes -- a
  deep-concurrency distinct-key write flood over a WAN-ish link, run
  twice per pass (``BatchConfig(enabled=False)`` then ``enabled=True``)
  with identical seeds.  The two runs must commit every transaction and
  agree byte-for-byte on the final replicated state
  (:func:`repro.perf.report.state_digest`); the batched/unbatched
  events-per-wall-second and txns-per-wall-second ratios land in
  ``extra``.  ``batching_pipeline`` additionally sets ``force_on_call``
  (the section 6 "speedy delivery" ablation), the regime where per-call
  forces make unbatched flushes most redundant.
- ``read_throughput`` / ``lease_overhead``: the E19 shapes -- a
  read-dominant zipfian open loop served by the full call path then by
  the leased read path (byte-identical final state asserted, latency
  speedup in ``extra``), and the same seeded KV batch with the lease
  machinery armed but idle, which must schedule identically to the
  reads-disabled run (gating ``ReadConfig``'s zero-cost-when-disabled
  claim the way ``trace_overhead`` gates tracing's).
- ``scale_overhead``: the ScaleConfig zero-cost claim -- the same seeded
  KV batch with ``scale=None`` and with an all-off ``ScaleConfig`` (the
  two must schedule byte-identically), plus an armed 7-cohort pass
  (gossip + ack tree + witnesses) whose final replicated state must
  match its own unscaled baseline.
- ``geo_overhead`` / ``geo_commit_latency``: the E20 shapes -- the same
  seeded KV batch on the flat network and on a degenerate one-DC
  topology whose every tier is the LAN default (the two must schedule
  byte-identically, gating ``GeoConfig``'s zero-cost-when-disabled
  claim), and the standard closed-loop mix on a 3-DC ``spread``
  placement where every quorum crosses the WAN (regression-gating the
  geo transport stack's latency).

Every scenario is deterministic given its pinned seed; ``quick`` scales the
workload down for CI without changing its shape.
"""

from __future__ import annotations

import dataclasses
import time
import tracemalloc
from typing import Callable, List, Optional

from repro import LOSSY, Nemesis
from repro.harness.common import build_kv_system, kv_jobs, run_kv_batch, drain
from repro.harness.soak import run_soak
from repro.perf.report import PerfReport, build_report, ledger_digest as _digest
from repro.shard.workload import run_sharded_workload
from repro.sim.process import sleep, spawn
from repro.workloads.loadgen import run_closed_loop


@dataclasses.dataclass
class Scenario:
    """One named, seeded workload plus how to read its latency metric."""

    name: str
    seed: int
    latency_key: Optional[str]
    run: Callable[[bool], object]  # (quick) -> finished Runtime


def _micro(quick: bool):
    txns = 200 if quick else 600
    rt, _kv, _clients, driver, spec = build_kv_system(seed=4242, n_cohorts=3)
    run_kv_batch(rt, driver, spec, txns, read_fraction=0.5, concurrency=4)
    rt.quiesce()
    return rt


def _e13_end_to_end(quick: bool):
    ops = 40 if quick else 120
    rt, _kv, _clients, driver, spec = build_kv_system(seed=1313, n_cohorts=3)
    jobs = kv_jobs(rt, spec, ops, read_fraction=0.0)
    stats = run_closed_loop(
        rt, driver, "clients", jobs, concurrency=1, think_time=10.0
    )
    rt.inject(
        Nemesis("perf-e13")
        .crash_primary("kv", every=150.0, count=1, recover_after=300.0)
        .crash_primary("kv", every=650.0, count=1, recover_after=300.0)
    )
    drain(rt, stats, ops, max_time=30_000)
    rt.quiesce()
    return rt


def _lossy_storm(quick: bool):
    duration = 2_500.0 if quick else 6_000.0
    rt, kv, _clients, driver, spec = build_kv_system(
        seed=1601, n_cohorts=3, link=LOSSY
    )
    rt.inject(
        Nemesis("perf-storm")
        .crash_primary(
            "kv", every=700.0, count=int(duration // 700), recover_after=300.0
        )
        .partition_storm(
            [node.node_id for node in kv.nodes()],
            mean_healthy=900.0,
            mean_partitioned=250.0,
        )
    )
    outcomes = {"total": 0}

    def prober():
        index = 0
        while rt.sim.now < duration:
            index += 1
            future = driver.call(
                "clients", "write", "kv", spec.key(index % spec.n_keys), index,
                retries=2,
            )
            yield future
            outcomes["total"] += 1
            yield sleep(40.0)

    spawn(rt.sim, prober(), name="perf-prober")
    rt.run(until=duration)
    rt.faults.stop()
    rt.faults.heal()
    rt.faults.restore_links()
    rt.quiesce(duration=600)
    return rt


def _trace_overhead(quick: bool):
    """The repro.trace zero-cost claim, measured: the same seeded KV batch
    with tracing disabled, with the in-memory ring (+ all monitors), and
    with a full JSONL export.  The disabled pass is the one the report's
    events/s figure and digest come from, so the baseline gate fails if
    instrumented-but-disabled hot paths regress; the ratios land in
    ``extra`` for the record."""
    import os
    import tempfile

    txns = 150 if quick else 450

    def one(trace):
        rt, _kv, _clients, driver, spec = build_kv_system(
            seed=4242, n_cohorts=3, trace=trace
        )
        started = time.perf_counter()
        run_kv_batch(rt, driver, spec, txns, read_fraction=0.5, concurrency=4)
        rt.quiesce()
        elapsed = time.perf_counter() - started
        return rt, rt.sim.events_processed / max(elapsed, 1e-9)

    from repro.config import TraceConfig

    rt_off, rate_off = one(None)
    rt_ring, rate_ring = one(TraceConfig(monitors="all"))
    export_dir = tempfile.mkdtemp(prefix="repro-trace-perf-")
    export_path = os.path.join(export_dir, "trace.jsonl")
    rt_export, rate_export = one(
        TraceConfig(monitors="all", export_path=export_path)
    )
    rt_export.tracer.maybe_export()
    # Tracing is pure observation: all three modes must schedule and
    # decide identically or the overhead comparison is meaningless.
    digests = {_digest(rt_off), _digest(rt_ring), _digest(rt_export)}
    if len(digests) != 1:
        raise AssertionError(
            f"trace_overhead: modes diverged ({sorted(d[:12] for d in digests)})"
        )
    rt_off.perf_extra = {
        "events_per_sec_disabled": round(rate_off, 1),
        "events_per_sec_ring": round(rate_ring, 1),
        "events_per_sec_export": round(rate_export, 1),
        "ring_overhead_pct": round(100.0 * (1.0 - rate_ring / rate_off), 2),
        "export_overhead_pct": round(100.0 * (1.0 - rate_export / rate_off), 2),
        "trace_events": rt_ring.tracer.events_emitted,
    }
    return rt_off


def _liveness_overhead(quick: bool):
    """The repro.live zero-cost claim, measured: the same seeded KV batch
    with the liveness checker disarmed and armed with the full relaxed
    spec catalog.  The disarmed pass supplies the report's events/s
    figure and digest (so the baseline gate gates the default-off hot
    path); the armed/disarmed ratio lands in ``extra``.  A clean run
    must also satisfy every spec -- the armed pass raises on any
    violation, so this scenario doubles as a no-fault liveness test."""
    from repro.live import spec_catalog
    from repro.perf.report import state_digest

    txns = 150 if quick else 450

    def one(arm: bool):
        rt, _kv, _clients, driver, spec = build_kv_system(
            seed=4242, n_cohorts=3
        )
        checker = None
        if arm:
            checker = rt.arm_liveness(spec_catalog("kv", rt.config, commits=1))
        started = time.perf_counter()
        run_kv_batch(rt, driver, spec, txns, read_fraction=0.5, concurrency=4)
        rt.quiesce()
        elapsed = time.perf_counter() - started
        return rt, checker, rt.sim.events_processed / max(elapsed, 1e-9)

    rt_off, _, rate_off = one(False)
    rt_armed, checker, rate_armed = one(True)

    def outcome(rt):
        ledger = rt.ledger
        return (
            sorted((str(aid), at) for aid, at in ledger.committed.items()),
            sorted((str(aid), why) for aid, why in ledger.aborted.items()),
            state_digest(rt),
        )

    # The checker's poll ticks add simulator events, so the event-counting
    # ledger_digest legitimately differs; what must NOT differ is anything
    # the protocol decided.  Compare the transaction outcomes and the
    # final replicated state instead.
    if outcome(rt_off) != outcome(rt_armed):
        raise AssertionError(
            "liveness_overhead: armed run diverged from disarmed run"
        )
    rt_off.perf_extra = {
        "events_per_sec_disabled": round(rate_off, 1),
        "events_per_sec_armed": round(rate_armed, 1),
        "armed_overhead_pct": round(100.0 * (1.0 - rate_armed / rate_off), 2),
        "liveness_polls": checker.polls,
    }
    return rt_off


def _batching_compare(
    quick: bool,
    seed: int,
    concurrency: int,
    txns: int,
    force_on_call: bool,
    base_delay: float = 8.0,
):
    """Shared body of the two E18 scenarios: the same seeded workload with
    batching off, then on.  Every job writes a distinct key, so the final
    replicated state is schedule-independent and the two configs must agree
    on it exactly -- the speedup measurement doubles as the batching safety
    check.  Returns the batched runtime; the cross-config ratios go to
    ``perf_extra``."""
    from repro.config import BatchConfig, ProtocolConfig
    from repro.net.link import LinkModel
    from repro.perf.report import state_digest

    count = txns if not quick else max(200, txns // 4)
    link = LinkModel(base_delay=base_delay, jitter=0.2)

    def one(enabled: bool):
        config = ProtocolConfig(
            force_on_call=force_on_call,
            batch=BatchConfig(
                enabled=enabled,
                max_batch=2048,
                flush_interval=0.5,
                pipeline_depth=4,
            ),
        )
        rt, _kv, _clients, driver, spec = build_kv_system(
            seed=seed, n_cohorts=3, n_keys=count, config=config, link=link
        )
        jobs = [("write", ("kv", spec.key(i), i)) for i in range(count)]
        started = time.perf_counter()
        stats = run_closed_loop(
            rt, driver, "clients", jobs, concurrency=concurrency
        )
        drain(rt, stats, count, step=50.0, max_time=2_000_000)
        rt.quiesce()
        elapsed = time.perf_counter() - started
        if stats.committed != count:
            raise AssertionError(
                f"batching compare (enabled={enabled}): committed "
                f"{stats.committed}/{count}"
            )
        return rt, stats, elapsed

    rt_plain, stats_plain, wall_plain = one(False)
    rt_batched, stats_batched, wall_batched = one(True)
    digest_plain = state_digest(rt_plain)
    digest_batched = state_digest(rt_batched)
    if digest_plain != digest_batched:
        raise AssertionError(
            "batching compare: final state diverged "
            f"({digest_plain[:12]} != {digest_batched[:12]})"
        )
    rate_plain = rt_plain.sim.events_processed / max(wall_plain, 1e-9)
    rate_batched = rt_batched.sim.events_processed / max(wall_batched, 1e-9)
    txn_plain = stats_plain.committed / max(wall_plain, 1e-9)
    txn_batched = stats_batched.committed / max(wall_batched, 1e-9)
    rt_batched.perf_extra = {
        "events_per_sec_unbatched": round(rate_plain, 1),
        "events_per_sec_batched": round(rate_batched, 1),
        "speedup_events_per_sec": round(rate_batched / rate_plain, 2),
        "txn_per_sec_unbatched": round(txn_plain, 1),
        "txn_per_sec_batched": round(txn_batched, 1),
        "speedup_txn_per_sec": round(txn_batched / txn_plain, 2),
        "messages_unbatched": rt_plain.network.messages_sent_total,
        "messages_batched": rt_batched.network.messages_sent_total,
        "state_digest": digest_batched,
    }
    return rt_batched


def _batching_throughput(quick: bool):
    return _batching_compare(
        quick, seed=1818, concurrency=640, txns=2000, force_on_call=False
    )


def _batching_pipeline(quick: bool):
    return _batching_compare(
        quick, seed=1819, concurrency=768, txns=2000, force_on_call=True
    )


def _read_throughput(quick: bool):
    """The E19 shape: retry-until-commit distinct-key writes under a
    zipfian read-dominant open loop, served by the full transactional
    path and then by the leased-primary read path, same seed.  Every
    write eventually commits and reads never mutate, so the two configs
    must agree byte-for-byte on the final replicated state -- the
    speedup measurement doubles as the read-path safety check.  The
    leased runtime supplies the report (gating the serving path CI
    actually runs); the cross-config latency ratios land in ``extra``."""
    from repro.config import ProtocolConfig, ReadConfig
    from repro.perf.report import state_digest
    from repro.workloads.loadgen import run_open_loop, run_retry_loop

    txns = 24 if quick else 48
    duration = 600.0 if quick else 1800.0

    def one(enabled: bool):
        config = (
            ProtocolConfig(reads=ReadConfig(enabled=True)) if enabled else None
        )
        rt, _kv, _clients, driver, spec = build_kv_system(
            seed=1901, n_cohorts=3, n_keys=txns, config=config
        )
        started = time.perf_counter()
        rt.run_for(60.0)
        jobs = [("write", ("kv", spec.key(i), i)) for i in range(txns)]
        wstats = run_retry_loop(rt, driver, "clients", jobs, concurrency=4)
        rstats = run_open_loop(
            rt, driver,
            key=spec.key, n_keys=txns, duration=duration, rate=0.6,
            read_fraction=1.0, use_read_path=enabled, name="perf-reads",
        )
        deadline = rt.sim.now + 100_000.0
        while (
            wstats.committed < txns or not rstats.drained
        ) and rt.sim.now < deadline:
            rt.run_for(200.0)
        rt.quiesce()
        elapsed = time.perf_counter() - started
        if wstats.committed != txns:
            raise AssertionError(
                f"read_throughput (reads={enabled}): committed "
                f"{wstats.committed}/{txns}"
            )
        return rt, rstats, elapsed

    rt_plain, rstats_plain, wall_plain = one(False)
    rt_leased, rstats_leased, wall_leased = one(True)
    digest_plain = state_digest(rt_plain)
    digest_leased = state_digest(rt_leased)
    if digest_plain != digest_leased:
        raise AssertionError(
            "read_throughput: final state diverged "
            f"({digest_plain[:12]} != {digest_leased[:12]})"
        )
    rt_leased.perf_extra = {
        "events_per_sec_fullpath": round(
            rt_plain.sim.events_processed / max(wall_plain, 1e-9), 1
        ),
        "events_per_sec_leased": round(
            rt_leased.sim.events_processed / max(wall_leased, 1e-9), 1
        ),
        "read_mean_fullpath": round(rstats_plain.read_mean_latency, 3),
        "read_mean_leased": round(rstats_leased.read_mean_latency, 3),
        "read_latency_speedup": round(
            rstats_plain.read_mean_latency / rstats_leased.read_mean_latency,
            2,
        ),
        "reads_ok": rstats_leased.reads_ok,
        "messages_fullpath": rt_plain.network.messages_sent_total,
        "messages_leased": rt_leased.network.messages_sent_total,
        "state_digest": digest_leased,
    }
    return rt_leased


def _lease_overhead(quick: bool):
    """The ReadConfig zero-cost-when-disabled claim, measured: the same
    seeded KV batch with reads disabled and with the lease machinery
    armed but no client issuing reads.  Grants ride existing acks and
    heartbeats and ``ReadState`` arms no timers, so the armed-idle run
    must schedule *identically* -- asserted on the full ledger digest,
    event count and clock included.  The disabled pass supplies the
    report's events/s figure and digest, so the baseline gate gates the
    ``reads is None`` hot path; the armed/disabled ratio lands in
    ``extra``."""
    from repro.config import ProtocolConfig, ReadConfig

    txns = 150 if quick else 450

    def one(config):
        rt, _kv, _clients, driver, spec = build_kv_system(
            seed=4242, n_cohorts=3, config=config
        )
        started = time.perf_counter()
        run_kv_batch(rt, driver, spec, txns, read_fraction=0.5, concurrency=4)
        rt.quiesce()
        elapsed = time.perf_counter() - started
        return rt, rt.sim.events_processed / max(elapsed, 1e-9)

    rt_off, rate_off = one(None)
    rt_armed, rate_armed = one(ProtocolConfig(reads=ReadConfig(enabled=True)))
    if _digest(rt_off) != _digest(rt_armed):
        raise AssertionError(
            "lease_overhead: armed-idle run scheduled differently from the "
            f"disabled run ({_digest(rt_off)[:12]} != {_digest(rt_armed)[:12]})"
        )
    rt_off.perf_extra = {
        "events_per_sec_disabled": round(rate_off, 1),
        "events_per_sec_armed_idle": round(rate_armed, 1),
        "armed_idle_overhead_pct": round(
            100.0 * (1.0 - rate_armed / rate_off), 2
        ),
    }
    return rt_off


def _scale_overhead(quick: bool):
    """The ScaleConfig zero-cost claim, measured: the same seeded KV batch
    with ``scale=None`` and with an all-off :class:`ScaleConfig` attached.
    The Cohort constructor normalizes an all-off config to ``None``, so
    the armed-off run must schedule *identically* -- asserted on the full
    ledger digest, event count and clock included.  A third pass arms
    every mechanism (gossip + ack tree + witnesses) on a 7-cohort group;
    armed mechanisms move messages, so only the final replicated *state*
    must match, and the armed/off events-per-wall-second ratio lands in
    ``extra``.  The ``scale=None`` pass supplies the report's events/s
    figure and digest, so the baseline gate gates the disabled hot path."""
    from repro.config import ProtocolConfig, ScaleConfig
    from repro.perf.report import state_digest

    txns = 150 if quick else 450

    def one(config, n_cohorts=3):
        rt, _kv, _clients, driver, spec = build_kv_system(
            seed=4242, n_cohorts=n_cohorts, config=config
        )
        started = time.perf_counter()
        run_kv_batch(rt, driver, spec, txns, read_fraction=0.5, concurrency=4)
        rt.quiesce()
        elapsed = time.perf_counter() - started
        return rt, rt.sim.events_processed / max(elapsed, 1e-9)

    rt_off, rate_off = one(None)
    rt_alloff, rate_alloff = one(ProtocolConfig(scale=ScaleConfig()))
    if _digest(rt_off) != _digest(rt_alloff):
        raise AssertionError(
            "scale_overhead: all-off ScaleConfig scheduled differently from "
            f"scale=None ({_digest(rt_off)[:12]} != {_digest(rt_alloff)[:12]})"
        )
    armed = ProtocolConfig(
        scale=ScaleConfig(gossip=True, ack_tree=True, witnesses=2)
    )
    rt_armed, rate_armed = one(armed, n_cohorts=7)
    rt_base7, _ = one(None, n_cohorts=7)
    if state_digest(rt_armed) != state_digest(rt_base7):
        raise AssertionError(
            "scale_overhead: armed mechanisms changed the replicated state "
            f"({state_digest(rt_base7)[:12]} != {state_digest(rt_armed)[:12]})"
        )
    rt_off.perf_extra = {
        "events_per_sec_disabled": round(rate_off, 1),
        "events_per_sec_all_off": round(rate_alloff, 1),
        "all_off_overhead_pct": round(
            100.0 * (1.0 - rate_alloff / rate_off), 2
        ),
        "events_per_sec_armed_n7": round(rate_armed, 1),
        "armed_messages_n7": rt_armed.network.messages_sent_total,
        "baseline_messages_n7": rt_base7.network.messages_sent_total,
    }
    return rt_off


def _geo_overhead(quick: bool):
    """The GeoConfig zero-cost claim, measured: the same seeded KV batch
    on the flat network (``geo is None``) and on a degenerate one-DC
    topology whose every link tier equals the flat default (LAN), with
    placement and structural-link resolution armed.  Geography is pure
    transport shape: with identical link models the armed run must
    schedule *identically* -- asserted on the full ledger digest, event
    count and clock included.  The flat pass supplies the report's
    events/s figure and digest, so the baseline gate gates the
    ``geo is None`` hot path; the armed/flat ratio lands in ``extra``."""
    from repro.config import GeoConfig, ProtocolConfig
    from repro.geo.topology import Datacenter, Topology, Zone
    from repro.net.link import LAN

    txns = 150 if quick else 450

    def one(config):
        rt, _kv, _clients, driver, spec = build_kv_system(
            seed=4242, n_cohorts=3, config=config
        )
        started = time.perf_counter()
        run_kv_batch(rt, driver, spec, txns, read_fraction=0.5, concurrency=4)
        rt.quiesce()
        elapsed = time.perf_counter() - started
        return rt, rt.sim.events_processed / max(elapsed, 1e-9)

    one_dc = Topology(
        (Datacenter("dc", (Zone("z", slots=8),)),),
        intra_zone=LAN, intra_dc=LAN, cross_dc=LAN,
    )
    rt_flat, rate_flat = one(None)
    rt_geo, rate_geo = one(
        ProtocolConfig(geo=GeoConfig(topology=one_dc, placement="spread"))
    )
    if _digest(rt_flat) != _digest(rt_geo):
        raise AssertionError(
            "geo_overhead: LAN-equivalent topology scheduled differently "
            f"from the flat network ({_digest(rt_flat)[:12]} != "
            f"{_digest(rt_geo)[:12]})"
        )
    rt_flat.perf_extra = {
        "events_per_sec_flat": round(rate_flat, 1),
        "events_per_sec_geo": round(rate_geo, 1),
        "geo_overhead_pct": round(100.0 * (1.0 - rate_geo / rate_flat), 2),
        "structural_links": len(rt_geo.network.structural_links()),
    }
    return rt_flat


def _geo_commit_latency(quick: bool):
    """The E20(b) regime as a regression gate: the standard closed-loop
    KV mix on a 3-datacenter topology under ``spread`` placement, so
    every force commits on a cross-DC WAN quorum and the driver reads
    route geographically from its home site.  Gates the geo transport
    stack end to end -- structural link resolution, placement, sited
    routing -- on the latency CI actually compares across commits."""
    from repro.config import GeoConfig, ProtocolConfig
    from repro.geo.topology import symmetric_topology

    txns = 150 if quick else 450
    config = ProtocolConfig(
        geo=GeoConfig(
            topology=symmetric_topology(n_dcs=3, zones_per_dc=2,
                                        slots_per_zone=2),
            placement="spread",
        )
    )
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=2020, n_cohorts=5, config=config, driver_site="dc-b/z1"
    )
    run_kv_batch(rt, driver, spec, txns, read_fraction=0.5, concurrency=4)
    rt.quiesce()
    return rt


def _sharded_routing(quick: bool):
    txns = 60 if quick else 160
    rt, _sharded, _stats = run_sharded_workload(
        seed=1717, n_shards=4, txns=txns, concurrency=8
    )
    rt.quiesce()
    return rt


def _chaos_soak(quick: bool):
    duration = 4_000.0 if quick else 12_000.0
    captured = {}
    run_soak(
        seed=2026,
        duration=duration,
        verbose=False,
        on_runtime=lambda rt: captured.setdefault("rt", rt),
    )
    return captured["rt"]


SCENARIOS: List[Scenario] = [
    Scenario("micro_call_overhead", 4242, "call_latency:kv", _micro),
    Scenario("e13_end_to_end", 1313, "call_latency:kv", _e13_end_to_end),
    Scenario("lossy_view_change_storm", 1601, "call_latency:kv", _lossy_storm),
    Scenario("chaos_soak", 2026, "call_latency:kv", _chaos_soak),
    Scenario("trace_overhead", 4242, "call_latency:kv", _trace_overhead),
    Scenario("liveness_overhead", 4242, "call_latency:kv", _liveness_overhead),
    Scenario("sharded_routing", 1717, "call_latency:kv-s0", _sharded_routing),
    Scenario("batching_throughput", 1818, "call_latency:kv", _batching_throughput),
    Scenario("batching_pipeline", 1819, "call_latency:kv", _batching_pipeline),
    Scenario("read_throughput", 1901, "driver_read_latency", _read_throughput),
    Scenario("lease_overhead", 4242, "call_latency:kv", _lease_overhead),
    Scenario("scale_overhead", 4242, "call_latency:kv", _scale_overhead),
    Scenario("geo_overhead", 4242, "call_latency:kv", _geo_overhead),
    Scenario("geo_commit_latency", 2020, "call_latency:kv", _geo_commit_latency),
]


def scenario_names() -> List[str]:
    return [scenario.name for scenario in SCENARIOS]


def run_scenario(
    scenario: Scenario, quick: bool = False, best_of: int = 1
) -> PerfReport:
    """Run one scenario: ``best_of`` timing passes, then a tracemalloc pass.

    Throughput is taken from the fastest untraced pass (``best_of`` > 1
    smooths noisy shared CI runners); the memory pass pays tracemalloc's
    allocation-tracking overhead and contributes only peak heap.  All
    passes use the same seed, and their ledger digests are asserted
    identical -- every perf run therefore doubles as a same-seed
    determinism check.
    """
    wall_seconds = None
    runtime = None
    first_digest = None
    for _ in range(max(1, best_of)):
        started = time.perf_counter()
        candidate = scenario.run(quick)
        elapsed = time.perf_counter() - started
        digest = _digest(candidate)
        if first_digest is None:
            first_digest = digest
        elif digest != first_digest:
            raise AssertionError(
                f"{scenario.name}: same-seed timing passes diverged "
                f"({first_digest[:12]} != {digest[:12]})"
            )
        if wall_seconds is None or elapsed < wall_seconds:
            wall_seconds, runtime = elapsed, candidate

    tracemalloc.start()
    try:
        traced_runtime = scenario.run(quick)
        _, peak_heap_bytes = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    report = build_report(
        runtime,
        scenario=scenario.name,
        seed=scenario.seed,
        wall_seconds=wall_seconds,
        peak_heap_bytes=peak_heap_bytes,
        latency_key=scenario.latency_key,
        extra={"quick": quick, **getattr(runtime, "perf_extra", {})},
    )
    traced_digest = _digest(traced_runtime)
    if traced_digest != report.ledger_digest:
        raise AssertionError(
            f"{scenario.name}: same-seed runs diverged "
            f"({report.ledger_digest[:12]} != {traced_digest[:12]})"
        )
    return report
