"""Entry point: ``python -m repro.perf``."""

import sys

from repro.perf.runner import main

sys.exit(main())
