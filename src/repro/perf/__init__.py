"""Perf baseline subsystem: instrumented scenarios and BENCH.json.

``python -m repro.perf`` runs a fixed suite of seeded scenarios against the
instrumented kernel and message plane and writes a schema-versioned
``BENCH.json``; CI gates every PR on events/s against the committed
baseline in ``benchmarks/results/BENCH_baseline.json``.  See docs/PERF.md.
"""

from repro.perf.report import (
    SCHEMA_VERSION,
    PerfReport,
    build_report,
    compare_to_baseline,
    ledger_digest,
    load_bench_json,
    write_bench_json,
)
from repro.perf.runner import main, run_suite
from repro.perf.scenarios import SCENARIOS, Scenario, run_scenario, scenario_names

__all__ = [
    "SCHEMA_VERSION",
    "PerfReport",
    "SCENARIOS",
    "Scenario",
    "build_report",
    "compare_to_baseline",
    "ledger_digest",
    "load_bench_json",
    "main",
    "run_scenario",
    "run_suite",
    "scenario_names",
    "write_bench_json",
]
