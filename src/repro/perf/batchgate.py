"""``python -m repro.perf.batchgate``: the E18 batching determinism gate.

Runs one seeded distinct-key write workload under the paper-faithful
unbatched configuration and under each batched configuration, on a clean
and a lossy schedule, and fails unless

- every run commits every write,
- every batched run's final replicated state is byte-identical (sha256
  state digest) to the unbatched run of the same schedule, and
- every batched run uses strictly fewer network messages.

This is CI's check that ``BatchConfig`` changes how the replication hot
path *transmits*, never what it *computes*.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments_scale import _batching_run

#: (max_batch, pipeline_depth) points the gate checks, spanning the
#: shallow and deep ends of the E18 sweep.
GATE_CONFIGS = ((8, 1), (64, 2), (256, 4))
GATE_CONDITIONS = ("clean", "lossy")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], prog="python -m repro.perf.batchgate"
    )
    parser.add_argument("--seed", type=int, default=18)
    parser.add_argument("--txns", type=int, default=200)
    parser.add_argument("--concurrency", type=int, default=16)
    args = parser.parse_args(argv)

    failed = False
    for condition in GATE_CONDITIONS:
        reference, reference_digest = _batching_run(
            args.seed, condition, None, args.txns, args.concurrency
        )
        print(
            f"{condition:>6} unbatched: committed={reference['committed']} "
            f"messages={reference['messages']} digest={reference_digest[:16]}..."
        )
        if reference["committed"] != args.txns:
            print(
                f"batchgate: FAIL -- {condition} unbatched committed only "
                f"{reference['committed']}/{args.txns}",
                file=sys.stderr,
            )
            failed = True
        for max_batch, pipeline_depth in GATE_CONFIGS:
            metrics, digest = _batching_run(
                args.seed,
                condition,
                (max_batch, pipeline_depth),
                args.txns,
                args.concurrency,
            )
            label = f"b={max_batch} d={pipeline_depth}"
            print(
                f"{condition:>6} {label:>9}: committed={metrics['committed']} "
                f"messages={metrics['messages']} digest={digest[:16]}..."
            )
            if metrics["committed"] != args.txns:
                print(
                    f"batchgate: FAIL -- {condition} {label} committed only "
                    f"{metrics['committed']}/{args.txns}",
                    file=sys.stderr,
                )
                failed = True
            if digest != reference_digest:
                print(
                    f"batchgate: FAIL -- {condition} {label} state digest "
                    f"diverged from unbatched:\n  {reference_digest}\n  {digest}",
                    file=sys.stderr,
                )
                failed = True
            if metrics["messages"] >= reference["messages"]:
                print(
                    f"batchgate: FAIL -- {condition} {label} used "
                    f"{metrics['messages']} messages, not fewer than the "
                    f"unbatched {reference['messages']}",
                    file=sys.stderr,
                )
                failed = True
    if failed:
        return 1
    print(
        f"batchgate: OK ({len(GATE_CONDITIONS)} schedules x "
        f"{len(GATE_CONFIGS)} batch configs, state byte-identical to "
        "unbatched, fewer messages everywhere)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
