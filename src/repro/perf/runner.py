"""CLI runner for the perf suite: ``python -m repro.perf``.

Runs the fixed scenario suite (see :mod:`repro.perf.scenarios`), prints a
summary table, writes schema-versioned ``BENCH.json``, and optionally
gates against a committed baseline::

    python -m repro.perf --quick --out BENCH.json \\
        --baseline benchmarks/results/BENCH_baseline.json --max-regression 0.20

Exit status is non-zero when any scenario regresses past the allowance,
when a scenario's same-seed determinism check fails, or when the baseline
file cannot be read.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.perf.report import (
    PerfReport,
    compare_to_baseline,
    load_bench_json,
    write_bench_json,
)
from repro.perf.scenarios import SCENARIOS, run_scenario, scenario_names


def run_suite(
    quick: bool = False,
    only: Optional[List[str]] = None,
    best_of: int = 1,
) -> List[PerfReport]:
    """Run the (optionally filtered) scenario suite and return the reports."""
    selected = SCENARIOS
    if only:
        unknown = sorted(set(only) - set(scenario_names()))
        if unknown:
            raise SystemExit(
                f"unknown scenario(s) {unknown}; choose from {scenario_names()}"
            )
        selected = [s for s in SCENARIOS if s.name in only]
    return [
        run_scenario(scenario, quick=quick, best_of=best_of)
        for scenario in selected
    ]


def print_summary(reports: List[PerfReport]) -> None:
    headers = [
        "scenario", "events", "events/s", "sim-s/wall-s",
        "call p50", "call p99", "peak heap",
    ]
    print(render_table(headers, [report.summary_row() for report in reports]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run the seeded perf suite and emit BENCH.json.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="scaled-down workloads (what CI runs)",
    )
    parser.add_argument(
        "--out", default="BENCH.json",
        help="where to write the results document (default: BENCH.json)",
    )
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help=f"run only this scenario (repeatable); one of {scenario_names()}",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="gate events/s against this committed BENCH.json",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20, metavar="FRACTION",
        help="allowed events/s drop vs the baseline (default: 0.20)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="also overwrite --baseline with this run's results",
    )
    parser.add_argument(
        "--best-of", type=int, default=1, metavar="N",
        help="timing passes per scenario, fastest wins (default: 1)",
    )
    args = parser.parse_args(argv)

    reports = run_suite(
        quick=args.quick, only=args.scenario, best_of=args.best_of
    )
    print_summary(reports)

    mode = "quick" if args.quick else "full"
    write_bench_json(args.out, reports, mode=mode)
    print(f"\nwrote {args.out} ({mode} mode, schema v1)")

    if args.update_baseline:
        if args.baseline is None:
            print("--update-baseline requires --baseline", file=sys.stderr)
            return 2
        write_bench_json(args.baseline, reports, mode=mode)
        print(f"updated baseline {args.baseline}")
        return 0

    if args.baseline is not None:
        try:
            baseline = load_bench_json(args.baseline)
        except (OSError, ValueError) as error:
            print(f"cannot load baseline: {error}", file=sys.stderr)
            return 2
        current = {report.scenario: report for report in reports}
        failures = compare_to_baseline(
            current, baseline, max_regression=args.max_regression
        )
        if failures:
            print("\nPERF REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(
            f"no regression vs {args.baseline} "
            f"(allowance {args.max_regression:.0%})"
        )
    return 0
