"""Perf reports and the schema-versioned BENCH.json document.

A :class:`PerfReport` is one scenario's measured numbers: kernel counters
(events executed, timers created/cancelled, compactions), message-plane
counters, wall-clock throughput (events/s, simulated seconds per wall
second), call-latency percentiles, peak traced heap, and a deterministic
digest of the transaction ledger.  The digest is what lets perf runs double
as determinism checks: two same-seed runs must produce byte-identical
digests regardless of kernel optimizations.

``BENCH.json`` is a dict of scenario name -> report, wrapped in a
``schema_version`` envelope so future PRs can evolve the format without
silently breaking the CI regression gate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import pathlib
from typing import Dict, List, Optional

#: Bump when the BENCH.json layout changes incompatibly.
SCHEMA_VERSION = 1


def ledger_digest(runtime) -> str:
    """Deterministic sha256 over a run's observable outcome.

    Covers the full ledger (commits, aborts, effects, view changes), the
    event count, and the final clock -- any reordering introduced by a
    kernel change shows up here as a different digest on the same seed.
    """
    ledger = runtime.ledger
    parts = [
        repr(sorted((str(aid), at) for aid, at in ledger.committed.items())),
        repr(sorted((str(aid), why) for aid, why in ledger.aborted.items())),
        repr(
            sorted(
                (str(aid), groupid, sorted(reads.items()), sorted(writes.items()))
                for (aid, groupid), (reads, writes) in ledger.effects.items()
            )
        ),
        repr(
            [
                (ev.groupid, str(ev.viewid), ev.primary, ev.completed_at)
                for ev in ledger.view_changes
            ]
        ),
        repr(runtime.sim.events_processed),
        repr(runtime.sim.now),
    ]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def state_digest(runtime) -> str:
    """Deterministic sha256 over the final replicated *application state*.

    Unlike :func:`ledger_digest`, this covers only what the paper's safety
    argument promises survives any schedule: each group's committed base
    values (uid -> value at the active primary).  It deliberately excludes
    event counts, clocks, versions, and aids, all of which legitimately
    differ between two runs that commit the same transactions along
    different schedules -- e.g. a batched and an unbatched run of the same
    workload.  Two configs that disagree here lost, duplicated, or
    reordered conflicting writes.
    """
    parts = []
    for groupid in sorted(runtime.groups):
        primary = runtime.groups[groupid].active_primary()
        if primary is None:
            parts.append(f"{groupid}: no active primary")
            continue
        store = primary.store
        items = sorted(
            (uid, repr(store.get(uid).base)) for uid in store.uids()
        )
        parts.append(f"{groupid}: {items!r}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


@dataclasses.dataclass
class PerfReport:
    """Measured numbers for one scenario run."""

    scenario: str
    seed: int
    wall_seconds: float
    sim_seconds: float
    events: int
    events_per_sec: float
    sim_seconds_per_wall_second: float
    timers_created: int
    timers_cancelled: int
    heap_compactions: int
    peak_heap_size: int
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    call_p50: Optional[float]
    call_p99: Optional[float]
    peak_heap_bytes: int
    ledger_digest: str
    extra: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PerfReport":
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    def summary_row(self) -> tuple:
        return (
            self.scenario,
            f"{self.events:,}",
            f"{self.events_per_sec:,.0f}",
            f"{self.sim_seconds_per_wall_second:,.0f}",
            _fmt(self.call_p50),
            _fmt(self.call_p99),
            f"{self.peak_heap_bytes / 1024:,.0f} KiB",
        )


def _fmt(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.2f}"


def build_report(
    runtime,
    scenario: str,
    seed: int,
    wall_seconds: float,
    peak_heap_bytes: int,
    latency_key: Optional[str] = None,
    extra: Optional[dict] = None,
) -> PerfReport:
    """Assemble a :class:`PerfReport` from a finished runtime's counters."""
    sim = runtime.sim
    net = runtime.network
    p50 = p99 = None
    if latency_key is not None:
        stat = runtime.metrics.latencies.get(latency_key)
        if stat is not None and stat.count:
            p50, p99 = stat.p50, stat.p99
    wall = max(wall_seconds, 1e-9)
    return PerfReport(
        scenario=scenario,
        seed=seed,
        wall_seconds=wall_seconds,
        sim_seconds=sim.now,
        events=sim.events_processed,
        events_per_sec=sim.events_processed / wall,
        sim_seconds_per_wall_second=sim.now / wall,
        timers_created=sim.timers_created,
        timers_cancelled=sim.timers_cancelled,
        heap_compactions=sim.heap_compactions,
        peak_heap_size=sim.peak_heap_size,
        messages_sent=net.messages_sent_total,
        messages_delivered=net.messages_delivered_total,
        messages_dropped=net.messages_dropped_total,
        call_p50=p50,
        call_p99=p99,
        peak_heap_bytes=peak_heap_bytes,
        ledger_digest=ledger_digest(runtime),
        extra=dict(extra or {}),
    )


# -- BENCH.json ------------------------------------------------------------


def bench_document(reports: List[PerfReport], mode: str) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "scenarios": {report.scenario: report.to_dict() for report in reports},
    }


def write_bench_json(path, reports: List[PerfReport], mode: str) -> None:
    document = bench_document(reports, mode)
    pathlib.Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_bench_json(path) -> Dict[str, PerfReport]:
    """Load a BENCH.json into scenario -> report, validating the schema."""
    document = json.loads(pathlib.Path(path).read_text())
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} != supported {SCHEMA_VERSION}"
        )
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, dict):
        raise ValueError(f"{path}: missing 'scenarios' mapping")
    return {
        name: PerfReport.from_dict(data) for name, data in scenarios.items()
    }


def compare_to_baseline(
    current: Dict[str, PerfReport],
    baseline: Dict[str, PerfReport],
    max_regression: float = 0.20,
) -> List[str]:
    """Return human-readable failures where throughput regressed too far.

    A scenario fails when its events/s drops more than *max_regression*
    below the baseline.  Scenarios present on only one side are reported
    too (a silently dropped scenario must not pass the gate).
    """
    failures: List[str] = []
    for name, base in sorted(baseline.items()):
        report = current.get(name)
        if report is None:
            failures.append(f"{name}: present in baseline but not measured")
            continue
        floor = base.events_per_sec * (1.0 - max_regression)
        if report.events_per_sec < floor:
            failures.append(
                f"{name}: {report.events_per_sec:,.0f} events/s is below "
                f"{floor:,.0f} (baseline {base.events_per_sec:,.0f}, "
                f"allowed regression {max_regression:.0%})"
            )
    for name in sorted(set(current) - set(baseline)):
        failures.append(
            f"{name}: measured but missing from baseline "
            "(refresh it with --update-baseline)"
        )
    return failures
