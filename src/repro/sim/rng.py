"""Seeded random-number streams with deterministic forking.

Every source of randomness in a simulation (network delays, workload
inter-arrival times, failure schedules, ...) draws from its own named
sub-stream so that adding a new consumer of randomness never perturbs the
draws seen by existing consumers.  This is what makes regression tests on
end-to-end simulations stable.
"""

from __future__ import annotations

import hashlib
import random


class SeededRng:
    """A ``random.Random`` wrapper that can fork named, independent streams.

    Forking is deterministic: ``SeededRng(1).fork("net")`` always produces the
    same stream, regardless of how many other streams were forked before it.
    """

    def __init__(self, seed: int | str, _name: str = "root") -> None:
        self.seed = seed
        self.name = _name
        digest = hashlib.sha256(f"{seed}/{_name}".encode()).digest()
        self._random = random.Random(int.from_bytes(digest[:8], "big"))

    def fork(self, name: str) -> "SeededRng":
        """Return an independent stream derived from this one and *name*."""
        return SeededRng(self.seed, _name=f"{self.name}/{name}")

    # -- draw helpers -----------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, seq):
        return self._random.choice(seq)

    def sample(self, seq, k: int):
        return self._random.sample(seq, k)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRng(seed={self.seed!r}, name={self.name!r})"
