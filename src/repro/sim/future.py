"""Futures: single-assignment result cells that wake their waiters."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.errors import CancelledError, SimulationError

_PENDING = "pending"
_RESOLVED = "resolved"
_FAILED = "failed"
_CANCELLED = "cancelled"


class Future:
    """A placeholder for a value produced later in virtual time.

    Callbacks registered with :meth:`add_done_callback` run synchronously at
    the instant of resolution (they receive the future itself).  Processes
    that ``yield`` a future are resumed through this mechanism.
    """

    __slots__ = ("_state", "_value", "_callbacks", "label")

    def __init__(self, label: str = ""):
        self._state = _PENDING
        self._value: Any = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.label = label

    # -- inspection ---------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._state != _PENDING

    @property
    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    @property
    def failed(self) -> bool:
        return self._state in (_FAILED, _CANCELLED)

    def result(self) -> Any:
        """Return the value, raising if the future failed or is pending."""
        if self._state == _RESOLVED:
            return self._value
        if self._state == _FAILED:
            raise self._value
        if self._state == _CANCELLED:
            raise CancelledError(self.label or "future cancelled")
        raise SimulationError(f"future {self.label!r} is still pending")

    def exception(self) -> Optional[BaseException]:
        """Return the failure exception, or None if resolved/pending."""
        if self._state == _FAILED:
            return self._value
        if self._state == _CANCELLED:
            return CancelledError(self.label or "future cancelled")
        return None

    # -- resolution -----------------------------------------------------------

    def set_result(self, value: Any = None) -> None:
        if self._state != _PENDING:
            raise SimulationError(f"future {self.label!r} already {self._state}")
        self._state = _RESOLVED
        self._value = value
        self._run_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        if self._state != _PENDING:
            raise SimulationError(f"future {self.label!r} already {self._state}")
        self._state = _FAILED
        self._value = exc
        self._run_callbacks()

    def cancel(self) -> bool:
        """Cancel if still pending.  Returns True if this call cancelled it."""
        if self._state != _PENDING:
            return False
        self._state = _CANCELLED
        self._run_callbacks()
        return True

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Invoke *callback(self)* on resolution (immediately if already done)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Future({self.label!r}, {self._state})"
