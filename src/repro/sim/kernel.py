"""The discrete-event simulator: a virtual clock over an event heap.

Events are ``(time, sequence)``-ordered callbacks.  The sequence number makes
execution order total and deterministic even when many events share a
timestamp, which is common in protocol simulations (e.g. a broadcast fanning
out with identical delays).

Hot-path notes (see docs/PERF.md):

- Heap entries are plain ``(when, seq, timer)`` tuples so ``heapq`` compares
  them in C instead of dispatching to a Python ``__lt__``.  Pop order is
  unaffected: ``(when, seq)`` is already a strict total order.
- Cancellation is lazy.  ``Timer.cancel`` tombstones the entry where it sits;
  the tombstone is skipped when popped.  When tombstones dominate the heap a
  periodic compaction rebuilds it, so a workload that schedules-and-cancels
  in a loop (retransmission timers, probe timeouts) cannot grow the heap
  without bound.  Compaction is triggered purely by event/cancel counts, so
  it is deterministic.
- The kernel keeps cheap integer perf counters (timers created/cancelled,
  compactions, peak heap size) and accumulates wall-clock time spent inside
  :meth:`run`; :mod:`repro.perf` reads them to build a
  :class:`~repro.perf.report.PerfReport`.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Optional

from repro.sim.errors import SchedulingInPastError, SimulationLimitExceeded
from repro.sim.rng import SeededRng


class Timer:
    """A handle to a scheduled event.  ``cancel()`` prevents it from firing."""

    __slots__ = ("when", "_seq", "_callback", "_args", "cancelled", "_sim")

    def __init__(
        self,
        when: float,
        seq: int,
        callback: Callable,
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.when = when
        self._seq = seq
        self._callback = callback
        self._args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the timer from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled-but-still-heaped timers don't pin
        # protocol state (cohorts, messages) in memory.
        self._callback = None
        self._args = ()
        if self._sim is not None:
            self._sim._on_timer_cancelled()

    @property
    def active(self) -> bool:
        return not self.cancelled

    def _fire(self) -> None:
        if not self.cancelled:
            callback, args = self._callback, self._args
            # Consume directly instead of routing through cancel(): a fired
            # timer is not a cancellation and must not count as one.
            self.cancelled = True
            self._callback = None
            self._args = ()
            callback(*args)

    def __lt__(self, other: "Timer") -> bool:
        return (self.when, self._seq) < (other.when, other._seq)


class Simulator:
    """Deterministic discrete-event scheduler with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the root random stream; all simulation randomness must be
        drawn from :attr:`rng` or streams forked from it.
    max_events:
        Safety valve: :meth:`run` raises
        :class:`~repro.sim.errors.SimulationLimitExceeded` after this many
        events, which turns protocol livelocks into crisp test failures.
    compact_threshold:
        Rebuild the heap once at least this many cancelled timers are
        pending *and* they make up at least half the heap.  ``0`` disables
        compaction (pure lazy cancellation, the pre-optimization behaviour);
        event ordering is identical either way.
    """

    def __init__(
        self,
        seed: int | str = 0,
        max_events: int = 5_000_000,
        compact_threshold: int = 1024,
    ):
        self.rng = SeededRng(seed)
        self.max_events = max_events
        self.compact_threshold = compact_threshold
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Timer]] = []
        self._events_processed = 0
        self._cancelled_pending = 0
        self._timers_created = 0
        self._timers_cancelled = 0
        self._heap_compactions = 0
        self._peak_heap = 0
        self._wall_seconds = 0.0
        self._trace_hooks: list[Callable[[float, str, dict], None]] = []
        # Attachment point for repro.trace: None keeps every instrumented
        # call site (Node.set_timer, Network.send/_deliver) on its fast
        # path -- one attribute load and an ``is None`` test.  The kernel
        # loop itself never consults it.
        self.tracer = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # -- perf counters ----------------------------------------------------

    @property
    def timers_created(self) -> int:
        return self._timers_created

    @property
    def timers_cancelled(self) -> int:
        """Timers cancelled before firing (fired timers are not counted)."""
        return self._timers_cancelled

    @property
    def heap_compactions(self) -> int:
        return self._heap_compactions

    @property
    def peak_heap_size(self) -> int:
        """High-water mark of pending heap entries, tombstones included."""
        return self._peak_heap

    @property
    def wall_seconds(self) -> float:
        """Cumulative wall-clock time spent inside :meth:`run`."""
        return self._wall_seconds

    def perf_counters(self) -> dict:
        """Kernel counters as a plain dict (consumed by :mod:`repro.perf`)."""
        return {
            "events_processed": self._events_processed,
            "timers_created": self._timers_created,
            "timers_cancelled": self._timers_cancelled,
            "heap_compactions": self._heap_compactions,
            "peak_heap_size": self._peak_heap,
            "pending": len(self._heap),
            "wall_seconds": self._wall_seconds,
        }

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Timer:
        """Run ``callback(*args)`` after *delay* units of virtual time."""
        if delay < 0:
            raise SchedulingInPastError(f"negative delay {delay!r}")
        self._seq += 1
        when = self._now + delay
        timer = Timer(when, self._seq, callback, args, self)
        heapq.heappush(self._heap, (when, self._seq, timer))
        self._timers_created += 1
        if len(self._heap) > self._peak_heap:
            self._peak_heap = len(self._heap)
        return timer

    def call_soon(self, callback: Callable, *args: Any) -> Timer:
        """Run ``callback(*args)`` at the current time, after pending events."""
        return self.schedule(0.0, callback, *args)

    def _on_timer_cancelled(self) -> None:
        self._timers_cancelled += 1
        self._cancelled_pending += 1
        threshold = self.compact_threshold
        if (
            threshold
            and self._cancelled_pending >= threshold
            and self._cancelled_pending * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned entries and re-heapify.  Pop order is preserved
        because ``(when, seq)`` keys are unique.  Mutates the heap list in
        place: cancel() can run mid-callback while run()/step() hold a
        reference to the same list."""
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled_pending = 0
        self._heap_compactions += 1

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Process the single next event.  Returns False if the heap is empty."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when, _seq, timer = pop(heap)
            if timer.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = when
            self._events_processed += 1
            if self._events_processed > self.max_events:
                raise SimulationLimitExceeded(
                    f"exceeded {self.max_events} events at t={self._now:.3f}"
                )
            callback, args = timer._callback, timer._args
            timer.cancelled = True
            timer._callback = None
            timer._args = ()
            callback(*args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap empties or the clock passes *until*.

        Returns the final virtual time.  With ``until`` set, the clock is
        advanced exactly to ``until`` even if no event lands on it, so
        back-to-back ``run(until=...)`` calls compose predictably.
        """
        started = time.perf_counter()
        try:
            if until is None:
                step = self.step
                while step():
                    pass
                return self._now
            heap = self._heap
            while heap:
                head = heap[0]
                if head[2].cancelled:
                    heapq.heappop(heap)
                    self._cancelled_pending -= 1
                    continue
                if head[0] > until:
                    break
                self.step()
            self._now = max(self._now, until)
            return self._now
        finally:
            self._wall_seconds += time.perf_counter() - started

    # -- tracing ----------------------------------------------------------

    def add_trace_hook(self, hook: Callable[[float, str, dict], None]) -> None:
        """Register a hook invoked by :meth:`trace` with (time, kind, data)."""
        self._trace_hooks.append(hook)

    def trace(self, kind: str, **data: Any) -> None:
        """Emit a trace record to all registered hooks (no-op without hooks)."""
        for hook in self._trace_hooks:
            hook(self._now, kind, data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
