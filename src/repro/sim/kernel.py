"""The discrete-event simulator: a virtual clock over an event heap.

Events are ``(time, sequence)``-ordered callbacks.  The sequence number makes
execution order total and deterministic even when many events share a
timestamp, which is common in protocol simulations (e.g. a broadcast fanning
out with identical delays).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.errors import SchedulingInPastError, SimulationLimitExceeded
from repro.sim.rng import SeededRng


class Timer:
    """A handle to a scheduled event.  ``cancel()`` prevents it from firing."""

    __slots__ = ("when", "_seq", "_callback", "_args", "cancelled")

    def __init__(self, when: float, seq: int, callback: Callable, args: tuple):
        self.when = when
        self._seq = seq
        self._callback = callback
        self._args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the timer from firing.  Safe to call more than once."""
        self.cancelled = True
        # Drop references so cancelled-but-still-heaped timers don't pin
        # protocol state (cohorts, messages) in memory.
        self._callback = None
        self._args = ()

    @property
    def active(self) -> bool:
        return not self.cancelled

    def _fire(self) -> None:
        if not self.cancelled:
            callback, args = self._callback, self._args
            self.cancel()
            callback(*args)

    def __lt__(self, other: "Timer") -> bool:
        return (self.when, self._seq) < (other.when, other._seq)


class Simulator:
    """Deterministic discrete-event scheduler with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the root random stream; all simulation randomness must be
        drawn from :attr:`rng` or streams forked from it.
    max_events:
        Safety valve: :meth:`run` raises
        :class:`~repro.sim.errors.SimulationLimitExceeded` after this many
        events, which turns protocol livelocks into crisp test failures.
    """

    def __init__(self, seed: int | str = 0, max_events: int = 5_000_000):
        self.rng = SeededRng(seed)
        self.max_events = max_events
        self._now = 0.0
        self._seq = 0
        self._heap: list[Timer] = []
        self._events_processed = 0
        self._trace_hooks: list[Callable[[float, str, dict], None]] = []

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Timer:
        """Run ``callback(*args)`` after *delay* units of virtual time."""
        if delay < 0:
            raise SchedulingInPastError(f"negative delay {delay!r}")
        self._seq += 1
        timer = Timer(self._now + delay, self._seq, callback, args)
        heapq.heappush(self._heap, timer)
        return timer

    def call_soon(self, callback: Callable, *args: Any) -> Timer:
        """Run ``callback(*args)`` at the current time, after pending events."""
        return self.schedule(0.0, callback, *args)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Process the single next event.  Returns False if the heap is empty."""
        while self._heap:
            timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = timer.when
            self._events_processed += 1
            if self._events_processed > self.max_events:
                raise SimulationLimitExceeded(
                    f"exceeded {self.max_events} events at t={self._now:.3f}"
                )
            timer._fire()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap empties or the clock passes *until*.

        Returns the final virtual time.  With ``until`` set, the clock is
        advanced exactly to ``until`` even if no event lands on it, so
        back-to-back ``run(until=...)`` calls compose predictably.
        """
        if until is None:
            while self.step():
                pass
            return self._now
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.when > until:
                break
            self.step()
        self._now = max(self._now, until)
        return self._now

    # -- tracing ----------------------------------------------------------

    def add_trace_hook(self, hook: Callable[[float, str, dict], None]) -> None:
        """Register a hook invoked by :meth:`trace` with (time, kind, data)."""
        self._trace_hooks.append(hook)

    def trace(self, kind: str, **data: Any) -> None:
        """Emit a trace record to all registered hooks (no-op without hooks)."""
        for hook in self._trace_hooks:
            hook(self._now, kind, data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
