"""Generator-based processes ("green threads") on the virtual clock.

A process body is a plain generator.  It may ``yield``:

- a :class:`~repro.sim.future.Future` -- resume when it resolves (the yield
  expression evaluates to the future's result; failures are thrown in);
- another :class:`Process` -- resume when it finishes (join);
- ``sleep(delay)`` -- resume after *delay* virtual time units;
- ``all_of(f1, f2, ...)`` -- resume when every future resolves, evaluating to
  the list of results (fails fast on the first failure);
- ``any_of(f1, f2, ...)`` -- resume when the first future resolves,
  evaluating to ``(index, result)``.

The process's own completion is observable because :class:`Process` *is* a
:class:`~repro.sim.future.Future`: its result is the generator's return
value, its exception is whatever escaped the generator.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.sim.errors import CancelledError, SimulationError
from repro.sim.future import Future
from repro.sim.kernel import Simulator


class Sleep:
    """Sentinel yielded by a process to pause for *delay* time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        self.delay = delay


def sleep(delay: float) -> Sleep:
    """Pause the yielding process for *delay* virtual time units."""
    return Sleep(delay)


class AllOf:
    """Sentinel: wait for every future; value is the list of results."""

    __slots__ = ("futures",)

    def __init__(self, futures: Iterable[Future]):
        self.futures = list(futures)


def all_of(*futures: Future) -> AllOf:
    if len(futures) == 1 and not isinstance(futures[0], Future):
        return AllOf(futures[0])  # all_of(iterable) form
    return AllOf(futures)


class AnyOf:
    """Sentinel: wait for the first future; value is ``(index, result)``."""

    __slots__ = ("futures",)

    def __init__(self, futures: Iterable[Future]):
        self.futures = list(futures)


def any_of(*futures: Future) -> AnyOf:
    if len(futures) == 1 and not isinstance(futures[0], Future):
        return AnyOf(futures[0])  # any_of(iterable) form
    return AnyOf(futures)


class Process(Future):
    """A running generator coroutine.  Created via ``spawn``."""

    __slots__ = ("sim", "_generator", "_waiting_on", "name")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        super().__init__(label=name or "process")
        self.sim = sim
        self.name = name
        self._generator = generator
        self._waiting_on: Any = None
        # Start on the next tick so spawn() returns before the body runs.
        sim.call_soon(self._advance, None, None)

    # -- control ------------------------------------------------------------

    def interrupt(self, exc: BaseException | None = None) -> None:
        """Throw *exc* (default CancelledError) into the process body."""
        if self.done:
            return
        self._detach_wait()
        self.sim.call_soon(
            self._advance, None, exc if exc is not None else CancelledError(self.name)
        )

    # -- stepping -------------------------------------------------------------

    def _detach_wait(self) -> None:
        waiting, self._waiting_on = self._waiting_on, None
        if isinstance(waiting, list):
            for timer in waiting:
                timer.cancel()

    def _advance(self, value: Any, exc: BaseException | None) -> None:
        if self.done:
            return
        self._waiting_on = None
        try:
            if exc is not None:
                yielded = self._generator.throw(exc)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            self.set_result(stop.value)
            return
        except CancelledError:
            if not self.done:
                self.cancel()
            return
        except BaseException as error:
            self.set_exception(error)
            return
        self._wait_for(yielded)

    def _wait_for(self, yielded: Any) -> None:
        if isinstance(yielded, Sleep):
            timer = self.sim.schedule(yielded.delay, self._advance, None, None)
            self._waiting_on = [timer]
        elif isinstance(yielded, Future):
            yielded.add_done_callback(self._on_future_done)
        elif isinstance(yielded, AllOf):
            self._wait_all(yielded.futures)
        elif isinstance(yielded, AnyOf):
            self._wait_any(yielded.futures)
        else:
            self._advance(
                None,
                SimulationError(
                    f"process {self.name!r} yielded unexpected {yielded!r}"
                ),
            )

    def _on_future_done(self, future: Future) -> None:
        if self.done:
            return
        error = future.exception()
        if error is not None:
            self.sim.call_soon(self._advance, None, error)
        else:
            self.sim.call_soon(self._advance, future.result(), None)

    def _wait_all(self, futures: list[Future]) -> None:
        if not futures:
            self.sim.call_soon(self._advance, [], None)
            return
        pending = {"count": len(futures), "fired": False}

        def on_done(_future: Future) -> None:
            if pending["fired"] or self.done:
                return
            error = _future.exception()
            if error is not None:
                pending["fired"] = True
                self.sim.call_soon(self._advance, None, error)
                return
            pending["count"] -= 1
            if pending["count"] == 0:
                pending["fired"] = True
                results = [f.result() for f in futures]
                self.sim.call_soon(self._advance, results, None)

        for future in futures:
            future.add_done_callback(on_done)

    def _wait_any(self, futures: list[Future]) -> None:
        if not futures:
            self._advance(None, SimulationError("any_of() of no futures"))
            return
        fired = {"done": False}

        def on_done(index: int, _future: Future) -> None:
            if fired["done"] or self.done:
                return
            fired["done"] = True
            error = _future.exception()
            if error is not None:
                self.sim.call_soon(self._advance, None, error)
            else:
                self.sim.call_soon(self._advance, (index, _future.result()), None)

        for index, future in enumerate(futures):
            future.add_done_callback(lambda f, i=index: on_done(i, f))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, done={self.done})"


def spawn(sim: Simulator, generator: Generator, name: str = "") -> Process:
    """Start *generator* as a process on *sim*; returns its Process/Future."""
    return Process(sim, generator, name=name)
