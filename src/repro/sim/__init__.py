"""Deterministic discrete-event simulation kernel.

The kernel provides:

- :class:`~repro.sim.kernel.Simulator` -- an event-heap scheduler with a
  virtual clock.  Every run is exactly reproducible: ties are broken by a
  monotonically increasing sequence number, and all randomness flows through
  seeded :class:`~repro.sim.rng.SeededRng` streams.
- :class:`~repro.sim.future.Future` -- a resolvable placeholder used to wire
  asynchronous completion between actors and processes.
- :class:`~repro.sim.process.Process` -- generator-based coroutines: a process
  ``yield``s futures, :func:`~repro.sim.process.sleep` sentinels, or other
  processes, and the kernel resumes it when they resolve.
- :class:`~repro.sim.node.Node` -- a fail-stop machine (paper section 1) that
  hosts actors, crashes (losing volatile state and pending timers), and
  recovers with a new incarnation number.
"""

from repro.sim.errors import (
    CancelledError,
    SimulationError,
    SimulationLimitExceeded,
)
from repro.sim.future import Future
from repro.sim.kernel import Simulator, Timer
from repro.sim.node import Actor, Node
from repro.sim.process import Process, all_of, any_of, sleep
from repro.sim.rng import SeededRng

__all__ = [
    "Actor",
    "CancelledError",
    "Future",
    "Node",
    "Process",
    "SeededRng",
    "SimulationError",
    "SimulationLimitExceeded",
    "Simulator",
    "Timer",
    "all_of",
    "any_of",
    "sleep",
]
