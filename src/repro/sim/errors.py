"""Exceptions raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class SimulationLimitExceeded(SimulationError):
    """The simulator processed more events than the configured safety limit.

    Almost always indicates a livelock in protocol code (e.g. two view
    managers re-inviting each other forever with no timeout backoff).
    """


class CancelledError(SimulationError):
    """A future or process was cancelled before it produced a result."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled with a negative delay."""
