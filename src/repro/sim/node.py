"""Fail-stop nodes and the actors they host.

The paper's failure model (section 1): nodes are fail-stop processors -- they
crash cleanly (no byzantine behaviour), losing volatile state, and eventually
recover.  A :class:`Node` models one machine:

- ``crash()`` marks the node down, bumps its *incarnation*, cancels every
  timer set through the node, and tells each hosted actor to drop volatile
  state (``Actor.on_crash``).
- ``recover()`` marks it up and calls ``Actor.on_recover``, where protocol
  code re-initializes from stable storage (paper section 4: ``up_to_date``
  becomes false and the cohort starts a view change).

Actors must create timers via :meth:`Node.set_timer` so that a crash
invalidates them -- a timer set before a crash must never fire into the
recovered incarnation.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.sim.kernel import Simulator, Timer
from repro.sim.process import Process, spawn


class Actor:
    """Base class for protocol participants hosted on a node.

    Subclasses override :meth:`handle_message` plus the crash/recover hooks.
    """

    def __init__(self, node: "Node", address: str):
        self.node = node
        self.sim = node.sim
        self.address = address
        node.attach(self)

    # -- message plane -----------------------------------------------------

    def handle_message(self, message: Any, source: str) -> None:
        """Called by the network when a message addressed to us arrives."""
        raise NotImplementedError

    # -- failure hooks -------------------------------------------------------

    def on_crash(self) -> None:
        """Volatile state is being lost; subclasses drop in-memory state."""

    def on_recover(self) -> None:
        """The node came back up; re-initialize from stable storage."""

    # -- conveniences ---------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable, *args: Any) -> Timer:
        return self.node.set_timer(delay, callback, *args)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        return self.node.spawn(generator, name=name)


class Node:
    """A fail-stop machine hosting zero or more actors."""

    #: Compact the timer/process bookkeeping lists once they exceed this many
    #: entries (dropping cancelled timers and finished processes).  The
    #: working threshold doubles with the surviving population after each
    #: sweep, so a node with N genuinely-live timers pays amortized O(1)
    #: per set_timer instead of O(N) once N crosses a fixed limit.
    _PRUNE_THRESHOLD = 64

    def __init__(self, sim: Simulator, node_id: str):
        self.sim = sim
        self.node_id = node_id
        self.up = True
        self.incarnation = 0
        self.actors: list[Actor] = []
        # StableStores hosted here register themselves (see repro.storage);
        # disk state is per-machine, so disk-fault injection targets nodes.
        self.stable_stores: list = []
        self._timers: list[Timer] = []
        self._processes: list[Process] = []
        self._timer_prune_at = self._PRUNE_THRESHOLD
        self._process_prune_at = self._PRUNE_THRESHOLD
        self.crash_count = 0

    def attach(self, actor: Actor) -> None:
        self.actors.append(actor)

    # -- timers & processes (crash-scoped) ---------------------------------

    def set_timer(self, delay: float, callback: Callable, *args: Any) -> Timer:
        """Schedule a callback that is silently dropped if the node crashes."""
        incarnation = self.incarnation
        tracer = self.sim.tracer

        if tracer is None:

            def guarded() -> None:
                if self.up and self.incarnation == incarnation:
                    callback(*args)

        else:
            # Causality through timers: the fire inherits the event context
            # in which the timer was armed (a delivery, another fire, ...).
            armed_in = tracer.current()
            parents = (armed_in,) if armed_in is not None else ()

            def guarded() -> None:
                if self.up and self.incarnation == incarnation:
                    eid = tracer.emit(
                        "timer_fire", node=self.node_id, parents=parents,
                        delay=delay,
                    )
                    tracer.push(eid)
                    try:
                        callback(*args)
                    finally:
                        tracer.pop()

        timer = self.sim.schedule(delay, guarded)
        self._timers.append(timer)
        if len(self._timers) > self._timer_prune_at:
            self._timers = [t for t in self._timers if t.active]
            self._timer_prune_at = max(
                self._PRUNE_THRESHOLD, 2 * len(self._timers)
            )
        return timer

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Run a process that is interrupted if the node crashes."""
        process = spawn(self.sim, generator, name=name or f"proc@{self.node_id}")
        self._processes.append(process)
        if len(self._processes) > self._process_prune_at:
            self._processes = [p for p in self._processes if not p.done]
            self._process_prune_at = max(
                self._PRUNE_THRESHOLD, 2 * len(self._processes)
            )
        return process

    # -- failure injection -----------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: lose volatile state, kill timers and processes."""
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        self.incarnation += 1
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for process in self._processes:
            if not process.done:
                process.interrupt()
        self._processes.clear()
        for actor in self.actors:
            actor.on_crash()
        self.sim.trace("node_crash", node=self.node_id)

    def recover(self) -> None:
        """Come back up; actors re-initialize from stable storage."""
        if self.up:
            return
        self.up = True
        # crash() cancelled the old incarnation's timers but cancelled
        # entries can also accumulate between crashes; start clean.
        self._timers = [t for t in self._timers if t.active]
        self._processes = [p for p in self._processes if not p.done]
        self.sim.trace("node_recover", node=self.node_id)
        for actor in self.actors:
            actor.on_recover()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"Node({self.node_id!r}, {state}, inc={self.incarnation})"
