"""Module groups: wiring cohorts onto nodes (paper section 2).

"The method replicates individual modules to obtain module groups.  A
module group consists of several copies of the module, called cohorts,
which behave as a single, logical entity; the program can indicate the
number of cohorts when the group is created...  We expect a small number
of cohorts per group, on the order of three or five."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import ProtocolConfig
from repro.core.cohort import Cohort, Status
from repro.core.view import View, majority
from repro.core.viewstamp import ViewId
from repro.sim.node import Node


class ModuleGroup:
    """A replicated module: one cohort per node, bootstrapped into an
    initial view with the lowest-mid cohort as primary."""

    def __init__(
        self,
        runtime,
        groupid: str,
        spec,
        nodes: List[Node],
        config: Optional[ProtocolConfig] = None,
    ):
        if not nodes:
            raise ValueError("a group needs at least one cohort")
        self.runtime = runtime
        self.groupid = groupid
        self.spec = spec
        self.config = config if config is not None else runtime.config
        self.configuration: Tuple[Tuple[int, str], ...] = tuple(
            (mid, f"{groupid}/{mid}") for mid in range(len(nodes))
        )
        runtime.location.register(groupid, self.configuration)

        self.witness_mids: frozenset = frozenset()
        scale = self.config.scale
        if scale is not None and scale.witnesses > 0:
            from repro.scale import validate_witnesses, witness_mids

            validate_witnesses(len(nodes), scale.witnesses)
            self.witness_mids = witness_mids(len(nodes), scale.witnesses)

        initial_viewid = ViewId(1, 0)
        initial_view = View(primary=0, backups=tuple(range(1, len(nodes))))
        self.cohorts: Dict[int, Cohort] = {}
        for mid, node in enumerate(nodes):
            self.cohorts[mid] = Cohort(
                node=node,
                runtime=runtime,
                groupid=groupid,
                mid=mid,
                configuration=self.configuration,
                spec=spec,
                config=self.config,
                initial_viewid=initial_viewid,
                initial_view=initial_view,
            )

    # -- structure ------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.cohorts)

    def cohort(self, mid: int) -> Cohort:
        return self.cohorts[mid]

    def nodes(self) -> List[Node]:
        return [cohort.node for cohort in self.cohorts.values()]

    def register_program(self, name: str, fn) -> None:
        """Register a transaction program runnable at this group's primary."""
        self.spec.register_program(name, fn)

    # -- inspection (used by tests, examples, and the harness) ---------------

    def active_primary(self) -> Optional[Cohort]:
        """The cohort acting as primary of the most recent active view."""
        best: Optional[Cohort] = None
        for cohort in self.cohorts.values():
            if not cohort.node.up or cohort.status is not Status.ACTIVE:
                continue
            if not cohort.is_primary:
                continue
            if best is None or cohort.cur_viewid > best.cur_viewid:
                best = cohort
        return best

    def active_cohorts(self) -> List[Cohort]:
        return [
            cohort
            for cohort in self.cohorts.values()
            if cohort.node.up and cohort.status is Status.ACTIVE
        ]

    def highest_viewid(self) -> ViewId:
        return max(cohort.cur_viewid for cohort in self.cohorts.values())

    def read_object(self, uid: str):
        """Read an object's base value at the current primary (test oracle)."""
        primary = self.active_primary()
        if primary is None:
            raise RuntimeError(f"group {self.groupid} has no active primary")
        return primary.store.get(uid).base

    def converged(self) -> bool:
        """True when every caught-up active cohort agrees on all objects.

        Backups still draining the buffer are excluded; run the simulation
        a few flush intervals past quiescence before asserting this.
        """
        primary = self.active_primary()
        if primary is None or primary.buffer is None:
            return False
        reference = primary.store.snapshot()
        for cohort in self.active_cohorts():
            if cohort.mymid == primary.mymid:
                continue
            if cohort.mymid in self.witness_mids:
                continue  # witnesses hold no state to converge (repro.scale)
            if cohort.cur_viewid != primary.cur_viewid:
                return False
            if cohort.applied_ts < primary.buffer.timestamp:
                return False
            if cohort.store.snapshot() != reference:
                return False
        return True

    def divergence_report(self) -> List[str]:
        """Human-readable differences between primary and backups."""
        primary = self.active_primary()
        if primary is None:
            return [f"{self.groupid}: no active primary"]
        problems = []
        reference = primary.store.snapshot()
        for cohort in self.active_cohorts():
            if cohort.mymid == primary.mymid:
                continue
            if cohort.mymid in self.witness_mids:
                continue  # witnesses hold no state to compare (repro.scale)
            if cohort.cur_viewid != primary.cur_viewid:
                problems.append(
                    f"{cohort.address}: view {cohort.cur_viewid} != "
                    f"{primary.cur_viewid}"
                )
                continue
            snapshot = cohort.store.snapshot()
            for uid, entry in reference.items():
                if snapshot.get(uid) != entry:
                    problems.append(
                        f"{cohort.address}: {uid}={snapshot.get(uid)} != {entry}"
                    )
        return problems

    # -- failure injection ------------------------------------------------------

    def crash_cohort(self, mid: int) -> None:
        self.cohorts[mid].node.crash()

    def recover_cohort(self, mid: int) -> None:
        self.cohorts[mid].node.recover()

    def crash_primary(self) -> Optional[int]:
        """Crash the current active primary; returns its mid."""
        primary = self.active_primary()
        if primary is None:
            return None
        primary.node.crash()
        return primary.mymid

    def majority_size(self) -> int:
        return majority(self.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModuleGroup({self.groupid!r}, n={self.size})"
