"""Remote-call machinery shared by client primaries and nested server calls.

Implements Figure 2's "making a remote call" loop:

1. look up the server in the cache, updating the cache if necessary (by
   probing configuration members obtained from the location server);
2. send the call message (viewid from the cache + unique call id);
3. reply -> merge psets; no reply after probes -> the transaction must
   abort; view-changed rejection -> update the cache and retry.

Probes re-send the *same* call id to the *same* primary; the server's
duplicate-suppression table makes that idempotent, so lost replies are
recovered without double execution.  After a view change, the retry goes to
the new primary with the same call id -- if the call already ran in the old
view, the new primary detects the id among its surviving completed-call
records and fails the call, which aborts the transaction (the paper's
"to resolve this uncertainty, we abort the transaction").
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from repro.core.messages import (
    CallFailedMsg,
    CallMsg,
    ReplyMsg,
    ViewChangedMsg,
    ViewProbeMsg,
    ViewProbeReplyMsg,
)
from repro.core.viewstamp import ViewId
from repro.detect import Backoff
from repro.location.service import primary_address_in
from repro.sim.errors import SimulationError
from repro.sim.future import Future
from repro.txn.ids import Aid, CallId


class CallAborted(SimulationError):
    """The remote call failed in a way that requires aborting the
    transaction (or just the enclosing subaction, under nesting)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


_MAX_VIEW_SWITCHES = 5


@dataclasses.dataclass
class _OutstandingCall:
    call_id: CallId
    aid: Aid
    groupid: str
    proc: str
    args: Tuple
    future: Future
    attempts_left: int
    view_switches_left: int
    timer: Any = None
    target: Optional[str] = None
    viewid: Optional[ViewId] = None
    probing: bool = False
    probe_attempts_left: int = 3
    piggyback: Any = None
    aborted_subactions: Tuple = ()
    started_at: float = 0.0
    # Adaptive mode: retransmit on an RTT-derived backoff schedule, but give
    # up only at the deadline -- the fixed configuration's total patience
    # (call_timeout * call_probes) is preserved exactly.
    deadline: Optional[float] = None
    backoff: Any = None


class RemoteCaller:
    """Issues calls on behalf of one host actor (a cohort or client agent).

    The host provides: ``address``, ``cache`` (ClientCache), ``config``
    (ProtocolConfig), ``set_timer(delay, fn)``, ``send(dst, msg)``, and
    ``locate(groupid) -> [(mid, address), ...]``.
    """

    def __init__(self, host):
        self.host = host
        self._outstanding: Dict[CallId, _OutstandingCall] = {}
        # Named fork: adding consumers elsewhere never perturbs this stream.
        self._rng = host.sim.rng.fork(f"call-backoff/{host.address}")
        self._tracer = getattr(host, "tracer", None)

    def _live_call_timeout(self) -> float:
        """The per-attempt wait: RTT-derived when the host carries an
        :class:`~repro.detect.AdaptiveTimeouts`, the fixed constant
        otherwise (and always the fixed constant in paper-faithful mode)."""
        timeouts = getattr(self.host, "timeouts", None)
        if timeouts is not None:
            return timeouts.call_timeout()
        return self.host.config.call_timeout

    # -- API ----------------------------------------------------------------

    def call(
        self,
        aid: Aid,
        groupid: str,
        proc: str,
        args: Tuple,
        call_id: CallId,
        piggyback: Any = None,
        aborted_subactions: Tuple[int, ...] = (),
    ) -> Future:
        """Start a remote call; the future resolves to (result, pset_pairs)."""
        future = Future(label=f"call:{call_id}")
        config = self.host.config
        state = _OutstandingCall(
            call_id=call_id,
            aid=aid,
            groupid=groupid,
            proc=proc,
            args=args,
            future=future,
            attempts_left=config.call_probes,
            view_switches_left=_MAX_VIEW_SWITCHES,
            piggyback=piggyback,
            aborted_subactions=tuple(aborted_subactions),
            started_at=self.host.sim.now,
        )
        if config.adaptive_timeouts:
            state.backoff = Backoff(
                config.call_timeout,
                self._rng,
                multiplier=config.backoff_multiplier,
                cap_factor=config.backoff_cap,
                jitter=config.backoff_jitter,
            )
        self._outstanding[call_id] = state
        if self._tracer is not None:
            self._tracer.emit(
                "call_start",
                node=self.host.node.node_id,
                caller=self.host.address,
                aid=str(aid),
                call_id=str(call_id),
                group=groupid,
                proc=proc,
            )
        self._dispatch(state)
        return future

    def abandon_all(self, reason: str = "view change at caller") -> None:
        """Fail every outstanding call (host left the active state)."""
        outstanding, self._outstanding = self._outstanding, {}
        for state in outstanding.values():
            if state.timer is not None:
                state.timer.cancel()
            if not state.future.done:
                state.future.set_exception(CallAborted(reason))

    # -- sending ------------------------------------------------------------

    def _dispatch(self, state: _OutstandingCall) -> None:
        entry = self.host.cache.get(state.groupid)
        if entry is None:
            self._probe(state)
            return
        state.probing = False
        state.target = entry.primary_address
        state.viewid = entry.viewid
        self._transmit(state)

    def _transmit(self, state: _OutstandingCall) -> None:
        self.host.send(
            state.target,
            CallMsg(
                viewid=state.viewid,
                call_id=state.call_id,
                aid=state.aid,
                proc=state.proc,
                args=state.args,
                reply_to=self.host.address,
                piggyback=state.piggyback,
                aborted_subactions=state.aborted_subactions,
            ),
        )
        state.attempts_left -= 1
        config = self.host.config
        if state.backoff is None:
            delay = config.call_timeout
        else:
            now = self.host.sim.now
            if state.deadline is None:
                state.deadline = now + config.call_timeout * max(
                    1, config.call_probes
                )
            delay = max(
                min(
                    state.backoff.next(self._live_call_timeout()),
                    state.deadline - now,
                ),
                0.0,
            )
        state.timer = self.host.set_timer(delay, self._on_timeout, state.call_id)

    def _probe(self, state: _OutstandingCall) -> None:
        """Discover the group's current primary by asking its cohorts."""
        if state.probe_attempts_left <= 0:
            self._fail(state, "cannot discover a view for " + state.groupid)
            return
        state.probing = True
        state.probe_attempts_left -= 1
        try:
            members = self.host.locate(state.groupid)
        except KeyError:
            members = ()
        if not members:
            self._fail(state, f"unknown group {state.groupid}")
            return
        for _mid, address in members:
            self.host.send(address, ViewProbeMsg(reply_to=self.host.address))
        state.timer = self.host.set_timer(
            self.host.config.call_timeout, self._on_probe_timeout, state.call_id
        )

    # -- message handling (wired from the host's dispatch) -------------------

    def on_reply(self, msg: ReplyMsg) -> None:
        state = self._outstanding.pop(msg.call_id, None)
        if state is None:
            return  # late reply for a call we gave up on
        if state.timer is not None:
            state.timer.cancel()
        latency = self.host.sim.now - state.started_at
        metrics = getattr(self.host, "metrics", None)
        if metrics is not None:
            metrics.observe("call_latency", latency)
            metrics.observe(f"call_latency:{state.groupid}", latency)
        rtt = getattr(self.host, "rtt", None)
        if rtt is not None:
            rtt.observe(latency)
        if self._tracer is not None:
            self._tracer.emit(
                "call_reply",
                node=self.host.node.node_id,
                caller=self.host.address,
                call_id=str(msg.call_id),
                latency=latency,
            )
        state.future.set_result((msg.result, msg.pset_pairs, msg.piggyback))

    def on_call_failed(self, msg: CallFailedMsg) -> None:
        state = self._outstanding.pop(msg.call_id, None)
        if state is None:
            return
        if state.timer is not None:
            state.timer.cancel()
        if self._tracer is not None:
            self._tracer.emit(
                "call_failed",
                node=self.host.node.node_id,
                caller=self.host.address,
                call_id=str(msg.call_id),
                reason=msg.reason,
            )
        state.future.set_exception(CallAborted(msg.reason))

    def on_view_changed(self, msg: ViewChangedMsg) -> None:
        """Rejection carrying (possibly) newer view information."""
        if msg.call_id is None:
            return
        state = self._outstanding.get(msg.call_id)
        if state is None:
            return
        moved = False
        if msg.viewid is not None and msg.view is not None:
            moved = self._update_cache(state.groupid, msg.viewid, msg.view)
        if state.timer is not None:
            state.timer.cancel()
        if state.view_switches_left <= 0:
            self._fail_pop(state, "too many view changes at " + state.groupid)
            return
        state.view_switches_left -= 1
        state.attempts_left = self.host.config.call_probes
        if state.backoff is not None:
            # Fresh target: restart the retransmission schedule and grant
            # the full patience window again (as attempts_left does above).
            state.backoff.reset()
            state.deadline = None
        if moved or self.host.cache.get(state.groupid) is not None:
            self._dispatch(state)
        else:
            self.host.cache.invalidate(state.groupid)
            self._probe(state)

    def on_probe_reply(self, msg: ViewProbeReplyMsg) -> None:
        if msg.active and msg.viewid is not None and msg.view is not None:
            self._update_cache(msg.groupid, msg.viewid, msg.view)
        for state in list(self._outstanding.values()):
            if state.probing and state.groupid == msg.groupid:
                entry = self.host.cache.get(state.groupid)
                if entry is not None:
                    if state.timer is not None:
                        state.timer.cancel()
                    self._dispatch(state)

    # -- timeouts ------------------------------------------------------------

    def _on_timeout(self, call_id: CallId) -> None:
        state = self._outstanding.get(call_id)
        if state is None:
            return
        if state.backoff is not None:
            retry = (
                state.deadline is not None
                and self.host.sim.now < state.deadline - 1e-9
            )
        else:
            retry = state.attempts_left > 0
        if retry:
            # Probe: re-send the same call id to the same primary; the
            # server's duplicate table makes this safe.
            metrics = getattr(self.host, "metrics", None)
            if metrics is not None:
                metrics.incr("call_retransmits")
            self._transmit(state)
        else:
            # "The transaction must abort...  we also attempt to update the
            # cache, so that the next use of the server will not cause an
            # abort."  (Figure 2, step 3.)
            self.host.cache.invalidate(state.groupid)
            try:
                members = self.host.locate(state.groupid)
            except KeyError:
                members = ()
            for _mid, address in members:
                self.host.send(address, ViewProbeMsg(reply_to=self.host.address))
            self._fail_pop(state, f"no reply from {state.groupid}")

    def _on_probe_timeout(self, call_id: CallId) -> None:
        state = self._outstanding.get(call_id)
        if state is None or not state.probing:
            return
        entry = self.host.cache.get(state.groupid)
        if entry is not None:
            self._dispatch(state)
        else:
            self._probe(state)

    # -- helpers --------------------------------------------------------------

    def _update_cache(self, groupid: str, viewid: ViewId, view) -> bool:
        primary_address = primary_address_in(self.host.locate(groupid), view)
        return self.host.cache.update(groupid, viewid, view, primary_address)

    def _fail(self, state: _OutstandingCall, reason: str) -> None:
        if state.timer is not None:
            state.timer.cancel()
        if self._tracer is not None:
            self._tracer.emit(
                "call_failed",
                node=self.host.node.node_id,
                caller=self.host.address,
                call_id=str(state.call_id),
                reason=reason,
            )
        if not state.future.done:
            state.future.set_exception(CallAborted(reason))
        self._outstanding.pop(state.call_id, None)

    def _fail_pop(self, state: _OutstandingCall, reason: str) -> None:
        self._fail(state, reason)
