"""The cohort: one replica of a module group (paper Figures 1, 4).

A cohort carries exactly the paper's state:

    status        active | view_manager | underling
    gstate        the group's objects (plus the section-3.3 "compromise"
                  representation: pending completed-call/committing records
                  and the transaction-outcome table)
    up_to_date    whether gstate is meaningful (false after a crash)
    configuration the group's cohorts (stable storage)
    mymid / mygroupid                  (stable storage)
    cur_viewid / cur_view / history / max_viewid
    timestamp     the timestamp generator (lives in the buffer)
    buffer        the communication buffer (primary role only)

Role behaviour is delegated: :class:`~repro.core.server_role.ServerRole`
(Figure 3), :class:`~repro.core.client_role.ClientRole` (Figure 2), and
:class:`~repro.core.view_change.ViewChangeController` (Figure 5).  This
module owns message dispatch, backup event-record application, query
answering (section 3.4), liveness ("I'm alive") and unilateral view edits
(section 4.1).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.config import ProtocolConfig
from repro.core import messages as m
from repro.core.buffer import CommunicationBuffer
from repro.core.cache import ClientCache
from repro.core.calls import RemoteCaller
from repro.core.events import (
    Aborted,
    Committed,
    Committing,
    CompletedCall,
    Done,
    EventRecord,
    NewView,
    ViewEdit,
)
from repro.core.view import View, majority
from repro.core.viewstamp import History, ViewId, Viewstamp
from repro.detect import AdaptiveTimeouts, FailureDetector, RttEstimator
from repro.reads.lease import ReadState
from repro.sim.future import Future
from repro.sim.node import Actor, Node
from repro.storage.stable import StableStoragePolicy, StableStore
from repro.txn.ids import Aid
from repro.txn.locks import LockManager
from repro.txn.objects import ObjectStore, WRITE


class Status(enum.Enum):
    """Figure 1: ``status = oneof[active, view_manager, underling]``."""

    ACTIVE = "active"
    VIEW_MANAGER = "view_manager"
    UNDERLING = "underling"


class Cohort(Actor):
    """One replica of a module group."""

    def __init__(
        self,
        node: Node,
        runtime,
        groupid: str,
        mid: int,
        configuration: Tuple[Tuple[int, str], ...],  # (mid, address) pairs
        spec,
        config: ProtocolConfig,
        initial_viewid: ViewId,
        initial_view: View,
    ):
        address = dict(configuration)[mid]
        super().__init__(node, address)
        self.runtime = runtime
        self.config = config
        self.metrics = runtime.metrics
        self.tracer = runtime.tracer
        self.spec = spec

        # -- stable state (written at creation, survives crashes) --
        self.mygroupid = groupid
        self.mymid = mid
        self.configuration = tuple(configuration)
        self.stable = StableStore(node, write_latency=config.stable_write_latency)
        self.stable.write_immediate("mymid", mid)
        self.stable.write_immediate("mygroupid", groupid)
        self.stable.write_immediate("configuration", self.configuration)
        self.stable.write_immediate("cur_viewid", initial_viewid)

        # -- volatile state --
        self.status = Status.ACTIVE
        self.up_to_date = True
        self.cur_viewid = initial_viewid
        self.cur_view = initial_view
        self.max_viewid = initial_viewid
        self.history = History([Viewstamp(initial_viewid, 0)])
        self.buffer: Optional[CommunicationBuffer] = None
        self.applied_ts = 0  # backup: highest contiguously applied ts

        # -- read serving path (repro.reads; None = paper-faithful) --
        self.reads: Optional[ReadState] = (
            ReadState(config.reads, len(configuration), lambda: self.sim.now)
            if config.reads is not None and config.reads.enabled
            else None
        )

        # -- large-cohort mechanisms (repro.scale; None = paper-faithful).
        # A ScaleConfig with every mechanism off is normalized to None so
        # the hot paths keep a single `scale is None` fast test.
        scale = config.scale
        if scale is not None and not scale.any_enabled():
            scale = None
        self.scale = scale
        self._witnesses: frozenset = frozenset()
        self._gossip_rng = None
        self._ack_children: Dict[int, int] = {}
        self._ack_children_viewid: Optional[ViewId] = None
        self._ack_tree = None
        self._ack_tree_key = None
        self._ack_fwd_armed = False
        self._witness_install_pending: set = set()
        if scale is not None:
            from repro.scale import witness_mids

            if scale.witnesses > 0:
                self._witnesses = witness_mids(len(configuration), scale.witnesses)
            if scale.gossip:
                self._gossip_rng = runtime.sim.rng.fork(f"gossip/{address}")

        # -- gstate --
        self.store = ObjectStore()
        for uid, value in spec.initial_objects().items():
            self.store.create(uid, value)
        self.lockmgr = LockManager(self.store)
        self.pending: Dict[Aid, Dict[Viewstamp, CompletedCall]] = {}
        self.outcomes: Dict[Aid, str] = {}
        self.committing: Dict[Aid, Tuple[Tuple[str, ...], Tuple]] = {}

        # -- roles (imported lazily to avoid cycles) --
        from repro.core.client_role import ClientRole
        from repro.core.coordinator_server import CoordinatorServerRole
        from repro.core.server_role import ServerRole
        from repro.core.view_change import ViewChangeController

        self.cache = ClientCache()
        self.caller = RemoteCaller(self)
        self.server_role = ServerRole(self)
        self.client_role = ClientRole(self)
        self.coordinator_role = CoordinatorServerRole(self)
        self.view_change = ViewChangeController(self)

        # -- liveness --
        self.last_heard: Dict[int, float] = {
            peer: 0.0 for peer, _addr in configuration if peer != mid
        }
        self.detect = FailureDetector(
            config,
            peers=[peer for peer, _addr in configuration if peer != mid],
            clock=lambda: self.sim.now,
            on_transition=self._on_suspicion_transition,
        )
        self.rtt = RttEstimator()
        self.timeouts = AdaptiveTimeouts(config, self.rtt)
        self._change_pending_since: Optional[float] = None
        self._epoch = 0  # bumped on every status transition; guards timers
        # Batched-mode liveness piggybacking: when buffer traffic to a peer
        # carries sent_at, the periodic heartbeat to that peer is redundant.
        self._last_liveness_sent: Dict[int, float] = {}
        # Batched-mode ack coalescing: applied-but-unacked BufferMsg count
        # and whether the coalescing timer is armed.
        self._acks_pending = 0
        self._ack_timer_armed = False

        runtime.network.register(self)
        if self.is_primary:
            self._open_buffer()
            if self.tracer is not None:
                # The constructor never goes through activate_as_primary,
                # so the initial view's activation is emitted here.
                self.tracer.emit(
                    "primary_activated",
                    node=self.node.node_id,
                    group=self.mygroupid,
                    mid=self.mymid,
                    viewid=str(self.cur_viewid),
                    members=sorted(self.cur_view.members),
                )
        self._start_heartbeat()
        if self.is_primary:
            self._start_flush_loop()
            self.server_role.on_become_primary()
            self.client_role.on_become_primary()

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------

    @property
    def is_primary(self) -> bool:
        return self.cur_view is not None and self.cur_view.primary == self.mymid

    @property
    def is_active_primary(self) -> bool:
        return self.status is Status.ACTIVE and self.is_primary

    @property
    def config_size(self) -> int:
        return len(self.configuration)

    @property
    def is_witness(self) -> bool:
        """A bufferless voting member (repro.scale witnesses)."""
        return self.mymid in self._witnesses

    def _storage_backups(self, backups) -> Tuple[int, ...]:
        """Backups that hold an event buffer (witnesses excluded)."""
        if not self._witnesses:
            return tuple(backups)
        return tuple(b for b in backups if b not in self._witnesses)

    def peer_address(self, mid: int) -> str:
        for peer, address in self.configuration:
            if peer == mid:
                return address
        raise KeyError(f"no cohort {mid} in {self.mygroupid}")

    def send(self, destination: str, message) -> None:
        self.runtime.network.send(self.address, destination, message)

    def send_mid(self, mid: int, message) -> None:
        self.send(self.peer_address(mid), message)

    def locate(self, groupid: str):
        """(mid, address) pairs for a group -- via the location service."""
        return self.runtime.location.lookup(groupid)

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def handle_message(self, message, source: str) -> None:
        # Messages every status handles (section 3.4: queries "can be
        # answered by any cohort that knows the answer"; probes likewise).
        if isinstance(message, m.QueryMsg):
            self._handle_query(message)
            return
        if isinstance(message, m.ViewProbeMsg):
            self._handle_view_probe(message)
            return
        if isinstance(message, m.ImAliveMsg):
            self._handle_im_alive(message)
            return
        if isinstance(message, m.InviteMsg):
            self.view_change.on_invite(message)
            return
        if isinstance(message, m.AcceptMsg):
            self.view_change.on_accept(message)
            return
        if isinstance(message, m.InitViewMsg):
            self.view_change.on_init_view(message)
            return
        if isinstance(message, m.WitnessInstallMsg):
            self.view_change.on_witness_install(message)
            return
        if isinstance(message, m.BufferMsg):
            self._handle_buffer_msg(message)
            return
        if isinstance(message, m.BufferAckMsg):
            if self.config.batch.enabled and self.config.batch.piggyback_liveness:
                # Acks prove the backup is alive; feed the detector so the
                # backup may skip its redundant heartbeat (batched mode).
                if message.mid in self.last_heard:
                    self.last_heard[message.mid] = self.sim.now
                    self.detect.heard(message.mid, sent_at=message.sent_at)
            if (
                self.reads is not None
                and message.lease_until is not None
                and message.viewid == self.cur_viewid
                and self.is_active_primary
            ):
                self._note_lease_grant(message.mid, message.lease_until)
            if self._witness_install_pending:
                # A witness confirmed its view install (acked_ts is 0; a
                # witness applies nothing) -- stop retransmitting to it.
                self._witness_install_pending.discard(message.mid)
            if (
                self.scale is not None
                and self.scale.ack_tree
                and not self.is_primary
                and self.status is Status.ACTIVE
                and message.viewid == self.cur_viewid
            ):
                # Ack-tree interior node: fold the child's subtree into
                # ours and forward upward after a coalescing delay.
                self._on_child_ack(message)
                return
            if self.is_active_primary and self.buffer is not None:
                self.buffer.on_ack(message)
            return
        if isinstance(message, m.ReadMsg):
            self._handle_read(message)
            return

        # Replies to calls we originated are consumed in any active state.
        if isinstance(message, m.ReplyMsg):
            self.caller.on_reply(message)
            return
        if isinstance(message, m.CallFailedMsg):
            self.caller.on_call_failed(message)
            return
        if isinstance(message, m.ViewChangedMsg):
            self.caller.on_view_changed(message)
            self.client_role.on_view_changed(message)
            return
        if isinstance(message, m.ViewProbeReplyMsg):
            self.caller.on_probe_reply(message)
            return
        if isinstance(message, m.QueryReplyMsg):
            self.server_role.on_query_reply(message)
            return

        # Everything else requires being the active primary (section 3.3:
        # "cohorts that are not active primaries reject messages sent to
        # them by other module groups").
        if not self.is_active_primary:
            self._reject(message, source)
            return

        if isinstance(message, m.CallMsg):
            self.server_role.on_call(message)
        elif isinstance(message, m.PrepareMsg):
            self.server_role.on_prepare(message)
        elif isinstance(message, m.CommitMsg):
            self.server_role.on_commit(message)
        elif isinstance(message, m.AbortMsg):
            self.server_role.on_abort(message)
        elif isinstance(message, m.SubactionAbortMsg):
            self.server_role.on_subaction_abort(message)
        elif isinstance(message, m.PrepareOkMsg):
            self.client_role.on_prepare_ok(message)
        elif isinstance(message, m.PrepareRefusedMsg):
            self.client_role.on_prepare_refused(message)
        elif isinstance(message, m.CommitAckMsg):
            self.client_role.on_commit_ack(message)
        elif isinstance(message, m.TxnRequestMsg):
            self.client_role.on_txn_request(message)
        elif isinstance(message, m.BeginTxnMsg):
            self.coordinator_role.on_begin(message)
        elif isinstance(message, m.FinishTxnMsg):
            self.coordinator_role.on_finish(message)
        elif isinstance(message, m.ClientProbeReplyMsg):
            self.coordinator_role.on_probe_reply(message)
        else:  # pragma: no cover - new message types must be wired here
            raise NotImplementedError(f"unhandled message {message!r}")

    def _reject(self, message, source: str) -> None:
        """Reject with current view info if we know it (section 3.3)."""
        call_id = getattr(message, "call_id", None)
        aid = getattr(message, "aid", None)
        reply_to = getattr(message, "reply_to", None) or getattr(
            message, "coordinator", None
        ) or source
        if isinstance(
            message,
            (m.CallMsg, m.PrepareMsg, m.CommitMsg, m.TxnRequestMsg),
        ):
            viewid, view = (None, None)
            if self.status is Status.ACTIVE:
                viewid, view = self.cur_viewid, self.cur_view
            self.send(
                reply_to,
                m.ViewChangedMsg(
                    call_id=call_id,
                    viewid=viewid,
                    view=view,
                    aid=aid,
                    groupid=self.mygroupid,
                ),
            )

    # ------------------------------------------------------------------
    # event records: primary-side add, backup-side apply
    # ------------------------------------------------------------------

    def add_record(self, record: EventRecord) -> Viewstamp:
        """Primary: buffer.add + history advance + local bookkeeping."""
        assert self.is_active_primary and self.buffer is not None
        viewstamp = self.buffer.add(record)
        self.history.advance(viewstamp.id, viewstamp.ts)
        self._record_bookkeeping(viewstamp, record, at_backup=False)
        if self.tracer is not None:
            self.tracer.emit(
                "record_added",
                node=self.node.node_id,
                group=self.mygroupid,
                mid=self.mymid,
                viewid=str(viewstamp.id),
                ts=viewstamp.ts,
                rtype=type(record).__name__,
                role="primary",
            )
        if self.config.storage_policy is not StableStoragePolicy.MINIMAL:
            # Section 4.2's hardening: "we might supply each cohort with a
            # universal power supply and have them write information to
            # nonvolatile storage in the background" -- UPS-backed NVRAM,
            # modelled as an immediate durable write off the critical path.
            self.stable.write_immediate("gstate", self._gstate_snapshot())
        return viewstamp

    def force_to(self, viewstamp: Optional[Viewstamp]) -> Future:
        assert self.is_active_primary and self.buffer is not None
        replica_force = self.buffer.force_to(viewstamp)
        if not self.config.force_to_stable:
            return replica_force
        # Conventional-system mode (section 3.7) / catastrophe hardening
        # (section 4.2): the force also blocks on a stable-storage write.
        stable_force = self.stable.write("log", self.history.entries())
        combined = Future(label=f"force+stable:{viewstamp}")
        pending = {"count": 2}

        def one_done(future: Future) -> None:
            if combined.done:
                return
            error = future.exception()
            if error is not None:
                combined.set_exception(error)
                return
            pending["count"] -= 1
            if pending["count"] == 0:
                combined.set_result(None)

        replica_force.add_done_callback(one_done)
        stable_force.add_done_callback(one_done)
        return combined

    def force_all(self) -> Future:
        """Force the entire buffer (Figure 2's coordinator step 2)."""
        assert self.buffer is not None
        return self.force_to(Viewstamp(self.cur_viewid, self.buffer.timestamp))

    def _record_bookkeeping(
        self, viewstamp: Viewstamp, record: EventRecord, at_backup: bool
    ) -> None:
        """State updates shared by primary add and backup apply."""
        if isinstance(record, CompletedCall):
            self.pending.setdefault(record.aid, {})[viewstamp] = record
        elif isinstance(record, Committing):
            self.committing[record.aid] = (record.plist, record.pset_pairs)
        elif isinstance(record, Committed):
            self.outcomes[record.aid] = "committed"
            if at_backup:
                self._backup_install(record)
            self.pending.pop(record.aid, None)
        elif isinstance(record, Aborted):
            self.outcomes[record.aid] = "aborted"
            self.pending.pop(record.aid, None)
            self.committing.pop(record.aid, None)
        elif isinstance(record, Done):
            self.committing.pop(record.aid, None)
        elif isinstance(record, ViewEdit):
            self.cur_view = View(primary=self.cur_view.primary, backups=record.backups)
        elif isinstance(record, NewView):
            # At the primary the record *is* a snapshot of current state, so
            # adding it is a no-op here; at a backup the view-change
            # controller installs it before ordinary application begins, and
            # retransmissions are filtered by applied_ts.
            if at_backup:
                raise AssertionError("newview records are installed, not applied")

    def _backup_install(self, record: Committed) -> None:
        """Apply a commit at a backup: install tentative versions from the
        stored completed-call records (section 3.3's compromise: records are
        stored until the commit/abort arrives, then performed)."""
        calls = self.pending.get(record.aid, {})
        allowed = {
            pair.vs for pair in record.pset_pairs if pair.groupid == self.mygroupid
        }
        final_values = {}
        for viewstamp in sorted(calls):
            if allowed and viewstamp not in allowed:
                continue  # orphaned subaction (section 3.6); skip its writes
            for effect in calls[viewstamp].effects:
                if effect.kind != WRITE or not effect.writes:
                    continue
                final_values[effect.uid] = effect.writes[-1][1]
        # One version bump per object per transaction, matching the
        # primary's install (LockManager.install).
        for uid, value in final_values.items():
            obj = self.store.ensure(uid)
            obj.base = value
            obj.version += 1

    # ------------------------------------------------------------------
    # backup: buffer application
    # ------------------------------------------------------------------

    def _handle_buffer_msg(self, msg: m.BufferMsg) -> None:
        if self.is_witness:
            return  # witnesses hold no event buffer (repro.scale)
        if self.status is Status.UNDERLING:
            self.view_change.on_buffer_while_underling(msg)
            return
        if self.status is not Status.ACTIVE:
            return
        if msg.viewid != self.cur_viewid or self.is_primary:
            return  # stale primary's traffic, or ours echoed back
        if (
            self.config.batch.enabled
            and self.config.batch.piggyback_liveness
            and self.cur_view.primary in self.last_heard
        ):
            # Buffer traffic from the primary is proof of life (batched
            # mode stamps sent_at, so the RTT estimator gets a sample too).
            self.last_heard[self.cur_view.primary] = self.sim.now
            self.detect.heard(self.cur_view.primary, sent_at=msg.sent_at)
        self._apply_buffer_records(msg.records)
        if self.reads is not None and self.applied_ts >= msg.primary_ts:
            # Caught up to the primary's high-water mark as of this send:
            # the applied prefix is fresh (modulo one network delay, which
            # the staleness bound's documentation accounts for).
            self.reads.mark_fresh()
        self._ack_buffer()

    def _apply_buffer_records(self, records) -> None:
        for ts, record in records:
            if ts != self.applied_ts + 1:
                if ts <= self.applied_ts:
                    continue  # retransmission of something we have
                break  # gap; cumulative ack will trigger a resend
            self.applied_ts = ts
            viewstamp = Viewstamp(self.cur_viewid, ts)
            self.history.advance(self.cur_viewid, ts)
            self._record_bookkeeping(viewstamp, record, at_backup=True)
            if self.tracer is not None:
                self.tracer.emit(
                    "record_added",
                    node=self.node.node_id,
                    group=self.mygroupid,
                    mid=self.mymid,
                    viewid=str(self.cur_viewid),
                    ts=ts,
                    rtype=type(record).__name__,
                    role="backup",
                )
            if self.config.storage_policy is StableStoragePolicy.ALL:
                self.stable.write_immediate("gstate", self._gstate_snapshot())

    def _ack_buffer(self) -> None:
        """Acknowledge applied records; coalesced in batched mode.

        Unbatched, every BufferMsg is acked individually (the paper's
        implicit scheme).  Batched, acks are cumulative anyway, so one ack
        per coalescing tick answers every BufferMsg applied during it.
        """
        batch = self.config.batch
        if not batch.enabled or batch.flush_interval <= 0:
            self._send_ack_now()
            return
        self._acks_pending += 1
        if self._ack_timer_armed:
            return
        self._ack_timer_armed = True
        epoch = self._epoch
        viewid = self.cur_viewid

        def fire() -> None:
            self._ack_timer_armed = False
            coalesced, self._acks_pending = self._acks_pending, 0
            if (
                self._epoch != epoch
                or self.status is not Status.ACTIVE
                or self.cur_viewid != viewid
                or self.is_primary
            ):
                return
            if self.tracer is not None:
                self.tracer.emit(
                    "ack_coalesce",
                    node=self.node.node_id,
                    group=self.mygroupid,
                    mid=self.mymid,
                    coalesced=coalesced,
                    acked_ts=self.applied_ts,
                )
            self._send_ack_now()

        self.set_timer(batch.flush_interval, fire)

    def _send_ack_now(self) -> None:
        batch = self.config.batch
        dest = self.cur_view.primary
        agg: Tuple[Tuple[int, int], ...] = ()
        if self.scale is not None and self.scale.ack_tree:
            dest, agg = self._ack_tree_route()
        sent_at = None
        if batch.enabled and batch.piggyback_liveness:
            sent_at = self.sim.now
            self._last_liveness_sent[dest] = self.sim.now
        lease_until = None
        if (
            self.reads is not None
            and self.status is Status.ACTIVE
            and dest == self.cur_view.primary
        ):
            # Every ack renews the read lease; under steady buffer traffic
            # the explicit heartbeat grants are pure backup.  (Tree-routed
            # acks skip the grant: the primary would never see it.)
            lease_until = self.reads.make_promise(dest)
        self.send_mid(
            dest,
            m.BufferAckMsg(
                viewid=self.cur_viewid,
                acked_ts=self.applied_ts,
                mid=self.mymid,
                sent_at=sent_at,
                lease_until=lease_until,
                agg=agg,
            ),
        )

    # -- ack trees (repro.scale) ---------------------------------------------

    def _ack_tree_for_view(self):
        """The fan-in tree for the current view, cached per view."""
        key = (self.cur_viewid, self.cur_view.backups)
        if self._ack_tree_key != key:
            from repro.scale import AckTree

            self._ack_tree = AckTree(
                self.cur_view.primary,
                self._storage_backups(self.cur_view.backups),
                self.scale.ack_fanout,
            )
            self._ack_tree_key = key
        return self._ack_tree

    def _ack_tree_route(self) -> Tuple[int, Tuple[Tuple[int, int], ...]]:
        """Destination and aggregated (mid, acked_ts) pairs for our ack."""
        tree = self._ack_tree_for_view()
        pairs = {self.mymid: self.applied_ts}
        if self._ack_children_viewid == self.cur_viewid:
            for mid, ts in self._ack_children.items():
                if ts > pairs.get(mid, -1):
                    pairs[mid] = ts
        parent = tree.parent(self.mymid)
        if parent != self.cur_view.primary and self._is_suspect(parent):
            # A dead interior node must not orphan its subtree: bypass it.
            parent = self.cur_view.primary
        return parent, tuple(sorted(pairs.items()))

    def _on_child_ack(self, msg: m.BufferAckMsg) -> None:
        """Ack-tree interior node: fold a child's (aggregated) ack into ours
        and forward the merged subtree upward after ``ack_delay``."""
        if self.cur_view is None:
            return
        if self._ack_children_viewid != self.cur_viewid:
            self._ack_children = {}
            self._ack_children_viewid = self.cur_viewid
        pairs = msg.agg if msg.agg else ((msg.mid, msg.acked_ts),)
        for mid, ts in pairs:
            if mid == self.mymid:
                continue
            if ts > self._ack_children.get(mid, -1):
                self._ack_children[mid] = ts
        if self._ack_fwd_armed:
            return
        self._ack_fwd_armed = True
        epoch = self._epoch
        viewid = self.cur_viewid

        def forward() -> None:
            self._ack_fwd_armed = False
            if (
                self._epoch != epoch
                or self.status is not Status.ACTIVE
                or self.cur_viewid != viewid
                or self.is_primary
            ):
                return
            if self.tracer is not None:
                self.tracer.emit(
                    "ack_tree",
                    node=self.node.node_id,
                    group=self.mygroupid,
                    mid=self.mymid,
                    children=len(self._ack_children),
                    acked_ts=self.applied_ts,
                )
            self._send_ack_now()

        self.set_timer(self.scale.ack_delay, forward)

    # ------------------------------------------------------------------
    # queries (section 3.4)
    # ------------------------------------------------------------------

    def _handle_query(self, msg: m.QueryMsg) -> None:
        outcome, pset_pairs = self.query_outcome(msg.aid)
        if outcome == "unknown":
            return  # stay silent; another cohort may know
        if outcome == "active":
            # Section 3.5: before letting a transaction look alive forever,
            # the coordinator-server checks that its client still is.
            self.coordinator_role.on_query_for_active(msg.aid)
        self.send(
            msg.reply_to,
            m.QueryReplyMsg(aid=msg.aid, outcome=outcome, pset_pairs=pset_pairs),
        )

    def query_outcome(self, aid: Aid) -> Tuple[str, Tuple]:
        """What this cohort knows about *aid* (committed/aborted/active/unknown).

        Safety notes (see DESIGN.md): "committed" is answered only from the
        outcomes table -- never from a raw committing record at a backup,
        because that record may not yet be known to a majority.  The
        "aborted" inference for a transaction born in an older view of our
        own group is sound because a committing record forced in that view
        is guaranteed to survive into our current state.
        """
        known = self.outcomes.get(aid)
        if known is not None:
            pairs: Tuple = ()
            if known == "committed" and aid in self.committing:
                pairs = self.committing[aid][1]
            return known, pairs
        if aid.groupid == self.mygroupid and self.status is Status.ACTIVE:
            if aid in self.committing:
                return "unknown", ()  # decision pending / being resumed
            if not self.is_primary:
                # Only the primary may make the inferences below: a backup
                # cannot see an in-flight (re-)coordination of this aid at
                # the primary, so its "aborted" inference could contradict a
                # commit the primary is about to make.
                return "unknown", ()
            if self.client_role.is_running(aid) or self.coordinator_role.is_active(aid):
                return "active", ()
            if aid.viewid < self.cur_viewid:
                # Born in an older view of our group with no surviving
                # committing record: it can never commit (the force that
                # precedes commit messages guarantees survival).
                return "aborted", ()
            if aid.viewid == self.cur_viewid and self.client_role.knows(aid):
                return "aborted", ()  # ran here and is gone -> it aborted
        return "unknown", ()

    def _handle_view_probe(self, msg: m.ViewProbeMsg) -> None:
        active = self.status is Status.ACTIVE
        self.send(
            msg.reply_to,
            m.ViewProbeReplyMsg(
                groupid=self.mygroupid,
                viewid=self.cur_viewid if active else None,
                view=self.cur_view if active else None,
                active=active,
            ),
        )

    # ------------------------------------------------------------------
    # read serving path (repro.reads; beyond the paper)
    # ------------------------------------------------------------------

    def _emit_read_event(self, kind: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                kind,
                node=self.node.node_id,
                group=self.mygroupid,
                mid=self.mymid,
                **data,
            )

    def _note_lease_grant(self, mid: int, until: float) -> None:
        """Primary: a grant arrived piggybacked on ack/heartbeat traffic."""
        reads = self.reads
        reads.record_grant(mid, until)
        if not reads.was_valid and reads.lease_valid(self.cur_view):
            reads.was_valid = True
            self._emit_read_event(
                "lease_grant",
                viewid=str(self.cur_viewid),
                until=reads.lease_until(self.cur_view),
            )

    def _note_lease_lapse(self, reason: str) -> None:
        """Primary-side lease validity ended (expiry or stepping down)."""
        reads = self.reads
        if reads is not None and reads.was_valid:
            self._emit_read_event(
                "lease_expire", viewid=str(self.cur_viewid), reason=reason
            )
        if reads is not None:
            reads.reset_grants()

    def _handle_read(self, msg: m.ReadMsg) -> None:
        def reject(reason: str, **extra) -> None:
            viewid, view = (None, None)
            if self.status is Status.ACTIVE and self.up_to_date:
                viewid, view = self.cur_viewid, self.cur_view
            self.send(
                msg.reply_to,
                m.ReadRejectMsg(
                    request_id=msg.request_id,
                    reason=reason,
                    groupid=self.mygroupid,
                    viewid=viewid,
                    view=view,
                    **extra,
                ),
            )

        reads = self.reads
        if reads is None:
            reject("reads_disabled")
            return
        if self.status is not Status.ACTIVE or not self.up_to_date:
            reject("not_active")
            return
        if self.is_witness:
            # Witnesses hold no object state to serve (repro.scale).
            reject("not_active")
            return
        if self.is_primary:
            if not reads.lease_valid(self.cur_view):
                if reads.was_valid:
                    reads.was_valid = False
                    self._emit_read_event(
                        "lease_expire", viewid=str(self.cur_viewid), reason="expired"
                    )
                reject("no_lease")
                return
            # Linearizable local read: the lease guarantees no other
            # primary can have committed a newer value (docs/READS.md).
            obj = self.store.get(msg.uid) if msg.uid in self.store else None
            ts = self.buffer.timestamp if self.buffer is not None else 0
            self._emit_read_event(
                "lease_read", viewid=str(self.cur_viewid), uid=msg.uid
            )
            self.metrics.incr(f"lease_reads:{self.mygroupid}")
            self.send(
                msg.reply_to,
                m.ReadReplyMsg(
                    request_id=msg.request_id,
                    uid=msg.uid,
                    value=obj.base if obj is not None else None,
                    viewstamp=Viewstamp(self.cur_viewid, ts),
                    mode="lease",
                    staleness=0.0,
                    groupid=self.mygroupid,
                ),
            )
            return
        if not reads.cfg.backup_reads:
            reject("not_active")  # carries view info: driver redirects
            return
        staleness = reads.staleness()
        bound = msg.max_staleness
        if bound is None:
            bound = reads.cfg.default_max_staleness
        if staleness > bound:
            reject("too_stale", staleness=staleness)
            return
        obj = self.store.get(msg.uid) if msg.uid in self.store else None
        self._emit_read_event(
            "stale_read",
            viewid=str(self.cur_viewid),
            uid=msg.uid,
            staleness=staleness,
        )
        self.metrics.incr(f"backup_reads:{self.mygroupid}")
        self.send(
            msg.reply_to,
            m.ReadReplyMsg(
                request_id=msg.request_id,
                uid=msg.uid,
                value=obj.base if obj is not None else None,
                viewstamp=Viewstamp(self.cur_viewid, self.applied_ts),
                mode="backup",
                staleness=staleness,
                groupid=self.mygroupid,
            ),
        )

    # ------------------------------------------------------------------
    # liveness: "I'm alive" (section 4)
    # ------------------------------------------------------------------

    def _start_heartbeat(self) -> None:
        jitter = self.runtime.sim.rng.fork(f"hb/{self.address}").uniform(0.0, 1.0)
        self.set_timer(self.config.im_alive_interval * (0.5 + jitter), self._heartbeat)

    def _heartbeat(self) -> None:
        batch = self.config.batch
        suppress = batch.enabled and batch.piggyback_liveness
        evidence: Tuple[Tuple[int, float], ...] = ()
        if self._gossip_rng is not None:
            # Gossip mode (repro.scale): beacon a seeded-random fan-out of
            # peers, carrying recent liveness evidence; the epidemic relay
            # replaces the all-peers broadcast.
            pairs = self._gossip_pairs()
            evidence = self._gossip_evidence()
            if evidence and self.tracer is not None:
                self.tracer.emit(
                    "gossip_relay",
                    node=self.node.node_id,
                    group=self.mygroupid,
                    mid=self.mymid,
                    targets=sorted(peer for peer, _addr in pairs),
                    evidence=len(evidence),
                )
        else:
            pairs = self.configuration
        for peer, address in pairs:
            if peer == self.mymid:
                continue
            if suppress:
                last = self._last_liveness_sent.get(peer)
                if (
                    last is not None
                    and self.sim.now - last < 0.5 * self.config.im_alive_interval
                ):
                    # Buffer traffic to this peer recently carried sent_at;
                    # the explicit heartbeat would be redundant.
                    continue
            lease_until = None
            primary_ts = None
            if self.reads is not None and self.status is Status.ACTIVE:
                if self.is_primary:
                    # Stamp the buffer's high-water mark so idle backups can
                    # confirm their applied prefix is current (freshness).
                    if self.buffer is not None:
                        primary_ts = self.buffer.timestamp
                elif peer == self.cur_view.primary:
                    # Grant/renew the read lease to our primary: the beacon
                    # doubles as lease traffic (no extra messages).
                    lease_until = self.reads.make_promise(peer)
            self.send(
                address,
                m.ImAliveMsg(
                    mid=self.mymid,
                    viewid=self.cur_viewid,
                    sent_at=self.sim.now,
                    lease_until=lease_until,
                    primary_ts=primary_ts,
                    evidence=evidence,
                ),
            )
        if self.is_active_primary and self._witness_install_pending:
            self._resend_witness_installs()
        if self.status is Status.ACTIVE:
            self._liveness_sweep()
        self.set_timer(self.config.im_alive_interval, self._heartbeat)

    def _gossip_pairs(self):
        """The (peer, address) fan-out this gossip round beacons."""
        scale = self.scale
        peers = [pair for pair in self.configuration if pair[0] != self.mymid]
        k = min(scale.gossip_fanout, len(peers))
        if k >= len(peers):
            return peers
        chosen = self._gossip_rng.sample(peers, k)
        if (
            self.reads is not None
            and self.status is Status.ACTIVE
            and self.cur_view is not None
            and not self.is_primary
        ):
            primary = self.cur_view.primary
            if all(peer != primary for peer, _addr in chosen):
                # Lease grants ride the beacon: the primary must keep
                # hearing us directly even on rounds the epidemic fan-out
                # happens to miss it.
                chosen.append((primary, self.peer_address(primary)))
        return chosen

    def _gossip_evidence(self) -> Tuple[Tuple[int, float], ...]:
        """Fresh (mid, heard_at) liveness evidence to relay this round."""
        horizon = (
            self.scale.evidence_horizon_intervals * self.config.im_alive_interval
        )
        cutoff = self.sim.now - horizon
        evidence = []
        for peer, _addr in self.configuration:
            if peer == self.mymid:
                continue
            heard = self.detect.last_heard(peer)
            if heard > 0.0 and heard >= cutoff:
                evidence.append((peer, heard))
        return tuple(evidence)

    def _resend_witness_installs(self) -> None:
        """Retransmit unconfirmed witness view installs (loss recovery)."""
        pending = [
            peer
            for peer in sorted(self._witness_install_pending)
            if peer in self.cur_view
        ]
        self._witness_install_pending = set(pending)
        for peer in pending:
            self.send_mid(
                peer,
                m.WitnessInstallMsg(viewid=self.cur_viewid, view=self.cur_view),
            )

    def _handle_im_alive(self, msg: m.ImAliveMsg) -> None:
        previously_silent = self._is_suspect(msg.mid)
        self.last_heard[msg.mid] = self.sim.now
        self.detect.heard(msg.mid, sent_at=msg.sent_at)
        if msg.evidence:
            # Gossip (repro.scale): relayed liveness evidence.  Relay hops
            # are excluded from the RTT estimator by design; the interval
            # EWMA is fed origin-time deltas (see heard_relayed).
            for peer, heard_at in msg.evidence:
                if peer == self.mymid or peer == msg.mid:
                    continue
                self.detect.heard_relayed(peer, heard_at)
                if heard_at > self.last_heard.get(peer, 0.0):
                    self.last_heard[peer] = heard_at
        if self.reads is not None and msg.viewid == self.cur_viewid:
            if msg.lease_until is not None and self.is_active_primary:
                self._note_lease_grant(msg.mid, msg.lease_until)
            if (
                msg.primary_ts is not None
                and self.status is Status.ACTIVE
                and not self.is_primary
                and self.cur_view is not None
                and msg.mid == self.cur_view.primary
                and self.applied_ts >= msg.primary_ts
            ):
                # Our applied prefix matches the primary's buffer high-water
                # mark as of the beacon: the prefix is fresh now.
                self.reads.mark_fresh()
        if (
            self.status is Status.ACTIVE
            and previously_silent
            and msg.mid not in self.cur_view
        ):
            # Communication with an excluded cohort resumed (section 4:
            # "...or if it notices that it is communicating with a cohort
            # that it could not communicate with previously").  The sweep
            # prefers a unilateral re-add when that is enabled.
            self._liveness_sweep()

    def _is_suspect(self, mid: int) -> bool:
        return self.detect.is_suspect(mid)

    def _on_suspicion_transition(self, mid: int, suspected: bool) -> None:
        """The failure detector changed its mind about a peer."""
        if suspected:
            self.metrics.incr(f"detector_suspicions:{self.mygroupid}")
        self.runtime.ledger.record_detector_event(
            kind="suspect" if suspected else "trust",
            groupid=self.mygroupid,
            observer=self.mymid,
            target=mid,
            at=self.sim.now,
        )

    def _liveness_sweep(self) -> None:
        view_suspects = [
            peer for peer in self.cur_view.members
            if peer != self.mymid and self._is_suspect(peer)
        ]
        outside_live = [
            peer for peer, _addr in self.configuration
            if peer not in self.cur_view and not self._is_suspect(peer)
        ]
        if not view_suspects and not outside_live:
            self._change_pending_since = None
            return
        if self.config.unilateral_edits and self.is_primary:
            if self._try_unilateral_edit(view_suspects, outside_live):
                self._change_pending_since = None
                return
        self._on_membership_signal()

    def _on_membership_signal(self) -> None:
        """A view change appears to be needed (the figure's "change" msg)."""
        if self.status is not Status.ACTIVE:
            return
        now = self.sim.now
        if self._change_pending_since is None:
            self._change_pending_since = now
        if self.config.ordered_managers:
            # Section 4.1: become a manager only if all higher-priority
            # (lower-mid) cohorts appear inaccessible -- unless the need has
            # persisted, in which case manage regardless (liveness fallback).
            higher = [
                peer for peer, _addr in self.configuration if peer < self.mymid
            ]
            deferred = any(not self._is_suspect(peer) for peer in higher)
            waited = now - self._change_pending_since
            if deferred and waited < 2.5 * self.config.im_alive_interval:
                return
        self._change_pending_since = None
        self.view_change.become_manager()

    def note_change_needed(self) -> None:
        """Internal failure signal (e.g. an abandoned force)."""
        if self.status is Status.ACTIVE:
            self.view_change.become_manager()

    # -- unilateral edits (section 4.1, experiment E12) ----------------------

    def _try_unilateral_edit(self, view_suspects, outside_live) -> bool:
        new_backups = set(self.cur_view.backups)
        for peer in view_suspects:
            if peer != self.cur_view.primary:
                new_backups.discard(peer)
        for peer in outside_live:
            new_backups.add(peer)
        if len(new_backups) + 1 < majority(self.config_size):
            # Losing the majority: the primary must stop working on
            # transactions (section 4.1) -- full view change instead.
            return False
        if new_backups == set(self.cur_view.backups):
            return True  # only the primary is suspect of itself; nothing to do
        edited = tuple(sorted(new_backups))
        self.add_record(ViewEdit(backups=edited))
        self.buffer.set_backups(self._storage_backups(edited))
        self.metrics.incr("unilateral_view_edits")
        self.buffer.flush()
        return True

    # ------------------------------------------------------------------
    # status transitions (used by the view-change controller)
    # ------------------------------------------------------------------

    def leave_active(self) -> None:
        """Stop transaction processing; abandon the buffer and calls."""
        self._epoch += 1
        self._note_lease_lapse("left_active")
        if self.buffer is not None:
            self.buffer.close()
        self.caller.abandon_all()
        self.server_role.on_leave_active()
        self.client_role.on_leave_active()
        self.coordinator_role.on_leave_active()

    def _buffer_send(self, mid: int, message) -> None:
        """Buffer transmission hook: notes liveness-carrying sends."""
        if self.config.batch.enabled and self.config.batch.piggyback_liveness:
            self._last_liveness_sent[mid] = self.sim.now
        self.send_mid(mid, message)

    def _open_buffer(self) -> None:
        batch = self.config.batch
        trace = None
        if self.tracer is not None and batch.enabled:
            tracer = self.tracer

            def trace(kind: str, **data) -> None:
                tracer.emit(
                    kind,
                    node=self.node.node_id,
                    group=self.mygroupid,
                    mid=self.mymid,
                    **data,
                )

        self.buffer = CommunicationBuffer(
            viewid=self.cur_viewid,
            backups=self._storage_backups(self.cur_view.backups),
            configuration_size=self.config_size,
            send=self._buffer_send,
            set_timer=self.set_timer,
            on_force_failure=self.note_change_needed,
            force_timeout=self.config.force_timeout,
            max_batch=batch.max_batch,
            retain_all=self.config.unilateral_edits,
            batch_enabled=batch.enabled,
            flush_delay=batch.flush_interval,
            pipeline_depth=batch.pipeline_depth,
            clock=lambda: self.sim.now,
            trace=trace,
        )

    def _start_flush_loop(self) -> None:
        epoch = self._epoch

        def tick() -> None:
            if self._epoch != epoch or not self.is_active_primary:
                return
            if self.buffer is not None:
                self.buffer.flush()
            self.set_timer(self.config.flush_interval, tick)

        self.set_timer(self.config.flush_interval, tick)

    def activate_as_primary(self, viewid: ViewId, view: View) -> None:
        """Complete ``start_view`` (Figure 5) once cur_viewid is stable.

        The caller (view-change controller) has already set cur_view,
        cur_viewid, opened the history entry and persisted the viewid.
        """
        self._epoch += 1
        self.status = Status.ACTIVE
        self.up_to_date = True
        self.applied_ts = 0
        if self.reads is not None:
            # A new primary starts leaseless: grants must come from the new
            # view's backups.  Its own state is trivially fresh.
            self.reads.reset_grants()
            self.reads.mark_fresh()
        if self.tracer is not None:
            # Emitted before the newview record is added so the
            # single-primary monitor sees the activation even if the
            # history rejects the record (the very bug it exists to catch).
            self.tracer.emit(
                "primary_activated",
                node=self.node.node_id,
                group=self.mygroupid,
                mid=self.mymid,
                viewid=str(viewid),
                members=sorted(view.members),
            )
        self._open_buffer()
        newview = NewView(
            view=view,
            history_entries=self.history.entries(),
            objects=self.store.snapshot(),
            pending=tuple(
                (viewstamp, record)
                for aid in sorted(self.pending)
                for viewstamp, record in sorted(self.pending[aid].items())
            ),
            outcomes=dict(self.outcomes),
            committing=dict(self.committing),
        )
        self.add_record(newview)
        self._rematerialize_locks()
        self.server_role.on_become_primary()
        self.client_role.on_become_primary()
        self._start_flush_loop()
        self.buffer.flush()
        if self._witnesses:
            # Witnesses receive no buffer traffic, so the formed view is
            # announced to them explicitly; retransmitted from the
            # heartbeat loop until each confirms (repro.scale).
            self._witness_install_pending = {
                peer
                for peer in view.members
                if peer != self.mymid and peer in self._witnesses
            }
            for peer in sorted(self._witness_install_pending):
                self.send_mid(
                    peer, m.WitnessInstallMsg(viewid=viewid, view=view)
                )
        self.metrics.incr(f"views_started:{self.mygroupid}")
        self.runtime.ledger.record_view_change(self.mygroupid, viewid, self.mymid)
        self.sim.trace(
            "view_started", group=self.mygroupid, viewid=str(viewid), primary=self.mymid
        )

    def install_newview(self, viewid: ViewId, record: NewView) -> None:
        """Underling: initialize state from a newview record (Figure 5)."""
        self._epoch += 1
        self.cur_viewid = viewid
        self.cur_view = record.view
        self.history = History(record.history_entries)
        self.history.advance(viewid, 1)  # the newview record itself is ts=1
        self.applied_ts = 1
        self.store.restore(record.objects)
        self.lockmgr.reset()
        self.pending = {}
        for viewstamp, call_record in record.pending:
            self.pending.setdefault(call_record.aid, {})[viewstamp] = call_record
        self.outcomes = dict(record.outcomes)
        self.committing = dict(record.committing)
        self.up_to_date = True
        self.status = Status.ACTIVE
        self.buffer = None
        if self.reads is not None:
            # The newview record is a snapshot of the primary's state: our
            # prefix is fresh as of installation.
            self.reads.reset_grants()
            self.reads.mark_fresh()
        if self.tracer is not None:
            self.tracer.emit(
                "newview_installed",
                node=self.node.node_id,
                group=self.mygroupid,
                mid=self.mymid,
                viewid=str(viewid),
            )
        self._ack_buffer()
        self.metrics.incr(f"views_joined:{self.mygroupid}")

    def install_as_witness(self, viewid: ViewId, view: View) -> None:
        """Witness: adopt a formed view (repro.scale).

        There is no state to install -- a witness holds no event buffer and
        applies no records -- so adoption is just the view pointer flip the
        storage path performs as part of ``install_newview``."""
        self._epoch += 1
        self.cur_viewid = viewid
        self.cur_view = view
        self.up_to_date = True
        self.status = Status.ACTIVE
        self.buffer = None
        self.applied_ts = 0
        if self.reads is not None:
            self.reads.reset_grants()
        if self.tracer is not None:
            self.tracer.emit(
                "newview_installed",
                node=self.node.node_id,
                group=self.mygroupid,
                mid=self.mymid,
                viewid=str(viewid),
                witness=True,
            )
        self.metrics.incr(f"views_joined:{self.mygroupid}")

    def _rematerialize_locks(self) -> None:
        """New primary: rebuild lock/tentative state from pending records.

        Section 3.7 requires that locks survive a view change exactly when
        their completed-call records do.  Records reflect locks that were
        granted under 2PL, so direct materialization cannot conflict.
        """
        self.lockmgr.reset()
        for aid in self.pending:
            for viewstamp in sorted(self.pending[aid]):
                for effect in self.pending[aid][viewstamp].effects:
                    info = self.lockmgr.materialize(effect.uid, aid, effect.kind)
                    for subaction, value in effect.writes:
                        from repro.txn.objects import TentativeWrite

                        info.writes.append(
                            TentativeWrite(subaction=subaction, value=value)
                        )

    def _gstate_snapshot(self) -> dict:
        """For the PRIMARY_GSTATE/ALL stable-storage policies (section 4.2)."""
        return {
            "objects": self.store.snapshot(),
            "outcomes": dict(self.outcomes),
            "committing": dict(self.committing),
            "history": self.history.entries(),
            "pending": tuple(
                (viewstamp, record)
                for aid in sorted(self.pending)
                for viewstamp, record in sorted(self.pending[aid].items())
            ),
        }

    # ------------------------------------------------------------------
    # crash / recovery (sections 1, 4)
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        self._epoch += 1
        self.status = Status.UNDERLING  # placeholder; node is down anyway
        self.up_to_date = False
        if self.reads is not None:
            self.reads.reset_grants()
        if self.buffer is not None:
            self.buffer.close()
            self.buffer = None
        # Volatile scale state dies with the process (repro.scale).
        self._ack_children = {}
        self._ack_children_viewid = None
        self._ack_fwd_armed = False
        self._witness_install_pending = set()

    def on_recover(self) -> None:
        """Section 4: initialize up_to_date false, max_viewid from stable
        storage, then run a view change as manager."""
        self._epoch += 1
        self.up_to_date = False
        self.cur_viewid = self.stable.read("cur_viewid")
        self.cur_view = None
        self.max_viewid = self.cur_viewid
        self.history = History([Viewstamp(self.cur_viewid, 0)])
        self.applied_ts = 0
        self.store = ObjectStore()
        for uid, value in self.spec.initial_objects().items():
            self.store.create(uid, value)
        self.lockmgr = LockManager(self.store)
        self.pending = {}
        self.outcomes = {}
        self.committing = {}
        self.cache = ClientCache()
        self.caller = RemoteCaller(self)
        # Call round-trip history died with the process.  Last-heard times
        # within one suspect window still count as liveness evidence, but
        # anything older is aged out: after a long downtime a pre-crash
        # heartbeat (and the loss-stretched cadence learned from it) must
        # not make this cohort treat a dead peer as live.
        cutoff = self.sim.now - self.config.suspect_timeout()
        self.detect.age_out(cutoff)
        for peer, heard_at in self.last_heard.items():
            if 0.0 < heard_at < cutoff:
                self.last_heard[peer] = 0.0
        self.rtt.reset()
        if self.reads is not None:
            # Promise state was volatile: report a conservative full-duration
            # residue at the next view change (a promise made just before
            # the crash could still be outstanding even if recovery was
            # quick).  Grants held as primary are simply gone.
            self.reads.reset_grants()
            self.reads.promise_residue()
        self.server_role.reset()
        self.client_role.reset()
        self.coordinator_role.reset()
        stable_gstate = None
        if self.config.storage_policy is not StableStoragePolicy.MINIMAL:
            stable_gstate = self.stable.read("gstate")
        if stable_gstate is not None:
            self.store.restore(stable_gstate["objects"])
            self.outcomes = dict(stable_gstate["outcomes"])
            self.committing = dict(stable_gstate["committing"])
            self.history = History(stable_gstate["history"])
            for viewstamp, call_record in stable_gstate.get("pending", ()):
                self.pending.setdefault(call_record.aid, {})[viewstamp] = call_record
            self.up_to_date = True
        self._start_heartbeat()
        self.view_change.reset()
        self.set_timer(
            self.config.im_alive_interval, self.view_change.become_manager
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cohort({self.address}, {self.status.value}, view={self.cur_viewid}, "
            f"primary={self.is_primary})"
        )
