"""Client-side transaction processing (paper Figure 2, sections 3.1, 3.5-3.6).

The active primary of a client group creates transactions, makes their
remote calls, and coordinates two-phase commit.  Transaction *programs* are
generator functions registered on the group::

    def transfer(txn, src, dst, amount):
        yield txn.call("bank", "withdraw", src, amount)
        yield txn.call("bank", "deposit", dst, amount)
        return "ok"

- A reply merges the call's pset pairs into the transaction's pset.
- No reply after probes aborts the transaction -- unless the program opted
  into subactions (section 3.6), in which case only the call's subaction
  aborts and the call is retried as a new subaction.
- At commit, the primary runs 2PC: prepare (with the pset) to every
  participant, then a committing record forced to the backups, then commit
  messages, then a done record once all acknowledge.  "User code can
  continue running as soon as the committing record has been forced."
- A view change at the client group auto-aborts its active transactions;
  a new primary resumes phase two for surviving committing records.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Set, Tuple

from repro.core import messages as m
from repro.core.calls import CallAborted
from repro.core.events import Aborted, Committing, Done
from repro.sim.errors import CancelledError
from repro.sim.future import Future
from repro.txn.ids import Aid, CallId
from repro.txn.pset import PSet

_RETRYABLE_REASONS = ("no reply", "duplicate across view change", "too many view")
_MAX_SUBACTION_RETRIES = 3
_MAX_PREPARE_ROUNDS = 5


class Transaction:
    """Handle passed to a transaction program at the client primary."""

    def __init__(self, role: "ClientRole", aid: Aid, use_subactions: bool):
        self._role = role
        self.aid = aid
        self.pset = PSet()
        self.use_subactions = use_subactions
        self.aborted_subactions: Set[int] = set()
        self._attempt_counter = 0
        self._call_counter = 0
        self.phase = "running"  # running | preparing | committing | done

    def call(self, groupid: str, proc: str, *args: Any) -> Future:
        """Make a remote call; resolves with the call's result."""
        self._call_counter += 1
        return self._role._make_call(self, groupid, proc, tuple(args), retries_left=(
            _MAX_SUBACTION_RETRIES if self.use_subactions else 0
        ))

    def next_attempt_id(self, base_seq: int) -> CallId:
        self._attempt_counter += 1
        return CallId(aid=self.aid, seq=base_seq, subaction=self._attempt_counter)

    def abort(self, reason: str = "aborted by program") -> None:
        raise CallAborted(reason)


@dataclasses.dataclass
class _RunningTxn:
    txn: Transaction
    future: Future  # resolves to (outcome, result)
    prepare_round: int = 0
    prepare_deadline: Optional[float] = None
    prepare_timer: Any = None
    prepare_ok: Dict[str, bool] = dataclasses.field(default_factory=dict)
    commit_waiting: Set[str] = dataclasses.field(default_factory=set)
    commit_timer: Any = None
    result: Any = None


class ClientRole:
    """Figure 2 behaviour, hosted by a cohort."""

    def __init__(self, cohort):
        self.cohort = cohort
        self._txns: Dict[Aid, _RunningTxn] = {}
        self._created: Set[Aid] = set()
        self._seq = 0
        self._request_replies: Dict[Tuple[str, int], m.TxnOutcomeMsg] = {}
        self._requests_in_progress: Set[Tuple[str, int]] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        self._txns.clear()
        self._created.clear()
        self._request_replies.clear()
        self._requests_in_progress.clear()

    def on_leave_active(self) -> None:
        """View change: the group's transactions abort automatically."""
        txns, self._txns = self._txns, {}
        for state in txns.values():
            state.txn.phase = "done"
            self._cancel_timers(state)
            if not state.future.done:
                if self.cohort.committing.get(state.txn.aid) is not None:
                    state.future.set_result(("unknown", None))
                else:
                    self.cohort.runtime.ledger.record_abort(
                        state.txn.aid, "view change at client group"
                    )
                    state.future.set_result(("aborted", None))
        self._request_replies.clear()
        self._requests_in_progress.clear()

    def on_become_primary(self) -> None:
        """Resume phase two for committing records that survived
        (section 4.1: "transactions that prepared in the old view will be
        able to commit, and those that committed will still be committed")."""
        for aid, (plist, pset_pairs) in list(self.cohort.committing.items()):
            self._resume_commit(aid, plist, pset_pairs)

    def is_running(self, aid: Aid) -> bool:
        return aid in self._txns

    def knows(self, aid: Aid) -> bool:
        return aid in self._created

    def mint_aid(self) -> Aid:
        """A fresh aid for an externally-driven transaction (section 3.5)."""
        cohort = self.cohort
        self._seq += 1
        aid = Aid(cohort.mygroupid, cohort.cur_viewid, self._seq)
        self._created.add(aid)
        return aid

    def coordinate_external(
        self, aid: Aid, pset_pairs, aborted_subactions
    ) -> Future:
        """Run 2PC for a transaction whose calls an unreplicated client made
        itself (the coordinator-server path, section 3.5).  Resolves to
        (outcome, None)."""
        cohort = self.cohort
        assert cohort.is_active_primary
        txn = Transaction(self, aid, use_subactions=False)
        for pair in pset_pairs:
            txn.pset.add(pair.groupid, pair.vs)
        txn.aborted_subactions = set(aborted_subactions)
        future = Future(label=f"external:{aid}")
        state = _RunningTxn(txn=txn, future=future)
        self._txns[aid] = state
        self._created.add(aid)
        # The client's calls populated no cache entries here; warm them so
        # prepares can be addressed.
        for groupid in sorted(txn.pset.participants()):
            if cohort.cache.get(groupid) is None:
                for _mid, address in cohort.locate(groupid):
                    cohort.send(address, m.ViewProbeMsg(reply_to=cohort.address))
        self._start_prepare(state)
        return future

    # ------------------------------------------------------------------
    # intake from workload drivers
    # ------------------------------------------------------------------

    def on_txn_request(self, msg: m.TxnRequestMsg) -> None:
        key = (msg.reply_to, msg.request_id)
        cached = self._request_replies.get(key)
        if cached is not None:
            self.cohort.send(msg.reply_to, cached)
            return
        if key in self._requests_in_progress:
            return
        self._requests_in_progress.add(key)
        future = self.run_transaction(msg.program, msg.args)

        def report(done: Future) -> None:
            self._requests_in_progress.discard(key)
            if done.exception() is not None:
                return  # cohort left active; driver will retry elsewhere
            outcome, result = done.result()
            reply = m.TxnOutcomeMsg(
                request_id=msg.request_id,
                outcome=outcome,
                result=result,
                aid=None,
            )
            self._request_replies[key] = reply
            if self.cohort.is_active_primary:
                self.cohort.send(msg.reply_to, reply)

        future.add_done_callback(report)

    # ------------------------------------------------------------------
    # running transactions
    # ------------------------------------------------------------------

    def run_transaction(
        self, program: str, args: Tuple, use_subactions: Optional[bool] = None
    ) -> Future:
        """Start a registered program; resolves to (outcome, result)."""
        cohort = self.cohort
        assert cohort.is_active_primary
        try:
            program_fn = cohort.spec.transaction_program(program)
        except KeyError as error:
            failed = Future(label=f"txn:{program}")
            failed.set_result(("aborted", str(error)))
            return failed
        if use_subactions is None:
            use_subactions = getattr(program_fn, "_vr_subactions", False)
        self._seq += 1
        aid = Aid(cohort.mygroupid, cohort.cur_viewid, self._seq)
        txn = Transaction(self, aid, use_subactions)
        future = Future(label=f"txn:{aid}")
        state = _RunningTxn(txn=txn, future=future)
        self._txns[aid] = state
        self._created.add(aid)
        cohort.metrics.incr(f"txns_started:{cohort.mygroupid}")
        if cohort.tracer is not None:
            cohort.tracer.emit(
                "txn_begin",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                aid=str(aid),
                program=program,
            )
        process = cohort.spawn(self._drive(state, program_fn, args), name=f"txn:{aid}")

        def on_process_done(proc_future: Future) -> None:
            error = proc_future.exception()
            if error is None or state.future.done:
                return
            if isinstance(error, CancelledError):
                return  # leave_active already resolved the future
            self._abort_txn(state, reason=str(error))

        process.add_done_callback(on_process_done)
        return future

    def _drive(self, state: _RunningTxn, program_fn, args: Tuple):
        txn = state.txn
        try:
            generated = program_fn(txn, *args)
            if hasattr(generated, "send"):
                result = yield from generated
            else:
                result = generated
        except (CallAborted,) as error:
            self._abort_txn(state, reason=error.reason)
            return
        state.result = result
        self._start_prepare(state)

    # -- remote calls with probe/retry/subaction semantics ------------------

    def _make_call(
        self, txn: Transaction, groupid: str, proc: str, args: Tuple, retries_left: int
    ) -> Future:
        cohort = self.cohort
        done = Future(label=f"txncall:{txn.aid}:{proc}")
        self._call_seq = getattr(self, "_call_seq", 0) + 1
        call_id = txn.next_attempt_id(self._call_seq)
        attempt = cohort.caller.call(
            txn.aid, groupid, proc, args, call_id,
            aborted_subactions=tuple(sorted(txn.aborted_subactions)),
        )

        def on_done(attempt_future: Future) -> None:
            if done.done:
                return
            error = attempt_future.exception()
            if error is None:
                result, pset_pairs, _piggyback = attempt_future.result()
                for pair in pset_pairs:
                    txn.pset.add(pair.groupid, pair.vs)
                done.set_result(result)
                return
            reason = getattr(error, "reason", str(error))
            retryable = any(token in reason for token in _RETRYABLE_REASONS)
            if txn.use_subactions and retryable and retries_left > 0:
                # Section 3.6: abort just the call subaction and retry the
                # call as a new subaction.
                txn.aborted_subactions.add(call_id.subaction)
                cohort.metrics.incr(f"subaction_retries:{cohort.mygroupid}")
                self._notify_subaction_abort(txn, groupid, call_id.subaction)
                retry = self._make_call(
                    txn, groupid, proc, args, retries_left=retries_left - 1
                )
                retry.add_done_callback(
                    lambda rf: done.set_exception(rf.exception())
                    if rf.exception() is not None
                    else done.set_result(rf.result())
                )
                return
            done.set_exception(
                error if isinstance(error, CallAborted) else CallAborted(reason)
            )

        attempt.add_done_callback(on_done)
        return done

    def _notify_subaction_abort(
        self, txn: Transaction, groupid: str, subaction: int
    ) -> None:
        entry = self.cohort.cache.get(groupid)
        if entry is not None:
            self.cohort.send(
                entry.primary_address,
                m.SubactionAbortMsg(aid=txn.aid, subaction=subaction),
            )

    # ------------------------------------------------------------------
    # two-phase commit: coordinator (Figure 2)
    # ------------------------------------------------------------------

    def _start_prepare(self, state: _RunningTxn) -> None:
        cohort = self.cohort
        txn = state.txn
        txn.phase = "preparing"
        participants = txn.pset.participants()
        if cohort.tracer is not None:
            cohort.tracer.emit(
                "txn_prepare",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                aid=str(txn.aid),
                participants=sorted(participants),
            )
        if not participants:
            # No calls were made; nothing to commit anywhere.
            txn.phase = "done"
            self._txns.pop(txn.aid, None)
            cohort.runtime.ledger.record_commit(txn.aid)
            cohort.metrics.incr(f"txns_committed:{cohort.mygroupid}")
            state.future.set_result(("committed", state.result))
            return
        state.prepare_ok = {}
        self._send_prepares(state, sorted(participants))
        # Adaptive mode probes missing participants at an RTT-derived pace,
        # but the abort decision keeps the fixed configuration's total
        # patience (_MAX_PREPARE_ROUNDS * prepare_timeout).
        state.prepare_deadline = (
            cohort.sim.now + _MAX_PREPARE_ROUNDS * cohort.config.prepare_timeout
        )
        state.prepare_timer = cohort.set_timer(
            cohort.timeouts.prepare_timeout(), self._prepare_retry, state
        )

    def _send_prepares(self, state: _RunningTxn, groupids) -> None:
        cohort = self.cohort
        txn = state.txn
        cross_group = len(txn.pset.participants()) > 1
        for groupid in groupids:
            if cohort.config.batch.enabled and groupid == cohort.mygroupid:
                # We coordinate a transaction on our own group (a sharded
                # group's single-key path): deliver the prepare
                # synchronously instead of routing it through the network
                # back to ourselves.  Idempotent under the retry loop, like
                # the wire path.
                cohort.server_role.on_prepare(
                    m.PrepareMsg(
                        aid=txn.aid,
                        pset_pairs=tuple(txn.pset.pairs()),
                        coordinator=cohort.address,
                        aborted_subactions=tuple(sorted(txn.aborted_subactions)),
                    )
                )
                continue
            entry = cohort.cache.get(groupid)
            if entry is None:
                continue  # retry loop will re-probe
            if cohort.tracer is not None and cross_group:
                # Per-participant phase-one visibility for sharded /
                # multi-group transactions: one event per prepare actually
                # put on the wire (retransmissions emit again).
                cohort.tracer.emit(
                    "shard_prepare",
                    node=cohort.node.node_id,
                    group=cohort.mygroupid,
                    aid=str(txn.aid),
                    participant=groupid,
                )
            cohort.send(
                entry.primary_address,
                m.PrepareMsg(
                    aid=txn.aid,
                    pset_pairs=tuple(txn.pset.pairs()),
                    coordinator=cohort.address,
                    aborted_subactions=tuple(sorted(txn.aborted_subactions)),
                ),
            )

    def _prepare_retry(self, state: _RunningTxn) -> None:
        cohort = self.cohort
        txn = state.txn
        if txn.phase != "preparing" or txn.aid not in self._txns:
            return
        state.prepare_round += 1
        if cohort.config.adaptive_timeouts:
            out_of_patience = (
                state.prepare_deadline is not None
                and cohort.sim.now >= state.prepare_deadline - 1e-9
            )
        else:
            out_of_patience = state.prepare_round >= _MAX_PREPARE_ROUNDS
        if out_of_patience:
            # "If a more recent view cannot be discovered... abort."
            self._abort_txn(state, reason="participants unreachable at prepare")
            return
        missing = sorted(
            g for g in txn.pset.participants() if g not in state.prepare_ok
        )
        for groupid in missing:
            # Probe for fresher view information (the cache only moves
            # forward, so re-sending to the current entry stays correct).
            for _mid, address in cohort.locate(groupid):
                cohort.send(address, m.ViewProbeMsg(reply_to=cohort.address))
        self._send_prepares(state, missing)
        state.prepare_timer = cohort.set_timer(
            cohort.timeouts.prepare_timeout(), self._prepare_retry, state
        )

    def on_prepare_ok(self, msg: m.PrepareOkMsg) -> None:
        state = self._txns.get(msg.aid)
        if state is None or state.txn.phase != "preparing":
            return
        state.prepare_ok[msg.groupid] = msg.read_only
        if set(state.prepare_ok) >= state.txn.pset.participants():
            self._all_prepared(state)

    def on_prepare_refused(self, msg: m.PrepareRefusedMsg) -> None:
        state = self._txns.get(msg.aid)
        if state is None or state.txn.phase != "preparing":
            return
        self._abort_txn(state, reason=f"prepare refused by {msg.groupid}: {msg.reason}")

    def _all_prepared(self, state: _RunningTxn) -> None:
        """Figure 2 step 2: committing record, force, then commit messages."""
        cohort = self.cohort
        txn = state.txn
        txn.phase = "committing"
        self._cancel_timers(state)
        plist = tuple(
            sorted(g for g, read_only in state.prepare_ok.items() if not read_only)
        )
        pset_pairs = tuple(txn.pset.pairs())
        committing_vs = cohort.add_record(
            Committing(aid=txn.aid, plist=plist, pset_pairs=pset_pairs)
        )
        force = cohort.force_all()
        epoch = cohort._epoch
        forced_at = cohort.sim.now

        def after_force(future: Future) -> None:
            if future.exception() is not None:
                return  # view change; resolution happens via on_leave_active
            if cohort._epoch != epoch or not cohort.is_active_primary:
                return
            cohort.metrics.observe("commit_force_latency", cohort.sim.now - forced_at)
            self._commit_point(state, plist, pset_pairs, committing_vs.ts)

        force.add_done_callback(after_force)

    def _commit_point(
        self, state: _RunningTxn, plist, pset_pairs, forced_ts: int
    ) -> None:
        """The committing record is known to a majority: the transaction is
        durably committed.  User code continues now."""
        cohort = self.cohort
        txn = state.txn
        if cohort.tracer is not None:
            # Evaluated synchronously with the force resolution, so the
            # buffer's ack table still reflects the quorum that satisfied
            # it -- the commit-quorum monitor audits exactly this snapshot.
            cohort.tracer.emit(
                "commit_point",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                aid=str(txn.aid),
                viewid=str(cohort.cur_viewid),
                force_ts=forced_ts,
                acked={str(k): v for k, v in cohort.buffer.acked.items()},
                config_size=cohort.config_size,
            )
        if cohort.tracer is not None and len(txn.pset.participants()) > 1:
            cohort.tracer.emit(
                "shard_commit",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                aid=str(txn.aid),
                participants=sorted(txn.pset.participants()),
                plist=sorted(plist),
            )
        cohort.outcomes[txn.aid] = "committed"
        cohort.runtime.ledger.record_commit(txn.aid)
        cohort.metrics.incr(f"txns_committed:{cohort.mygroupid}")
        if not state.future.done:
            state.future.set_result(("committed", state.result))
        state.commit_waiting = set(plist)
        if not plist:
            self._finish_commit(txn.aid)
            self._txns.pop(txn.aid, None)
            return
        self._send_commits(txn.aid, plist, pset_pairs)
        state.commit_timer = cohort.set_timer(
            cohort.timeouts.commit_retry_interval(),
            self._commit_retry,
            txn.aid,
            pset_pairs,
        )

    def _send_commits(self, aid: Aid, groupids, pset_pairs) -> None:
        cohort = self.cohort
        for groupid in groupids:
            if cohort.config.batch.enabled and groupid == cohort.mygroupid:
                # Self-participant commit, delivered synchronously (mirrors
                # the _abort_txn local-abort path; _perform_commit's
                # already_installed check keeps retries idempotent).
                cohort.server_role.on_commit(
                    m.CommitMsg(
                        aid=aid,
                        pset_pairs=tuple(pset_pairs),
                        coordinator=cohort.address,
                    )
                )
                continue
            entry = cohort.cache.get(groupid)
            if entry is None:
                for _mid, address in cohort.locate(groupid):
                    cohort.send(address, m.ViewProbeMsg(reply_to=cohort.address))
                continue
            cohort.send(
                entry.primary_address,
                m.CommitMsg(
                    aid=aid, pset_pairs=tuple(pset_pairs), coordinator=cohort.address
                ),
            )

    def _commit_retry(self, aid: Aid, pset_pairs) -> None:
        cohort = self.cohort
        state = self._txns.get(aid)
        if state is None or not cohort.is_active_primary:
            return
        for groupid in sorted(state.commit_waiting):
            for _mid, address in cohort.locate(groupid):
                cohort.send(address, m.ViewProbeMsg(reply_to=cohort.address))
        self._send_commits(aid, sorted(state.commit_waiting), pset_pairs)
        state.commit_timer = cohort.set_timer(
            cohort.timeouts.commit_retry_interval(),
            self._commit_retry,
            aid,
            pset_pairs,
        )

    def on_commit_ack(self, msg: m.CommitAckMsg) -> None:
        state = self._txns.get(msg.aid)
        if state is None:
            return
        state.commit_waiting.discard(msg.groupid)
        if not state.commit_waiting:
            self._cancel_timers(state)
            self._finish_commit(msg.aid)
            self._txns.pop(msg.aid, None)

    def _finish_commit(self, aid: Aid) -> None:
        """All participants acknowledged: add the done record (Figure 2)."""
        self.cohort.add_record(Done(aid=aid))

    # -- resumed phase two (new primary) --------------------------------------

    def _resume_commit(self, aid: Aid, plist, pset_pairs) -> None:
        """A committing record survived the view change; finish phase two.

        The newview/committing state must be forced in *this* view before
        commit messages go out (see DESIGN.md: the commit decision must be
        majority-known in the current view)."""
        cohort = self.cohort
        self._created.add(aid)
        txn = Transaction(self, aid, use_subactions=False)
        txn.phase = "committing"
        state = _RunningTxn(txn=txn, future=Future(label=f"resumed:{aid}"))
        state.future.set_result(("committed", None))
        self._txns[aid] = state
        forced_ts = cohort.buffer.timestamp
        force = cohort.force_all()
        epoch = cohort._epoch

        def after_force(future: Future) -> None:
            if future.exception() is not None:
                return
            if cohort._epoch != epoch or not cohort.is_active_primary:
                return
            cohort.metrics.incr(f"commits_resumed:{cohort.mygroupid}")
            self._commit_point(state, tuple(plist), tuple(pset_pairs), forced_ts)

        force.add_done_callback(after_force)

    # ------------------------------------------------------------------
    # aborts
    # ------------------------------------------------------------------

    def _abort_txn(self, state: _RunningTxn, reason: str) -> None:
        """Figure 2 step 3: tell the participants, record the abort."""
        cohort = self.cohort
        txn = state.txn
        if txn.phase == "done":
            return
        txn.phase = "done"
        self._cancel_timers(state)
        self._txns.pop(txn.aid, None)
        if cohort.is_active_primary:
            participants = txn.pset.participants()
            if cohort.mygroupid in participants:
                # We coordinate a transaction on our own group (a sharded
                # group's single-key path).  Abort locally and synchronously:
                # a self-addressed AbortMsg would arrive after the Aborted
                # record below sets the outcome, be ignored, and leak the
                # write locks this group holds for the transaction.
                cohort.server_role.on_abort(m.AbortMsg(aid=txn.aid))
            for groupid in sorted(participants):
                if groupid == cohort.mygroupid:
                    continue
                entry = cohort.cache.get(groupid)
                if entry is not None:
                    cohort.send(entry.primary_address, m.AbortMsg(aid=txn.aid))
            if cohort.outcomes.get(txn.aid) != "aborted":
                cohort.add_record(Aborted(aid=txn.aid))
        cohort.runtime.ledger.record_abort(txn.aid, reason)
        cohort.metrics.incr(f"txns_aborted:{cohort.mygroupid}")
        if cohort.tracer is not None:
            cohort.tracer.emit(
                "txn_abort",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                aid=str(txn.aid),
                reason=reason,
            )
        if not state.future.done:
            state.future.set_result(("aborted", None))

    def on_view_changed(self, msg: m.ViewChangedMsg) -> None:
        """A participant rejected a prepare/commit; chase the new primary."""
        if msg.aid is None or not self.cohort.is_active_primary:
            return
        state = self._txns.get(msg.aid)
        if state is None:
            return
        if msg.viewid is not None and msg.view is not None and msg.groupid:
            # The groupid arrives in a reply; resolve it through the
            # tolerant multi-group path (an unknown group yields None and
            # the retry loop re-probes) instead of a strict lookup.
            primary_address = self.cohort.runtime.location.primary_address(
                msg.groupid, msg.view
            )
            self.cohort.cache.update(msg.groupid, msg.viewid, msg.view, primary_address)
            if state.txn.phase == "preparing":
                self._send_prepares(state, [msg.groupid])
            elif state.txn.phase == "committing" and msg.groupid in state.commit_waiting:
                self._send_commits(
                    msg.aid, [msg.groupid], tuple(state.txn.pset.pairs())
                )

    def _cancel_timers(self, state: _RunningTxn) -> None:
        for timer in (state.prepare_timer, state.commit_timer):
            if timer is not None:
                timer.cancel()
        state.prepare_timer = None
        state.commit_timer = None
