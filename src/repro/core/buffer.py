"""The communication buffer (paper sections 2 and 3).

"Instead of checkpointing events directly to the backups, the primary
maintains a communication buffer (similar to a fifo queue) to which it
writes event records...  Information in the buffer is sent to the backups
in timestamp order.  The buffer implementation provides reliable delivery
of event records to all backups in the primary's view; if it fails to
deliver a message, then a crash or communication failure has occurred that
will cause a view change."

Two operations, exactly as specified:

- :meth:`CommunicationBuffer.add` -- "atomically assigns the event a
  timestamp (advancing the timestamp and updating the history in the
  process) and adds the event record to the buffer; it returns the event's
  viewstamp."
- :meth:`CommunicationBuffer.force_to` -- "takes a viewstamp v as an
  argument.  If the viewstamp is not for the current view it returns
  immediately; otherwise it waits until a sub-majority of backups know
  about all events in the current view with timestamps less than or equal
  to v.ts."

Reliable in-order delivery over the lossy datagram network is implemented
with cumulative acks: each flush re-sends every record above the backup's
last ack, and backups apply records contiguously.  Delivery failure is
surfaced as a force timeout, which abandons the force and triggers a view
change, matching the paper's footnote 1.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.events import EventRecord
from repro.core.messages import BufferAckMsg, BufferMsg
from repro.core.view import sub_majority
from repro.core.viewstamp import ViewId, Viewstamp
from repro.sim.errors import SimulationError
from repro.sim.future import Future


class ForceAbandoned(SimulationError):
    """A force_to could not complete; the cohort is switching to a view
    change (paper footnote 1)."""


class _PendingForce:
    __slots__ = ("ts", "future", "deadline")

    def __init__(self, ts: int, future: Future, deadline) -> None:
        self.ts = ts
        self.future = future
        self.deadline = deadline


class CommunicationBuffer:
    """Primary-side event buffer for one view.

    The owning cohort supplies callbacks instead of being imported, keeping
    this module protocol-pure and unit-testable in isolation.

    Parameters
    ----------
    send:
        ``send(mid, message)`` -- transmit to a group peer.
    on_force_failure:
        Invoked once when a force times out; the cohort starts a view change.
    configuration_size:
        Group size; the force threshold is a *sub-majority of the
        configuration* (section 3), not of the current view.
    """

    def __init__(
        self,
        viewid: ViewId,
        backups: Tuple[int, ...],
        configuration_size: int,
        send: Callable[[int, object], None],
        set_timer: Callable,
        on_force_failure: Callable[[], None],
        force_timeout: float,
        max_batch: int = 64,
        retain_all: bool = False,
    ):
        self.viewid = viewid
        self.backups = tuple(backups)
        self.configuration_size = configuration_size
        self._send = send
        self._set_timer = set_timer
        self._on_force_failure = on_force_failure
        self._force_timeout = force_timeout
        self._max_batch = max_batch
        self._retain_all = retain_all  # keep the whole view's records so an
        #                                unilaterally re-added backup can be
        #                                caught up from where it left off

        self.timestamp = 0  # Figure 1's "timestamp: int % the timestamp generator"
        self._records: List[Tuple[int, EventRecord]] = []
        self._base_ts = 0  # ts of the first retained record minus one
        self.acked: Dict[int, int] = {mid: 0 for mid in self.backups}
        self._pending_forces: List[_PendingForce] = []
        self.closed = False

    # -- membership (unilateral view edits, section 4.1) --------------------

    def set_backups(self, backups: Tuple[int, ...]) -> None:
        self.backups = tuple(backups)
        for mid in self.backups:
            self.acked.setdefault(mid, 0)
        for mid in list(self.acked):
            if mid not in self.backups:
                del self.acked[mid]
        self._check_forces()

    # -- the two operations -----------------------------------------------

    def add(self, record: EventRecord) -> Viewstamp:
        """Append an event; returns its viewstamp.  Caller advances history."""
        if self.closed:
            raise SimulationError("buffer closed (view change in progress)")
        self.timestamp += 1
        self._records.append((self.timestamp, record))
        return Viewstamp(self.viewid, self.timestamp)

    def force_to(self, viewstamp: Optional[Viewstamp]) -> Future:
        """Wait until a sub-majority of backups cover *viewstamp*.

        Returns an already-resolved future when the viewstamp is from an
        earlier view ("if the viewstamp is not for the current view it
        returns immediately"), when it is None (nothing to force), or when
        the threshold is already met.
        """
        future = Future(label=f"force:{viewstamp}")
        if self.closed:
            future.set_exception(ForceAbandoned("buffer closed"))
            return future
        if viewstamp is None or viewstamp.id != self.viewid:
            future.set_result(None)
            return future
        if viewstamp.ts > self.timestamp:
            raise SimulationError(
                f"force_to({viewstamp}) beyond generated timestamps "
                f"({self.timestamp})"
            )
        if self._sub_majority_ts() >= viewstamp.ts:
            future.set_result(None)
            return future
        deadline = self._set_timer(self._force_timeout, self._force_timed_out)
        self._pending_forces.append(
            _PendingForce(viewstamp.ts, future, deadline)
        )
        self.flush()  # speedy delivery: don't wait for the background timer
        return future

    # -- transmission ------------------------------------------------------

    def flush(self) -> None:
        """Send every backup the records above its cumulative ack."""
        if self.closed:
            return
        for mid in self.backups:
            self._flush_one(mid)

    def _flush_one(self, mid: int) -> None:
        acked = self.acked.get(mid, 0)
        start = max(acked, self._base_ts)
        records = tuple(
            (ts, record) for ts, record in self._records if ts > start
        )[: self._max_batch]
        if not records and acked >= self.timestamp:
            return
        self._send(
            mid,
            BufferMsg(viewid=self.viewid, records=records, primary_ts=self.timestamp),
        )

    def on_ack(self, ack: BufferAckMsg) -> None:
        """Process a cumulative ack from a backup."""
        if self.closed or ack.viewid != self.viewid:
            return
        if ack.mid not in self.acked:
            return  # excluded backup (unilateral edit) or stray
        if ack.acked_ts > self.acked[ack.mid]:
            self.acked[ack.mid] = ack.acked_ts
            self._check_forces()
            self._trim()

    # -- internals -----------------------------------------------------------

    def _sub_majority_ts(self) -> int:
        """Highest ts known to at least a sub-majority of backups."""
        needed = sub_majority(self.configuration_size)
        if needed <= 0:
            return self.timestamp  # single-cohort group: primary alone suffices
        acks = sorted((self.acked.get(mid, 0) for mid in self.backups), reverse=True)
        if len(acks) < needed:
            return 0
        return acks[needed - 1]

    def _check_forces(self) -> None:
        if not self._pending_forces:
            return
        reached = self._sub_majority_ts()
        still_pending = []
        for force in self._pending_forces:
            if force.ts <= reached:
                force.deadline.cancel()
                force.future.set_result(None)
            else:
                still_pending.append(force)
        self._pending_forces = still_pending

    def _force_timed_out(self) -> None:
        if self.closed:
            return
        self._fail_forces("force timed out; communication with backups lost")
        self._on_force_failure()

    def _fail_forces(self, reason: str) -> None:
        pending, self._pending_forces = self._pending_forces, []
        for force in pending:
            force.deadline.cancel()
            if not force.future.done:
                force.future.set_exception(ForceAbandoned(reason))

    def _trim(self) -> None:
        """Drop records every current backup has acknowledged.

        The newview record is always retained (``_base_ts`` never passes
        ts=1 until all backups ack it), so late-added backups can still be
        brought up from the start of the view.
        """
        if self._retain_all or not self.acked:
            return
        min_ack = min(self.acked.values())
        if min_ack <= self._base_ts:
            return
        self._records = [(ts, r) for ts, r in self._records if ts > min_ack]
        self._base_ts = min_ack

    def close(self) -> None:
        """Abandon the buffer at the start of a view change."""
        if self.closed:
            return
        self.closed = True
        self._fail_forces("view change started")

    # -- introspection ---------------------------------------------------------

    @property
    def unforced_count(self) -> int:
        return self.timestamp - self._sub_majority_ts()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommunicationBuffer({self.viewid}, ts={self.timestamp}, "
            f"acked={self.acked}, pending_forces={len(self._pending_forces)})"
        )
