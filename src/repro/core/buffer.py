"""The communication buffer (paper sections 2 and 3).

"Instead of checkpointing events directly to the backups, the primary
maintains a communication buffer (similar to a fifo queue) to which it
writes event records...  Information in the buffer is sent to the backups
in timestamp order.  The buffer implementation provides reliable delivery
of event records to all backups in the primary's view; if it fails to
deliver a message, then a crash or communication failure has occurred that
will cause a view change."

Two operations, exactly as specified:

- :meth:`CommunicationBuffer.add` -- "atomically assigns the event a
  timestamp (advancing the timestamp and updating the history in the
  process) and adds the event record to the buffer; it returns the event's
  viewstamp."
- :meth:`CommunicationBuffer.force_to` -- "takes a viewstamp v as an
  argument.  If the viewstamp is not for the current view it returns
  immediately; otherwise it waits until a sub-majority of backups know
  about all events in the current view with timestamps less than or equal
  to v.ts."

Reliable in-order delivery over the lossy datagram network is implemented
with cumulative acks, in one of two transmission modes:

- **unbatched** (the paper-faithful default): every force flushes
  immediately ("speedy delivery"), and every flush re-sends the whole
  suffix above the backup's last cumulative ack;
- **batched** (``BatchConfig.enabled``): forces only *request* a flush;
  one coalescing tick per ``BatchConfig.flush_interval`` sends each backup
  at most ``max_batch`` *new* records (tracked by a per-backup send
  high-water mark) with up to ``pipeline_depth`` batches in flight before
  the sender stalls.  Loss recovery is go-back-N: the background flush
  loop notices a stalled cumulative ack and rewinds the high-water mark to
  it.  Section 3.7's "careful engineering is needed here to provide both
  speedy delivery and small numbers of messages" is exactly this trade.

Delivery failure is surfaced as a force timeout in either mode, which
abandons the force and triggers a view change, matching footnote 1.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.events import EventRecord
from repro.core.messages import BufferAckMsg, BufferMsg
from repro.core.view import sub_majority
from repro.core.viewstamp import ViewId, Viewstamp
from repro.sim.errors import SimulationError
from repro.sim.future import Future


class ForceAbandoned(SimulationError):
    """A force_to could not complete; the cohort is switching to a view
    change (paper footnote 1)."""


class _PendingForce:
    __slots__ = ("ts", "future", "deadline")

    def __init__(self, ts: int, future: Future, deadline) -> None:
        self.ts = ts
        self.future = future
        self.deadline = deadline


class CommunicationBuffer:
    """Primary-side event buffer for one view.

    The owning cohort supplies callbacks instead of being imported, keeping
    this module protocol-pure and unit-testable in isolation.

    Parameters
    ----------
    send:
        ``send(mid, message)`` -- transmit to a group peer.
    on_force_failure:
        Invoked once when a force times out; the cohort starts a view change.
    configuration_size:
        Group size; the force threshold is a *sub-majority of the
        configuration* (section 3), not of the current view.
    batch_enabled / flush_delay / pipeline_depth:
        Batched transmission mode (see module docstring).  Defaults
        reproduce the unbatched protocol exactly.
    clock:
        ``clock()`` -> current virtual time; only needed for batched mode.
    trace:
        Optional ``trace(kind, **data)`` hook for batch_flush events.
    """

    def __init__(
        self,
        viewid: ViewId,
        backups: Tuple[int, ...],
        configuration_size: int,
        send: Callable[[int, object], None],
        set_timer: Callable,
        on_force_failure: Callable[[], None],
        force_timeout: float,
        max_batch: int = 64,
        retain_all: bool = False,
        batch_enabled: bool = False,
        flush_delay: float = 0.0,
        pipeline_depth: int = 1,
        clock: Optional[Callable[[], float]] = None,
        trace: Optional[Callable[..., None]] = None,
    ):
        self.viewid = viewid
        self.backups = tuple(backups)
        self.configuration_size = configuration_size
        self._send = send
        self._set_timer = set_timer
        self._on_force_failure = on_force_failure
        self._force_timeout = force_timeout
        self._max_batch = max_batch
        self._retain_all = retain_all  # keep the whole view's records so an
        #                                unilaterally re-added backup can be
        #                                caught up from where it left off
        self._batch_enabled = batch_enabled
        self._flush_delay = flush_delay
        self._pipeline_depth = max(1, pipeline_depth)
        self._clock = clock
        self._trace = trace

        self.timestamp = 0  # Figure 1's "timestamp: int % the timestamp generator"
        self._records: List[Tuple[int, EventRecord]] = []
        self._base_ts = 0  # ts of the first retained record minus one
        self.acked: Dict[int, int] = {mid: 0 for mid in self.backups}
        self._pending_forces: List[_PendingForce] = []
        self.closed = False
        # Batched-mode state: per-backup send high-water mark (highest ts
        # ever shipped), ack progress seen at the last background sweep
        # (go-back-N stall detection), and the pending coalescing tick.
        self._sent: Dict[int, int] = {mid: 0 for mid in self.backups}
        self._last_swept_ack: Dict[int, int] = {}
        self._tick_pending = False
        # Counters surfaced by perf reports and the batching experiments.
        self.msgs_sent = 0
        self.records_sent = 0
        self.flush_ticks = 0

    # -- membership (unilateral view edits, section 4.1) --------------------

    def set_backups(self, backups: Tuple[int, ...]) -> None:
        self.backups = tuple(backups)
        for mid in self.backups:
            self.acked.setdefault(mid, 0)
            self._sent.setdefault(mid, 0)
        for mid in list(self.acked):
            if mid not in self.backups:
                del self.acked[mid]
                self._sent.pop(mid, None)
                self._last_swept_ack.pop(mid, None)
        self._check_forces()

    # -- the two operations -----------------------------------------------

    def add(self, record: EventRecord) -> Viewstamp:
        """Append an event; returns its viewstamp.  Caller advances history."""
        if self.closed:
            raise SimulationError("buffer closed (view change in progress)")
        self.timestamp += 1
        self._records.append((self.timestamp, record))
        if self._batch_enabled:
            self.request_flush()
        return Viewstamp(self.viewid, self.timestamp)

    def force_to(self, viewstamp: Optional[Viewstamp]) -> Future:
        """Wait until a sub-majority of backups cover *viewstamp*.

        Returns an already-resolved future when the viewstamp is from an
        earlier view ("if the viewstamp is not for the current view it
        returns immediately"), when it is None (nothing to force), or when
        the threshold is already met.
        """
        future = Future(label=f"force:{viewstamp}")
        if self.closed:
            future.set_exception(ForceAbandoned("buffer closed"))
            return future
        if viewstamp is None or viewstamp.id != self.viewid:
            future.set_result(None)
            return future
        if viewstamp.ts > self.timestamp:
            raise SimulationError(
                f"force_to({viewstamp}) beyond generated timestamps "
                f"({self.timestamp})"
            )
        if self._sub_majority_ts() >= viewstamp.ts:
            future.set_result(None)
            return future
        deadline = self._set_timer(self._force_timeout, self._force_timed_out)
        self._pending_forces.append(
            _PendingForce(viewstamp.ts, future, deadline)
        )
        if self._batch_enabled:
            self.request_flush()  # coalesced: one tick serves every force
        else:
            self.flush()  # speedy delivery: don't wait for the background timer
        return future

    # -- transmission ------------------------------------------------------

    def flush(self) -> None:
        """Background sweep: re-send what backups are missing.

        Unbatched mode re-sends every backup the full suffix above its
        cumulative ack.  Batched mode is the go-back-N retransmit path: a
        backup whose cumulative ack has not advanced since the previous
        sweep, while records beyond it were already shipped, has lost
        traffic -- rewind its send mark to the ack and re-send from there.
        """
        if self.closed:
            return
        if not self._batch_enabled:
            for mid in self.backups:
                self._flush_one(mid)
            return
        rewound = False
        for mid in self.backups:
            acked = self.acked.get(mid, 0)
            sent = self._sent.get(mid, 0)
            if sent > acked and self._last_swept_ack.get(mid) == acked:
                self._sent[mid] = acked
                rewound = True
            self._last_swept_ack[mid] = acked
        if rewound or self._unsent_backups():
            self._flush_tick()

    def request_flush(self) -> None:
        """Schedule one coalescing flush tick (batched mode only)."""
        if self.closed or self._tick_pending:
            return
        self._tick_pending = True
        self._set_timer(self._flush_delay, self._flush_tick_timer)

    def _flush_tick_timer(self) -> None:
        self._tick_pending = False
        if not self.closed:
            self._flush_tick()

    def _flush_tick(self) -> None:
        """Send each backup its next window of new records, coalesced."""
        msgs = 0
        records = 0
        for mid in self.backups:
            n = self._flush_one_batched(mid)
            if n:
                msgs += 1
                records += n
        if msgs:
            self.flush_ticks += 1
            if self._trace is not None:
                self._trace(
                    "batch_flush",
                    msgs=msgs,
                    records=records,
                    ts=self.timestamp,
                )
        # Keep the pipeline draining while windows are open and records
        # remain unsent (a single tick ships at most max_batch per backup).
        if self._unsent_backups():
            self.request_flush()

    def _flush_one_batched(self, mid: int) -> int:
        """Ship *mid* its next batch of unsent records; returns the count."""
        acked = self.acked.get(mid, 0)
        sent = max(self._sent.get(mid, 0), acked, self._base_ts)
        window_limit = acked + self._pipeline_depth * self._max_batch
        if sent >= self.timestamp or sent >= window_limit:
            return 0
        start_index = sent - self._base_ts
        end_ts = min(sent + self._max_batch, window_limit)
        records = tuple(self._records[start_index : end_ts - self._base_ts])
        if not records:
            return 0
        self._sent[mid] = records[-1][0]
        self.msgs_sent += 1
        self.records_sent += len(records)
        self._send(
            mid,
            BufferMsg(
                viewid=self.viewid,
                records=records,
                primary_ts=self.timestamp,
                sent_at=self._clock() if self._clock is not None else None,
            ),
        )
        return len(records)

    def _unsent_backups(self) -> bool:
        """True if any backup has unsent records inside an open window."""
        for mid in self.backups:
            acked = self.acked.get(mid, 0)
            sent = max(self._sent.get(mid, 0), acked, self._base_ts)
            if sent < self.timestamp and sent < acked + (
                self._pipeline_depth * self._max_batch
            ):
                return True
        return False

    def _flush_one(self, mid: int) -> None:
        acked = self.acked.get(mid, 0)
        start = max(acked, self._base_ts)
        # _records is contiguous from _base_ts + 1, so index arithmetic
        # replaces the O(n) scan on this hot path.
        start_index = start - self._base_ts
        records = tuple(
            self._records[start_index : start_index + self._max_batch]
        )
        if not records and acked >= self.timestamp:
            return
        self.msgs_sent += 1
        self.records_sent += len(records)
        self._send(
            mid,
            BufferMsg(viewid=self.viewid, records=records, primary_ts=self.timestamp),
        )

    def on_ack(self, ack: BufferAckMsg) -> None:
        """Process a cumulative ack from a backup.

        With ack trees armed (repro.scale) the message may carry an
        aggregated subtree of ``(mid, acked_ts)`` pairs in ``agg``; an
        empty ``agg`` is the classic single-backup ack.  Acks are
        max-merged per mid, so stale relayed entries are harmless.
        """
        if self.closed or ack.viewid != self.viewid:
            return
        pairs = ack.agg if ack.agg else ((ack.mid, ack.acked_ts),)
        advanced = False
        for mid, acked_ts in pairs:
            if mid not in self.acked:
                continue  # excluded backup (unilateral edit) or stray
            if acked_ts > self.acked[mid]:
                self.acked[mid] = acked_ts
                advanced = True
                if self._batch_enabled and acked_ts > self._sent.get(mid, 0):
                    self._sent[mid] = acked_ts
        if advanced:
            # An advancing ack opens window space: keep the pipe full.
            if self._batch_enabled and self._unsent_backups():
                self.request_flush()
            self._check_forces()
            self._trim()

    # -- internals -----------------------------------------------------------

    def _sub_majority_ts(self) -> int:
        """Highest ts known to at least a sub-majority of backups."""
        needed = sub_majority(self.configuration_size)
        if needed <= 0:
            return self.timestamp  # single-cohort group: primary alone suffices
        acks = sorted((self.acked.get(mid, 0) for mid in self.backups), reverse=True)
        if len(acks) < needed:
            return 0
        return acks[needed - 1]

    def _check_forces(self) -> None:
        if not self._pending_forces:
            return
        reached = self._sub_majority_ts()
        still_pending = []
        for force in self._pending_forces:
            if force.ts <= reached:
                force.deadline.cancel()
                force.future.set_result(None)
            else:
                still_pending.append(force)
        self._pending_forces = still_pending

    def _force_timed_out(self) -> None:
        if self.closed:
            return
        self._fail_forces("force timed out; communication with backups lost")
        self._on_force_failure()

    def _fail_forces(self, reason: str) -> None:
        pending, self._pending_forces = self._pending_forces, []
        for force in pending:
            force.deadline.cancel()
            if not force.future.done:
                force.future.set_exception(ForceAbandoned(reason))

    def _trim(self) -> None:
        """Drop records every current backup has acknowledged.

        The newview record is always retained (``_base_ts`` never passes
        ts=1 until all backups ack it), so late-added backups can still be
        brought up from the start of the view.
        """
        if self._retain_all or not self.acked:
            return
        min_ack = min(self.acked.values())
        if min_ack <= self._base_ts:
            return
        drop = min_ack - self._base_ts
        del self._records[:drop]
        self._base_ts = min_ack

    def close(self) -> None:
        """Abandon the buffer at the start of a view change."""
        if self.closed:
            return
        self.closed = True
        self._fail_forces("view change started")

    # -- introspection ---------------------------------------------------------

    @property
    def unforced_count(self) -> int:
        return self.timestamp - self._sub_majority_ts()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommunicationBuffer({self.viewid}, ts={self.timestamp}, "
            f"acked={self.acked}, pending_forces={len(self._pending_forces)})"
        )
