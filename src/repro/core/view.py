"""Views: a primary plus backups (paper Figure 1: ``view = <primary: int,
backups: {int}>``), always a subset of the configuration containing a
majority of group members."""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Tuple


def majority(n: int) -> int:
    """Smallest integer strictly greater than half of *n*."""
    return n // 2 + 1


def sub_majority(n: int) -> int:
    """One less than a majority (section 3): if a sub-majority of *backups*
    know an event, then together with the primary a majority of the
    configuration knows it."""
    return majority(n) - 1


@dataclasses.dataclass(frozen=True)
class View:
    """An ordered view: who is primary, who are backups."""

    primary: int
    backups: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.primary in self.backups:
            raise ValueError("primary cannot also be a backup")
        if len(set(self.backups)) != len(self.backups):
            raise ValueError("duplicate backups")

    @property
    def members(self) -> FrozenSet[int]:
        return frozenset((self.primary, *self.backups))

    def __contains__(self, mid: int) -> bool:
        return mid == self.primary or mid in self.backups

    def is_majority_of(self, configuration_size: int) -> bool:
        return len(self.members) >= majority(configuration_size)

    def __str__(self) -> str:
        return f"<primary={self.primary}, backups={sorted(self.backups)}>"

    def byte_size(self) -> int:
        return 8 * (1 + len(self.backups))
