"""Event records written to the communication buffer (paper section 2).

"The primary generates a new timestamp each time it needs to communicate
information to its backups; we refer to each such occurrence as an event...
An event record identifies the type of the event, and contains other
relevant information about the event."

Section 3.7 gives the correspondence with a conventional transaction system:
completed-call records play the role of data records forced to stable
storage before preparing; commit and abort records are their stable-storage
counterparts; there is deliberately *no* prepare record (the history plus
the pset in the prepare message replace it).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from repro.core.viewstamp import Viewstamp
from repro.txn.ids import Aid, CallId


@dataclasses.dataclass(frozen=True)
class ObjectEffect:
    """One object touched by a remote call: lock kind plus tentative writes.

    ``writes`` is a tuple of ``(subaction, value)`` pairs in write order;
    empty for read locks.  This is the "object-list" of Figure 3: "lists all
    objects used by the remote call, together with the type of lock acquired
    and the tentative version if any".
    """

    uid: str
    kind: str  # "read" | "write"
    writes: Tuple[Tuple[int, Any], ...] = ()
    read_version: Optional[int] = None  # object version seen at first read
    #                                     (consumed by the 1SR checker)


@dataclasses.dataclass(frozen=True)
class EventRecord:
    """Base class; ``kind`` mirrors the paper's record-name strings."""

    # Records are immutable once buffered yet re-shipped on every flush, so
    # repro.net.messages interns their wire size on first estimate.
    _size_cacheable = True

    @property
    def kind(self) -> str:
        return type(self).KIND  # type: ignore[attr-defined]


@dataclasses.dataclass(frozen=True)
class CompletedCall(EventRecord):
    """``<"completed-call", object-list, aid>`` (Figure 3)."""

    KIND = "completed-call"
    aid: Aid
    call_id: CallId
    effects: Tuple[ObjectEffect, ...]


@dataclasses.dataclass(frozen=True)
class Committing(EventRecord):
    """``<"committing", plist, aid>`` (Figure 2): coordinator commit point.

    ``plist`` lists only non-read-only participants -- "only these must take
    part in phase two".
    """

    KIND = "committing"
    aid: Aid
    plist: Tuple[str, ...]
    pset_pairs: Tuple = ()  # lets a new primary resume phase 2 with the pset


@dataclasses.dataclass(frozen=True)
class Committed(EventRecord):
    """``<"committed", aid>`` (Figure 3): participant learned the commit."""

    KIND = "committed"
    aid: Aid
    pset_pairs: Tuple = ()  # which calls' effects to install (subaction filter)


@dataclasses.dataclass(frozen=True)
class Aborted(EventRecord):
    """``<"aborted", aid>``: transaction aborted (either role)."""

    KIND = "aborted"
    aid: Aid


@dataclasses.dataclass(frozen=True)
class Done(EventRecord):
    """``<"done", aid>`` (Figure 2): all participants acknowledged commit."""

    KIND = "done"
    aid: Aid


@dataclasses.dataclass(frozen=True)
class ViewEdit(EventRecord):
    """Unilateral membership edit by an active primary (section 4.1).

    "One special case is when an active primary notices that it cannot
    communicate with a backup, but it still has a sub-majority of other
    backups.  In this case, the primary can unilaterally exclude the
    inaccessible backup from the view.  Similarly, an active primary can
    unilaterally add a backup to its view."  The paper gives no wire
    mechanism; we propagate the edit as an ordinary event record (see
    DESIGN.md) -- the force threshold stays keyed to the configuration, so
    safety is unaffected.
    """

    KIND = "view-edit"
    backups: Tuple[int, ...]  # new backup set (mids)


@dataclasses.dataclass(frozen=True)
class NewView(EventRecord):
    """``<"newview", ...>``: the first record of every view (Figure 5).

    "This record contains cur_view, history, and gstate."  Our gstate is the
    object snapshot plus the pending completed-call/committing records and
    the transaction-outcome table (section 3.3's compromise representation).
    """

    KIND = "newview"
    view: Any  # View (import cycle avoided; see repro.core.view)
    history_entries: Tuple[Viewstamp, ...]
    objects: Dict[str, Tuple[Any, int]]
    pending: Tuple[Tuple[Viewstamp, EventRecord], ...]
    outcomes: Dict[Aid, str]
    committing: Dict[Aid, Tuple[Tuple[str, ...], Tuple]]
