"""Wire messages of the viewstamped replication protocol.

Message names follow the paper: call/reply (section 3.1), prepare/commit/
abort and their replies (Figures 2-3), buffer traffic (section 2), queries
(section 3.4), I'm-alive/invite/accept/init-view (Figure 5), and the
coordinator-server requests of section 3.5.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Tuple

from repro.core.events import EventRecord
from repro.core.view import View
from repro.core.viewstamp import ViewId, Viewstamp
from repro.net.messages import Message
from repro.txn.ids import Aid, CallId

# ---------------------------------------------------------------------------
# transaction processing (sections 3.1-3.2)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class CallMsg(Message):
    """Remote procedure call to a server group's primary.

    Carries "the viewid from the cache, a unique call id ..., and
    information about the call itself (the procedure name and the
    arguments)" plus the transaction's aid and where to send the reply.
    ``piggyback`` is unused by VR itself; the Isis-style baseline rides the
    same message shapes with effect payloads attached (experiment E9).
    """

    viewid: ViewId
    call_id: CallId
    aid: Aid
    proc: str
    args: Tuple
    reply_to: str
    piggyback: Any = None
    aborted_subactions: Tuple[int, ...] = ()  # section 3.6: effects of these
    #                                           must be dropped before the
    #                                           call runs (a retried call may
    #                                           otherwise read its orphaned
    #                                           predecessor's tentative state)


@dataclasses.dataclass(slots=True)
class ReplyMsg(Message):
    """Successful call reply: result plus the call's pset pairs."""

    call_id: CallId
    result: Any
    pset_pairs: Tuple
    piggyback: Any = None


@dataclasses.dataclass(slots=True)
class CallFailedMsg(Message):
    """The call could not run (lock timeout, app error, group aborting)."""

    call_id: CallId
    reason: str


@dataclasses.dataclass(slots=True)
class ViewChangedMsg(Message):
    """Rejection: "the response to the rejected message contains information
    about the current viewid and primary if the cohort knows them"
    (section 3.3)."""

    call_id: Optional[CallId]
    viewid: Optional[ViewId]
    view: Optional[View]
    aid: Optional[Aid] = None
    groupid: str = ""


@dataclasses.dataclass(slots=True)
class PrepareMsg(Message):
    """Phase one: aid + pset (Figure 2 step 1)."""

    aid: Aid
    pset_pairs: Tuple
    coordinator: str
    aborted_subactions: Tuple[int, ...] = ()


@dataclasses.dataclass(slots=True)
class PrepareOkMsg(Message):
    """Participant acceptance; flags a read-only participant (Figure 3)."""

    aid: Aid
    groupid: str
    read_only: bool


@dataclasses.dataclass(slots=True)
class PrepareRefusedMsg(Message):
    """Participant refusal -- pset incompatible with its history."""

    aid: Aid
    groupid: str
    reason: str


@dataclasses.dataclass(slots=True)
class CommitMsg(Message):
    """Phase two commit.  Carries the pset so a participant primary that
    changed since prepare can still identify which calls' effects to
    install (see DESIGN.md on subaction filtering)."""

    aid: Aid
    pset_pairs: Tuple
    coordinator: str


@dataclasses.dataclass(slots=True)
class CommitAckMsg(Message):
    """Participant's "done message" after processing a commit (Figure 3)."""

    aid: Aid
    groupid: str


@dataclasses.dataclass(slots=True)
class AbortMsg(Message):
    """Abort notification; delivery is best-effort (section 3.4)."""

    aid: Aid


@dataclasses.dataclass(slots=True)
class SubactionAbortMsg(Message):
    """Best-effort notice that a subaction aborted (section 3.6)."""

    aid: Aid
    subaction: int


# ---------------------------------------------------------------------------
# queries (section 3.4)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class QueryMsg(Message):
    """Ask any cohort that might know: what happened to *aid*?"""

    aid: Aid
    reply_to: str


@dataclasses.dataclass(slots=True)
class QueryReplyMsg(Message):
    """Outcome: committed / aborted / active / unknown."""

    aid: Aid
    outcome: str
    pset_pairs: Tuple = ()


# ---------------------------------------------------------------------------
# communication buffer (section 2)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class BufferMsg(Message):
    """Primary -> backup: event records in timestamp order.

    ``records`` holds ``(ts, record)`` pairs starting just above the
    backup's last cumulative ack, so retransmission is implicit.

    ``sent_at`` is stamped in batched mode so buffer traffic doubles as an
    I'm-alive beacon (the receiver feeds its failure detector from it and
    the sender suppresses the redundant heartbeat).
    """

    viewid: ViewId
    records: Tuple[Tuple[int, EventRecord], ...]
    primary_ts: int
    sent_at: Optional[float] = None


@dataclasses.dataclass(slots=True)
class BufferAckMsg(Message):
    """Backup -> primary: cumulative ack of applied timestamps.

    ``sent_at`` serves the same piggybacked-liveness role as on
    :class:`BufferMsg` (batched mode only).  ``lease_until`` is a read
    lease grant riding the ack (reads enabled only): the sender promises
    not to help form a view whose primary may commit writes before this
    time without reporting the promise (see docs/READS.md)."""

    viewid: ViewId
    acked_ts: int
    mid: int
    sent_at: Optional[float] = None
    lease_until: Optional[float] = None
    agg: Tuple[Tuple[int, int], ...] = ()  # ack tree (repro.scale): the
    #                                 sender's subtree's (mid, acked_ts)
    #                                 pairs, aggregated up the fan-in tree;
    #                                 empty on the direct (paper) path


# ---------------------------------------------------------------------------
# view changes (section 4, Figure 5)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class ImAliveMsg(Message):
    """Periodic liveness beacon among cohorts of one configuration.

    ``sent_at`` stamps the sender's clock so the receiver's failure
    detector can derive a round-trip sample (the simulator's clock is
    global, so one-way delay doubled is exact).  Optional for
    compatibility with hand-built messages in tests.

    With reads enabled (:class:`~repro.config.ReadConfig`) the beacon
    doubles as lease traffic: a backup stamps ``lease_until`` on the copy
    sent to its current primary (a grant renewal), and an active primary
    stamps ``primary_ts`` -- its latest buffer timestamp -- so an idle
    backup whose applied prefix matches stays *fresh* for stale-bounded
    reads without any buffer traffic."""

    mid: int
    viewid: ViewId
    sent_at: Optional[float] = None
    lease_until: Optional[float] = None
    primary_ts: Optional[int] = None
    evidence: Tuple[Tuple[int, float], ...] = ()  # gossip (repro.scale):
    #                                 (mid, heard_at) liveness evidence the
    #                                 sender vouches for; receivers fold it
    #                                 into the detector via heard_relayed
    #                                 (never into the RTT estimator)


@dataclasses.dataclass(slots=True)
class InviteMsg(Message):
    """View manager's invitation to join view *viewid*."""

    viewid: ViewId
    manager_mid: int


@dataclasses.dataclass(slots=True)
class AcceptMsg(Message):
    """Acceptance of an invitation.

    "Normal" acceptances carry the acceptor's current viewstamp and whether
    it is the primary of its current view.  "Crashed" acceptances carry only
    its (stable-storage) viewid -- its gstate was lost (Figure 5,
    ``do_accept``).
    """

    viewid: ViewId  # the invitation being accepted
    mid: int
    crashed: bool
    viewstamp: Optional[Viewstamp]  # normal only
    was_primary: bool               # normal only
    crash_viewid: Optional[ViewId]  # crashed only
    view: Optional[View] = None     # normal only: the acceptor's cur_view
    #                                 (consumed by the extended formation
    #                                 rule; the paper's rule ignores it)
    lease_promises: Tuple[Tuple[int, float], ...] = ()  # reads enabled:
    #                                 (grantee mid, expiry) read-lease
    #                                 promises the acceptor may have
    #                                 outstanding; a crashed acceptor
    #                                 reports (-1, now + lease_duration)
    #                                 because its promises died with it
    witness: bool = False           # scale enabled: the acceptor is a
    #                                 bufferless witness -- its vote counts
    #                                 toward the majority, but it carries
    #                                 no event history and can never be
    #                                 chosen primary or a storage backup


@dataclasses.dataclass(slots=True)
class InitViewMsg(Message):
    """Manager -> chosen primary: "you start view *viewid* with *view*".

    ``lease_bound`` (reads enabled) is the latest expiry of any lease
    promise reported by the acceptances that formed the view and made to
    anyone other than the chosen primary; the new primary must not
    activate (and hence cannot commit writes) before it passes."""

    viewid: ViewId
    view: View
    lease_bound: float = 0.0


# ---------------------------------------------------------------------------
# view discovery (section 3: "communicates with members of the configuration
# to determine the current primary and viewid")
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class WitnessInstallMsg(Message):
    """New primary -> witness: adopt view *viewid* (repro.scale).

    Witnesses hold no event buffer, so they never receive the
    :class:`BufferMsg` that tells a storage backup a formed view started
    (``on_buffer_while_underling``).  The activating primary sends them
    this explicit notice instead; a witness stable-writes the viewid and
    adopts the view, exactly as a storage backup would on first buffer
    traffic."""

    viewid: ViewId
    view: View


@dataclasses.dataclass(slots=True)
class ViewProbeMsg(Message):
    """Ask a cohort which view it is in."""

    reply_to: str


@dataclasses.dataclass(slots=True)
class ViewProbeReplyMsg(Message):
    """A cohort's notion of the current view (None if it is mid-change)."""

    groupid: str
    viewid: Optional[ViewId]
    view: Optional[View]
    active: bool


# ---------------------------------------------------------------------------
# read-dominant serving path (repro.reads; beyond the paper)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class ReadMsg(Message):
    """Driver -> cohort: read one object's committed value.

    Served locally by a primary holding a valid quorum lease, or by a
    backup from its applied prefix when the prefix's staleness is within
    ``max_staleness`` (None = the configured default bound).  Bypasses
    the event buffer entirely; rejected with a :class:`ReadRejectMsg`
    when neither mode applies."""

    request_id: int
    uid: str
    reply_to: str
    max_staleness: Optional[float] = None


@dataclasses.dataclass(slots=True)
class ReadReplyMsg(Message):
    """A served read: the committed value, the viewstamp the serving
    cohort's state reflects, how it was served (``lease`` at a primary,
    ``backup`` from an applied prefix), and the staleness bound the
    server vouches for (0.0 for leased reads)."""

    request_id: int
    uid: str
    value: Any
    viewstamp: Viewstamp
    mode: str  # "lease" | "backup"
    staleness: float
    groupid: str


@dataclasses.dataclass(slots=True)
class ReadRejectMsg(Message):
    """The cohort cannot serve the read: reads disabled, no valid lease,
    not active, or the applied prefix is staler than the bound.  Carries
    current view info (like :class:`ViewChangedMsg`) when known so the
    driver can redirect without a probe."""

    request_id: int
    reason: str  # "reads_disabled" | "no_lease" | "not_active" | "too_stale"
    groupid: str
    viewid: Optional[ViewId] = None
    view: Optional[View] = None
    staleness: Optional[float] = None  # too_stale: the actual staleness


# ---------------------------------------------------------------------------
# client-group transaction intake (driver -> client group primary)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class TxnRequestMsg(Message):
    """A workload driver asks the client-group primary to run a program."""

    request_id: int
    program: str
    args: Tuple
    reply_to: str


@dataclasses.dataclass(slots=True)
class TxnOutcomeMsg(Message):
    """Final outcome of a driver-submitted transaction."""

    request_id: int
    outcome: str  # committed | aborted
    result: Any
    aid: Optional[Aid]


# ---------------------------------------------------------------------------
# coordinator-server (section 3.5)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class BeginTxnMsg(Message):
    """Unreplicated client registers a transaction with the
    coordinator-server group and obtains an aid."""

    request_id: int
    client: str


@dataclasses.dataclass(slots=True)
class BeginTxnReplyMsg(Message):
    request_id: int
    aid: Optional[Aid]


@dataclasses.dataclass(slots=True)
class FinishTxnMsg(Message):
    """Client asks the coordinator-server to commit (runs 2PC) or abort."""

    aid: Aid
    decision: str  # "commit" | "abort"
    pset_pairs: Tuple
    aborted_subactions: Tuple[int, ...]
    client: str


@dataclasses.dataclass(slots=True)
class FinishTxnReplyMsg(Message):
    aid: Aid
    outcome: str  # committed | aborted


@dataclasses.dataclass(slots=True)
class ClientProbeMsg(Message):
    """Coordinator-server checks whether its client is still alive before
    unilaterally aborting an apparently-active transaction (section 3.5)."""

    aid: Aid


@dataclasses.dataclass(slots=True)
class ClientProbeReplyMsg(Message):
    aid: Aid
    active: bool
