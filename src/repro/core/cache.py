"""The client's local cache of (viewid, view, primary) per server group.

Section 3.1: "To make a remote call, the system looks up the primary and
viewid for the group in its cache, initializing the cache if necessary...
If the reply indicates that the view has changed, update the cache, if
possible."  The cache only ever moves forward: stale information (an older
viewid) never overwrites newer.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.view import View
from repro.core.viewstamp import ViewId


@dataclasses.dataclass
class CacheEntry:
    viewid: ViewId
    view: View
    primary_address: str


class ClientCache:
    """Per-module cache mapping groupid -> current (viewid, view, primary)."""

    def __init__(self) -> None:
        self._entries: Dict[str, CacheEntry] = {}

    def get(self, groupid: str) -> Optional[CacheEntry]:
        return self._entries.get(groupid)

    def update(
        self,
        groupid: str,
        viewid: Optional[ViewId],
        view: Optional[View],
        primary_address: Optional[str],
    ) -> bool:
        """Install newer view information; returns True if the cache moved."""
        if viewid is None or view is None or primary_address is None:
            return False
        current = self._entries.get(groupid)
        if current is not None and current.viewid >= viewid:
            return False
        self._entries[groupid] = CacheEntry(
            viewid=viewid, view=view, primary_address=primary_address
        )
        return True

    def invalidate(self, groupid: str) -> None:
        self._entries.pop(groupid, None)

    def __contains__(self, groupid: str) -> bool:
        return groupid in self._entries
