"""Viewstamps, viewids, and histories (paper section 2).

A *viewid* identifies a view and is totally ordered; the order is
``(counter, module id)`` lexicographically, so a view manager always
generates a viewid greater than any it has seen by bumping the counter
(Figure 5, ``make_invitations``), and two managers can never mint the same
viewid because their mids differ.

A *viewstamp* is a timestamp concatenated with the viewid of the view in
which the timestamp was generated: ``<id: viewid, ts: int>``.  Timestamps
are meaningful only within a view; comparing viewstamps across views orders
first by viewid.

A *history* is a sequence of viewstamps, each with a different viewid, in
ascending viewid order.  The invariant (section 2): for each viewstamp ``v``
in the history, the cohort's state reflects event ``e`` from view ``v.id``
iff ``e``'s timestamp is <= ``v.ts``.

``compatible`` and ``vs_max`` are the predicates of section 3.2, verbatim.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Tuple


@dataclasses.dataclass(frozen=True, order=True)
class ViewId:
    """``viewid = <cnt: int, mid: int>`` -- totally ordered, globally unique."""

    cnt: int
    mid: int

    def next_for(self, mid: int) -> "ViewId":
        """The viewid a manager with *mid* mints after seeing this one."""
        return ViewId(self.cnt + 1, mid)

    def __str__(self) -> str:
        return f"v{self.cnt}.{self.mid}"


@dataclasses.dataclass(frozen=True, order=True)
class Viewstamp:
    """``viewstamp = <id: viewid, ts: int>``.

    The dataclass ordering (viewid first, then timestamp) is exactly the
    cross-view order the view-change algorithm needs when picking the
    cohort "returning the largest viewstamp" (section 4).
    """

    id: ViewId
    ts: int

    def __str__(self) -> str:
        return f"{self.id}:{self.ts}"


class History:
    """The per-cohort sequence of viewstamps, one per view it has been in.

    Mutating operations preserve the representation invariants: ascending,
    unique viewids; timestamps never decrease within a view.
    """

    def __init__(self, entries: Optional[Iterable[Viewstamp]] = None):
        self._entries: list[Viewstamp] = list(entries) if entries else []
        self._check()

    def _check(self) -> None:
        for earlier, later in zip(self._entries, self._entries[1:]):
            if earlier.id >= later.id:
                raise ValueError(f"history viewids not ascending: {self._entries}")

    # -- accessors ----------------------------------------------------------

    def entries(self) -> Tuple[Viewstamp, ...]:
        return tuple(self._entries)

    @property
    def latest(self) -> Viewstamp:
        """The cohort's "current viewstamp" (used in normal acceptances)."""
        if not self._entries:
            raise ValueError("empty history has no latest viewstamp")
        return self._entries[-1]

    def ts_for(self, viewid: ViewId) -> Optional[int]:
        """The highest timestamp this history covers for *viewid*, if any."""
        for entry in self._entries:
            if entry.id == viewid:
                return entry.ts
        return None

    def knows(self, viewstamp: Viewstamp) -> bool:
        """Does state reflecting this history include the given event?"""
        ts = self.ts_for(viewstamp.id)
        return ts is not None and viewstamp.ts <= ts

    # -- mutation -------------------------------------------------------------

    def open_view(self, viewid: ViewId) -> None:
        """Append ``<viewid, 0>`` -- Figure 5's ``start_view`` step."""
        if self._entries and viewid <= self._entries[-1].id:
            raise ValueError(
                f"cannot open {viewid} after {self._entries[-1].id}"
            )
        self._entries.append(Viewstamp(viewid, 0))

    def advance(self, viewid: ViewId, ts: int) -> None:
        """Record that events of *viewid* up to *ts* are now reflected."""
        if not self._entries or self._entries[-1].id != viewid:
            raise ValueError(f"{viewid} is not the history's current view")
        if ts < self._entries[-1].ts:
            raise ValueError(
                f"timestamp regression in {viewid}: "
                f"{self._entries[-1].ts} -> {ts}"
            )
        self._entries[-1] = Viewstamp(viewid, ts)

    def copy(self) -> "History":
        return History(self._entries)

    # -- dunder --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, History) and self._entries == other._entries

    def __repr__(self) -> str:
        return f"History([{', '.join(str(e) for e in self._entries)}])"

    def byte_size(self) -> int:
        return 16 * len(self._entries)


def compatible(pset_pairs, groupid: str, history: History) -> bool:
    """Section 3.2's ``compatible(ps, g, vh)`` predicate, verbatim.

    True iff for every pair in the pset for group *g*, there is a history
    entry with the same viewid whose timestamp covers the pair's.  A primary
    may agree to prepare only if this holds -- otherwise some remote call
    of the transaction was lost in a view change.
    """
    for pair in pset_pairs:
        if pair.groupid != groupid:
            continue
        if not history.knows(pair.vs):
            return False
    return True


def vs_max(pset_pairs, groupid: str) -> Optional[Viewstamp]:
    """Section 3.2's ``vs_max(ps, g)``: the latest viewstamp for group *g*.

    Returns None when the pset holds no pair for *g* (the paper's definition
    presupposes at least one; callers treat None as "nothing to force").
    """
    best: Optional[Viewstamp] = None
    for pair in pset_pairs:
        if pair.groupid != groupid:
            continue
        if best is None or pair.vs > best:
            best = pair.vs
    return best
