"""The viewstamped replication protocol (the paper's contribution).

Layout mirrors the paper:

- :mod:`repro.core.viewstamp` -- viewids, viewstamps, histories (section 2)
- :mod:`repro.core.events`, :mod:`repro.core.buffer` -- event records and
  the communication buffer (sections 2-3)
- :mod:`repro.core.cohort` -- the cohort state machine (Figures 1, 4)
- :mod:`repro.core.client_role` -- Figure 2 (client primaries, 2PC)
- :mod:`repro.core.server_role` -- Figure 3 (server primaries)
- :mod:`repro.core.view_change` -- Figure 5 (the view change algorithm)
- :mod:`repro.core.group` -- module-group wiring
- :mod:`repro.core.coordinator_server` -- section 3.5
"""

from repro.core.buffer import CommunicationBuffer, ForceAbandoned
from repro.core.cache import ClientCache
from repro.core.calls import CallAborted, RemoteCaller
from repro.core.cohort import Cohort, Status
from repro.core.group import ModuleGroup
from repro.core.view import View, majority, sub_majority
from repro.core.viewstamp import History, ViewId, Viewstamp, compatible, vs_max

__all__ = [
    "CallAborted",
    "ClientCache",
    "Cohort",
    "CommunicationBuffer",
    "ForceAbandoned",
    "History",
    "ModuleGroup",
    "RemoteCaller",
    "Status",
    "View",
    "ViewId",
    "Viewstamp",
    "compatible",
    "majority",
    "sub_majority",
    "vs_max",
]
