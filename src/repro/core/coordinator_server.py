"""The coordinator-server (paper section 3.5).

"If the client is not replicated, it is still desirable for the coordinator
to be highly available, since this can reduce the 'window of vulnerability'
in two-phase commit.  This can be accomplished by providing a replicated
coordinator-server.  The client communicates with such a server when it
starts a transaction, and when it commits or aborts the transaction.  The
coordinator-server carries out two-phase commit as described above on the
client's behalf.  It also responds to queries about the outcome of the
transaction; its groupid is part of the transaction's aid, so that
participants know who it is.  In answering a query about a transaction that
appears to still be active, it would check with the client, but if no reply
is forthcoming, it can abort the transaction unilaterally."
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from repro.core import messages as m
from repro.core.events import Aborted
from repro.txn.ids import Aid


@dataclasses.dataclass
class _ExternalTxn:
    client: str
    status: str = "active"  # active | finishing | done
    probe_timer: Any = None
    probing_since: Optional[float] = None


class CoordinatorServerRole:
    """Runs 2PC on behalf of unreplicated clients (section 3.5).

    Hosted by every cohort; only the active primary processes requests.
    The registry of active external transactions is volatile: after a view
    change, outcomes are recovered through the usual machinery (surviving
    committing records are resumed; everything else is inferably aborted).
    """

    def __init__(self, cohort):
        self.cohort = cohort
        self.registry: Dict[Aid, _ExternalTxn] = {}

    def reset(self) -> None:
        self.registry.clear()

    def on_leave_active(self) -> None:
        for state in self.registry.values():
            if state.probe_timer is not None:
                state.probe_timer.cancel()
        self.registry.clear()

    def is_active(self, aid: Aid) -> bool:
        state = self.registry.get(aid)
        return state is not None and state.status != "done"

    # ------------------------------------------------------------------
    # begin / finish
    # ------------------------------------------------------------------

    def on_begin(self, msg: m.BeginTxnMsg) -> None:
        cohort = self.cohort
        aid = cohort.client_role.mint_aid()
        self.registry[aid] = _ExternalTxn(client=msg.client)
        cohort.send(msg.client, m.BeginTxnReplyMsg(request_id=msg.request_id, aid=aid))

    def on_finish(self, msg: m.FinishTxnMsg) -> None:
        cohort = self.cohort
        aid = msg.aid
        known = cohort.outcomes.get(aid)
        if known is not None:
            # Retry of a finish we already decided (reply was lost).
            cohort.send(msg.client, m.FinishTxnReplyMsg(aid=aid, outcome=known))
            return
        state = self.registry.get(aid)
        if state is not None and state.status == "finishing":
            return  # duplicate request while 2PC runs; reply comes later
        if state is None:
            # We are a new primary: re-admit the transaction (safe -- see
            # DESIGN.md; prepare is idempotent and the pset travels with
            # the request).
            state = _ExternalTxn(client=msg.client)
            self.registry[aid] = state
        if msg.decision == "abort":
            self._abort_external(aid, msg.pset_pairs)
            cohort.send(msg.client, m.FinishTxnReplyMsg(aid=aid, outcome="aborted"))
            return
        state.status = "finishing"
        future = cohort.client_role.coordinate_external(
            aid, msg.pset_pairs, msg.aborted_subactions
        )

        def report(done) -> None:
            if done.exception() is not None:
                return
            outcome, _result = done.result()
            current = self.registry.get(aid)
            if current is not None:
                current.status = "done"
            if cohort.is_active_primary and outcome in ("committed", "aborted"):
                cohort.send(
                    msg.client, m.FinishTxnReplyMsg(aid=aid, outcome=outcome)
                )

        future.add_done_callback(report)

    def _abort_external(self, aid: Aid, pset_pairs) -> None:
        cohort = self.cohort
        groups = {pair.groupid for pair in pset_pairs}
        for groupid in sorted(groups):
            if cohort.config.batch.enabled and groupid == cohort.mygroupid:
                # Own-group participant: abort synchronously instead of
                # mailing ourselves (mirrors ClientRole._abort_txn).
                cohort.server_role.on_abort(m.AbortMsg(aid=aid))
                continue
            entry = cohort.cache.get(groupid)
            if entry is not None:
                cohort.send(entry.primary_address, m.AbortMsg(aid=aid))
            else:
                for _mid, address in cohort.locate(groupid):
                    cohort.send(address, m.AbortMsg(aid=aid))
        cohort.add_record(Aborted(aid=aid))
        cohort.runtime.ledger.record_abort(aid, "client requested abort")
        state = self.registry.get(aid)
        if state is not None:
            state.status = "done"

    # ------------------------------------------------------------------
    # "check with the client" before unilateral abort
    # ------------------------------------------------------------------

    def on_query_for_active(self, aid: Aid) -> None:
        """A participant asked about a still-active external transaction;
        make sure its client is actually alive."""
        cohort = self.cohort
        state = self.registry.get(aid)
        if state is None or state.status != "active":
            return
        if state.probe_timer is not None:
            return  # probe already outstanding
        cohort.send(state.client, m.ClientProbeMsg(aid=aid))
        state.probing_since = cohort.sim.now
        state.probe_timer = cohort.set_timer(
            cohort.config.call_timeout * 2, self._probe_timed_out, aid
        )

    def _probe_timed_out(self, aid: Aid) -> None:
        cohort = self.cohort
        state = self.registry.get(aid)
        if state is None or state.status != "active":
            return
        if not cohort.is_active_primary:
            return
        # "If no reply is forthcoming, it can abort the transaction
        # unilaterally."
        state.status = "done"
        state.probe_timer = None
        cohort.add_record(Aborted(aid=aid))
        cohort.runtime.ledger.record_abort(aid, "client unresponsive; unilateral abort")
        cohort.metrics.incr(f"client_abandoned_aborts:{cohort.mygroupid}")

    def on_probe_reply(self, msg: m.ClientProbeReplyMsg) -> None:
        state = self.registry.get(msg.aid)
        if state is None:
            return
        if state.probe_timer is not None:
            state.probe_timer.cancel()
            state.probe_timer = None
        if not msg.active and state.status == "active":
            self._probe_timed_out_now(msg.aid)

    def _probe_timed_out_now(self, aid: Aid) -> None:
        state = self.registry.get(aid)
        if state is not None:
            state.probe_timer = None
        self._probe_timed_out(aid)
