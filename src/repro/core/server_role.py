"""Server-side transaction processing (paper Figure 3, sections 3.2-3.4).

At the active primary of a server group:

- **calls** run as processes (they may block on locks and make nested
  calls); completion adds a completed-call record to the buffer and returns
  the reply with the call's pset pairs;
- **prepare** checks ``compatible(pset, mygroupid, history)``, forces
  ``vs_max(pset, mygroupid)``, releases read locks, and accepts (flagging
  read-only participants) or refuses and aborts;
- **commit** installs tentative versions, adds and forces a committed
  record, then acknowledges;
- **abort** discards locks and versions and adds an aborted record;
- a **janitor** periodically queries coordinators about transactions whose
  outcome never arrived (section 3.4) and unilaterally aborts *unprepared*
  transactions whose coordinator is unreachable (a participant that has not
  voted may always abort).
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Dict, Optional, Set, Tuple

from repro.app.context import CallContext, TransactionAborted
from repro.core import messages as m
from repro.core.calls import CallAborted
from repro.core.events import Aborted, Committed, CompletedCall
from repro.core.viewstamp import compatible, vs_max
from repro.sim.errors import CancelledError
from repro.txn.ids import Aid, CallId
from repro.txn.pset import PSetPair


@dataclasses.dataclass
class _PreparedState:
    coordinator: str
    pset_pairs: Tuple
    queries_sent: int = 0


class ServerRole:
    """Figure 3 behaviour, hosted by a cohort."""

    def __init__(self, cohort):
        self.cohort = cohort
        self.executed: Dict[CallId, m.ReplyMsg] = {}
        self.in_progress: Set[CallId] = set()
        self.known_stale_calls: Set[CallId] = set()  # ran before a view change
        self.prepared: Dict[Aid, _PreparedState] = {}
        self._unprepared_queries: Dict[Aid, int] = {}
        self._call_procs: list = []
        self._janitor_timer = None
        self._query_counter = 0  # batched mode: round-robin query fan-out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.executed.clear()
        self.in_progress.clear()
        self.known_stale_calls.clear()
        self.prepared.clear()
        self._unprepared_queries.clear()
        self._call_procs = []
        self._janitor_timer = None

    def on_leave_active(self) -> None:
        for process in self._call_procs:
            if not process.done:
                process.interrupt()
        self._call_procs = []
        self.in_progress.clear()
        self.executed.clear()
        self.prepared.clear()
        self._unprepared_queries.clear()
        if self._janitor_timer is not None:
            self._janitor_timer.cancel()
            self._janitor_timer = None

    def on_become_primary(self) -> None:
        """Rebuild duplicate-detection state from surviving records and
        start the outcome janitor."""
        self.known_stale_calls = {
            record.call_id
            for calls in self.cohort.pending.values()
            for record in calls.values()
        }
        self._arm_janitor()

    def _arm_janitor(self) -> None:
        cohort = self.cohort
        epoch = cohort._epoch

        def tick() -> None:
            if cohort._epoch != epoch or not cohort.is_active_primary:
                return
            self._janitor_sweep()
            self._janitor_timer = cohort.set_timer(cohort.config.query_interval, tick)

        self._janitor_timer = cohort.set_timer(cohort.config.query_interval, tick)

    # ------------------------------------------------------------------
    # calls (Figure 3: "processing a call")
    # ------------------------------------------------------------------

    def on_call(self, msg: m.CallMsg) -> None:
        cohort = self.cohort
        if msg.viewid != cohort.cur_viewid:
            cohort.send(
                msg.reply_to,
                m.ViewChangedMsg(
                    call_id=msg.call_id,
                    viewid=cohort.cur_viewid,
                    view=cohort.cur_view,
                    groupid=cohort.mygroupid,
                ),
            )
            return
        cached = self.executed.get(msg.call_id)
        if cached is not None:
            cohort.send(msg.reply_to, cached)  # lost-reply probe: re-send
            return
        if msg.call_id in self.in_progress:
            return  # reply will go out when the first delivery finishes
        if msg.call_id in self.known_stale_calls:
            # The call ran before a view change and its result is gone; the
            # client must abort ("to resolve this uncertainty, we abort").
            cohort.send(
                msg.reply_to,
                m.CallFailedMsg(call_id=msg.call_id, reason="duplicate across view change"),
            )
            return
        outcome = cohort.outcomes.get(msg.aid)
        if outcome is not None:
            cohort.send(
                msg.reply_to,
                m.CallFailedMsg(
                    call_id=msg.call_id, reason=f"transaction already {outcome}"
                ),
            )
            return
        for subaction in msg.aborted_subactions:
            # Drop orphaned predecessors' effects before running (3.6):
            # a retried call must not observe its aborted attempt's state.
            self.on_subaction_abort(
                m.SubactionAbortMsg(aid=msg.aid, subaction=subaction)
            )
        self.in_progress.add(msg.call_id)
        process = cohort.spawn(self._run_call(msg), name=f"call:{msg.call_id}")
        self._call_procs.append(process)
        if len(self._call_procs) > 32:
            self._call_procs = [p for p in self._call_procs if not p.done]

    def _run_call(self, msg: m.CallMsg):
        cohort = self.cohort
        ctx = CallContext(cohort, msg.aid, msg.call_id)
        try:
            procedure = cohort.spec.procedure_named(msg.proc)
            generated = procedure(ctx, *msg.args)
            if inspect.isgenerator(generated):
                result = yield from generated
            else:
                result = generated
        except (TransactionAborted, CallAborted) as error:
            self._fail_call(msg, str(error))
            return
        except CancelledError:
            self.in_progress.discard(msg.call_id)
            return  # view change interrupted us; no reply
        except Exception as error:
            # A buggy module procedure (TypeError, KeyError, ...) must not
            # wedge the group: without this, the call process dies holding
            # its locks and never replies, so the coordinator times out
            # while every later transaction on those objects queues behind
            # a dead lock.  Fail the call like an abort instead.
            self._fail_call(msg, f"{type(error).__name__}: {error}")
            return
        self.in_progress.discard(msg.call_id)
        if not cohort.is_active_primary:
            return
        record = CompletedCall(
            aid=msg.aid, call_id=msg.call_id, effects=ctx.effects()
        )
        viewstamp = cohort.add_record(record)
        if cohort.config.force_on_call:
            # Ablation (section 6): forcing completed-call records before
            # the reply removes view-change aborts but slows every call.
            try:
                yield cohort.force_to(viewstamp)
            except Exception:
                return  # force abandoned; view change in progress
            if not cohort.is_active_primary:
                return
        self._unprepared_queries.setdefault(msg.aid, 0)
        pairs = (PSetPair(cohort.mygroupid, viewstamp),) + ctx.nested_pset_pairs()
        reply = m.ReplyMsg(
            call_id=msg.call_id, result=result, pset_pairs=pairs, piggyback=None
        )
        self.executed[msg.call_id] = reply
        if len(self.executed) > 4096:
            # Bound the duplicate-suppression reply cache: evict the oldest
            # quarter (dicts preserve insertion order).  A probe for an
            # evicted ancient call would fail the call, which aborts its
            # transaction -- safe, and in practice probes come seconds, not
            # thousands of calls, after the original.
            for old_id in list(self.executed)[:1024]:
                del self.executed[old_id]
        cohort.send(msg.reply_to, reply)
        cohort.metrics.incr(f"calls_completed:{cohort.mygroupid}")

    def _fail_call(self, msg: m.CallMsg, reason: str) -> None:
        """Release a failed call's footprint and tell the caller."""
        cohort = self.cohort
        self.in_progress.discard(msg.call_id)
        cohort.lockmgr.cancel_waits(msg.aid)
        if msg.aid in cohort.pending:
            # Other calls of this transaction completed here: keep their
            # locks, drop only the failed attempt's tentative writes.
            # The coordinator's abort message cleans up the rest.
            cohort.lockmgr.discard_subaction(msg.aid, msg.call_id.subaction)
        else:
            # No other footprint at this group: release everything the
            # failed call acquired (the coordinator will not send us an
            # abort -- we are not in its pset).
            cohort.lockmgr.discard(msg.aid)
        if cohort.is_active_primary:
            cohort.send(
                msg.reply_to,
                m.CallFailedMsg(call_id=msg.call_id, reason=reason),
            )

    # ------------------------------------------------------------------
    # prepare (Figure 3: "processing a prepare message")
    # ------------------------------------------------------------------

    def on_prepare(self, msg: m.PrepareMsg) -> None:
        cohort = self.cohort
        aid = msg.aid
        outcome = cohort.outcomes.get(aid)
        if outcome == "aborted":
            self._trace_prepare(aid, "refused", reason="already aborted")
            cohort.send(
                msg.coordinator,
                m.PrepareRefusedMsg(
                    aid=aid, groupid=cohort.mygroupid, reason="already aborted"
                ),
            )
            return
        if outcome == "committed":
            # Duplicate prepare after commit: the earlier accept was lost.
            cohort.send(
                msg.coordinator,
                m.PrepareOkMsg(aid=aid, groupid=cohort.mygroupid, read_only=False),
            )
            return
        self._drop_orphan_calls(aid, msg.pset_pairs, msg.aborted_subactions)
        if not cohort.config.viewstamp_checks and any(
            pair.groupid == cohort.mygroupid and pair.vs.id != cohort.cur_viewid
            for pair in msg.pset_pairs
        ):
            # Ablation: the virtual-partitions rule -- a transaction that
            # was active across a view change cannot prepare (section 5).
            self._local_abort(aid)
            self._trace_prepare(aid, "refused", reason="active across a view change")
            cohort.send(
                msg.coordinator,
                m.PrepareRefusedMsg(
                    aid=aid,
                    groupid=cohort.mygroupid,
                    reason="active across a view change (no viewstamps)",
                ),
            )
            cohort.metrics.incr(f"prepares_refused:{cohort.mygroupid}")
            return
        if not compatible(msg.pset_pairs, cohort.mygroupid, cohort.history):
            # Some call of this transaction was lost in a view change.
            self._local_abort(aid)
            self._trace_prepare(aid, "refused", reason="pset incompatible with history")
            cohort.send(
                msg.coordinator,
                m.PrepareRefusedMsg(
                    aid=aid,
                    groupid=cohort.mygroupid,
                    reason="pset incompatible with history",
                ),
            )
            cohort.metrics.incr(f"prepares_refused:{cohort.mygroupid}")
            return
        target = vs_max(msg.pset_pairs, cohort.mygroupid)
        force = cohort.force_to(target)
        if not force.done:
            cohort.metrics.incr(f"prepare_force_waits:{cohort.mygroupid}")
        epoch = cohort._epoch

        def after_force(future) -> None:
            if future.exception() is not None:
                return  # force abandoned; a view change is under way
            if cohort._epoch != epoch or not cohort.is_active_primary:
                return
            self._finish_prepare(msg)

        force.add_done_callback(after_force)

    def _finish_prepare(self, msg: m.PrepareMsg) -> None:
        cohort = self.cohort
        aid = msg.aid
        cohort.lockmgr.release_reads(aid)
        write_locks = cohort.lockmgr.locks_held_by(aid)
        read_only = not write_locks
        if read_only:
            # "If the transaction is read-only, add a committed record."
            self._ledger_effects(aid)
            record = Committed(aid=aid, pset_pairs=tuple(msg.pset_pairs))
            cohort.add_record(record)
            self._unprepared_queries.pop(aid, None)
        else:
            self.prepared[aid] = _PreparedState(
                coordinator=msg.coordinator, pset_pairs=tuple(msg.pset_pairs)
            )
            self._unprepared_queries.pop(aid, None)
        self._trace_prepare(aid, "accepted", read_only=read_only)
        self._send_or_deliver_locally(
            msg.coordinator,
            m.PrepareOkMsg(aid=aid, groupid=cohort.mygroupid, read_only=read_only),
        )
        cohort.metrics.incr(f"prepares_accepted:{cohort.mygroupid}")

    def _send_or_deliver_locally(self, destination: str, message) -> None:
        """Batched mode: a reply addressed to our own cohort skips the
        network (this group coordinates a transaction on itself -- the
        sharded single-key path).  Unbatched, everything goes on the wire,
        reproducing the paper's message pattern exactly."""
        cohort = self.cohort
        if cohort.config.batch.enabled and destination == cohort.address:
            if isinstance(message, m.PrepareOkMsg):
                cohort.client_role.on_prepare_ok(message)
            elif isinstance(message, m.CommitAckMsg):
                cohort.client_role.on_commit_ack(message)
            else:  # pragma: no cover - only the two replies above shortcut
                cohort.send(destination, message)
            return
        cohort.send(destination, message)

    def _drop_orphan_calls(
        self, aid: Aid, pset_pairs, aborted_subactions: Tuple[int, ...]
    ) -> None:
        """Discard effects of subactions the transaction aborted (section
        3.6).  A surviving completed-call record whose viewstamp is not in
        the pset belongs to an orphaned call attempt."""
        cohort = self.cohort
        calls = cohort.pending.get(aid)
        if not calls:
            return
        allowed = {
            pair.vs for pair in pset_pairs if pair.groupid == cohort.mygroupid
        }
        for viewstamp in list(calls):
            record = calls[viewstamp]
            orphan = viewstamp not in allowed or (
                record.call_id.subaction in aborted_subactions
            )
            if orphan:
                cohort.lockmgr.discard_subaction(aid, record.call_id.subaction)
                del calls[viewstamp]

    def _trace_prepare(self, aid: Aid, decision: str, **detail) -> None:
        cohort = self.cohort
        if cohort.tracer is not None:
            cohort.tracer.emit(
                "prepare_decision",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                aid=str(aid),
                decision=decision,
                **detail,
            )

    def _local_abort(self, aid: Aid) -> None:
        cohort = self.cohort
        cohort.lockmgr.discard(aid)
        cohort.add_record(Aborted(aid=aid))
        self.prepared.pop(aid, None)
        self._unprepared_queries.pop(aid, None)
        if cohort.tracer is not None:
            cohort.tracer.emit(
                "abort_applied",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                aid=str(aid),
            )

    # ------------------------------------------------------------------
    # commit / abort (Figure 3)
    # ------------------------------------------------------------------

    def on_commit(self, msg: m.CommitMsg) -> None:
        self._perform_commit(msg.aid, msg.pset_pairs, ack_to=msg.coordinator)

    def _perform_commit(self, aid: Aid, pset_pairs, ack_to: Optional[str]) -> None:
        cohort = self.cohort
        already_installed = (
            cohort.outcomes.get(aid) == "committed"
            and aid not in self.prepared
            and aid not in cohort.pending
        )
        if already_installed:
            # A known outcome alone is not enough to skip the install: when
            # this group coordinates a transaction on itself (a sharded
            # group's single-key path), the client role records "committed"
            # before our own CommitMsg arrives, while write locks are still
            # held and pending/prepared still name the aid.
            if ack_to is not None:
                self._send_or_deliver_locally(
                    ack_to, m.CommitAckMsg(aid=aid, groupid=cohort.mygroupid)
                )
            return
        self._drop_orphan_calls(aid, pset_pairs, ())
        self._ledger_effects(aid, will_install=True)
        cohort.lockmgr.install(aid)
        record = Committed(aid=aid, pset_pairs=tuple(pset_pairs))
        viewstamp = cohort.add_record(record)
        self.prepared.pop(aid, None)
        self._unprepared_queries.pop(aid, None)
        if cohort.tracer is not None:
            cohort.tracer.emit(
                "commit_applied",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                aid=str(aid),
                ts=viewstamp.ts,
            )
        force = cohort.force_to(viewstamp)
        epoch = cohort._epoch

        def after_force(future) -> None:
            if future.exception() is not None:
                return
            if cohort._epoch != epoch or not cohort.is_active_primary:
                return
            if ack_to is not None:
                self._send_or_deliver_locally(
                    ack_to, m.CommitAckMsg(aid=aid, groupid=cohort.mygroupid)
                )

        force.add_done_callback(after_force)

    def on_abort(self, msg: m.AbortMsg) -> None:
        cohort = self.cohort
        aid = msg.aid
        if cohort.outcomes.get(aid) is not None:
            return
        if aid in cohort.pending or aid in self.prepared:
            self._local_abort(aid)
            cohort.metrics.incr(f"aborts_processed:{cohort.mygroupid}")

    def on_subaction_abort(self, msg: m.SubactionAbortMsg) -> None:
        """Best-effort early cleanup of an aborted subaction's effects."""
        cohort = self.cohort
        calls = cohort.pending.get(msg.aid)
        if not calls:
            return
        for viewstamp in list(calls):
            if calls[viewstamp].call_id.subaction == msg.subaction:
                cohort.lockmgr.discard_subaction(msg.aid, msg.subaction)
                del calls[viewstamp]

    # ------------------------------------------------------------------
    # outcome queries (section 3.4)
    # ------------------------------------------------------------------

    def _janitor_sweep(self) -> None:
        cohort = self.cohort
        for aid, state in list(self.prepared.items()):
            state.queries_sent += 1
            self._send_query(aid)
        for aid in list(self._unprepared_queries):
            if aid in self.prepared or aid not in cohort.pending:
                self._unprepared_queries.pop(aid, None)
                continue
            tries = self._unprepared_queries[aid] + 1
            self._unprepared_queries[aid] = tries
            if tries <= 2:
                continue  # give the transaction time to finish normally
            if tries >= 6:
                # Unreachable coordinator and we never voted: a participant
                # may abort unilaterally before preparing.
                self._local_abort(aid)
                cohort.metrics.incr(f"unilateral_aborts:{cohort.mygroupid}")
                continue
            self._send_query(aid)

    def _send_query(self, aid: Aid) -> None:
        cohort = self.cohort
        try:
            members = cohort.locate(aid.groupid)
        except KeyError:
            return
        if cohort.config.batch.enabled and len(members) > 1:
            # Batched mode: ask one coordinator cohort per sweep instead of
            # fanning out to the whole group; the round-robin still reaches
            # every member across consecutive sweeps, so a lone survivor is
            # eventually asked (queries are periodic, section 3.4).
            self._query_counter += 1
            _mid, address = tuple(members)[self._query_counter % len(members)]
            cohort.send(address, m.QueryMsg(aid=aid, reply_to=cohort.address))
            return
        for _mid, address in members:
            cohort.send(address, m.QueryMsg(aid=aid, reply_to=cohort.address))

    def on_query_reply(self, msg: m.QueryReplyMsg) -> None:
        cohort = self.cohort
        if not cohort.is_active_primary:
            return
        aid = msg.aid
        if aid not in self.prepared and aid not in self._unprepared_queries:
            return
        if msg.outcome == "committed":
            self._perform_commit(aid, msg.pset_pairs, ack_to=None)
        elif msg.outcome == "aborted":
            self._local_abort(aid)
            cohort.metrics.incr(f"aborts_via_query:{cohort.mygroupid}")
        elif msg.outcome == "active":
            # The transaction is alive at its coordinator: keep waiting (and
            # reset the unilateral-abort countdown -- that exists only for
            # transactions whose coordinator has gone silent).
            if aid in self._unprepared_queries:
                self._unprepared_queries[aid] = 2

    # ------------------------------------------------------------------
    # 1SR ledger feed
    # ------------------------------------------------------------------

    def _ledger_effects(self, aid: Aid, will_install: bool = False) -> None:
        """Report this participant's reads/writes for the committed-history
        serializability check (DESIGN.md section 3.4)."""
        cohort = self.cohort
        calls = cohort.pending.get(aid)
        if not calls:
            return
        reads = {}
        writes = {}
        for viewstamp in sorted(calls):
            for effect in calls[viewstamp].effects:
                if effect.read_version is not None and effect.uid not in reads:
                    reads[effect.uid] = effect.read_version
                if effect.writes:
                    obj = cohort.store.ensure(effect.uid)
                    writes[effect.uid] = obj.version + 1 if will_install else obj.version
        cohort.runtime.ledger.record_effects(
            aid, cohort.mygroupid, reads=reads, writes=writes
        )
