"""The view change algorithm (paper section 4, Figure 5).

Roles:

- *view manager*: mints a viewid greater than any seen (paired with its own
  mid, so viewids are globally unique), invites every other cohort, collects
  normal/crashed acceptances, and attempts view formation when all have
  responded or a timeout expires.
- *underling*: accepted an invitation; waits (``await_view``) for an
  init-view message (it was chosen primary), a newview record through the
  buffer (it is a backup of the formed view), a higher invitation, or a
  timeout that promotes it to manager.

View formation rule (section 4): a majority of cohorts accepted, and

1. a majority accepted *normally*, or
2. ``crash_viewid < normal_viewid``, or
3. ``crash_viewid == normal_viewid`` and the primary of that view accepted
   normally (a primary always knows at least as much as any backup).

The cohort returning the largest viewstamp in a normal acceptance becomes
the new primary; the old primary of that view is preferred when possible
("since this causes minimal disruption").  All acceptors -- including
crashed ones, which the newview record will re-initialize -- join the view.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import messages as m
from repro.core.events import NewView
from repro.core.view import View, majority
from repro.core.viewstamp import ViewId, Viewstamp
from repro.detect import Backoff


class ViewChangeController:
    """Figure 5's state machine, hosted by a cohort."""

    def __init__(self, cohort):
        self.cohort = cohort
        self._responses: Dict[int, m.AcceptMsg] = {}
        self._invite_timer = None
        self._await_timer = None
        self._retry_timer = None
        self._retransmit_timer = None
        self._installing = False
        self._manage_rounds = 0
        self._formed = False
        # Created lazily: form_view() is also exercised standalone with
        # fake cohorts that have no simulator attached.
        self._retry_backoff: Optional[Backoff] = None
        self._await_rng = None

    def _backoff(self) -> Backoff:
        if self._retry_backoff is None:
            cohort = self.cohort
            config = cohort.config
            self._retry_backoff = Backoff(
                config.view_retry_delay,
                cohort.runtime.sim.rng.fork(f"vc-backoff/{cohort.address}"),
                multiplier=config.backoff_multiplier,
                cap_factor=config.backoff_cap,
                jitter=config.backoff_jitter,
            )
        return self._retry_backoff

    def _jitter_rng(self):
        if self._await_rng is None:
            cohort = self.cohort
            self._await_rng = cohort.runtime.sim.rng.fork(
                f"vc-await/{cohort.address}"
            )
        return self._await_rng

    def reset(self) -> None:
        """Drop controller state after a crash (timers died with the node)."""
        self._responses = {}
        self._invite_timer = None
        self._await_timer = None
        self._retry_timer = None
        self._retransmit_timer = None
        self._installing = False
        self._manage_rounds = 0
        self._formed = False
        if self._retry_backoff is not None:
            self._retry_backoff.reset()

    # ------------------------------------------------------------------
    # becoming a manager
    # ------------------------------------------------------------------

    def become_manager(self) -> None:
        from repro.core.cohort import Status

        cohort = self.cohort
        if not cohort.node.up:
            return
        if cohort.status is Status.ACTIVE:
            cohort.leave_active()
        if cohort.status is Status.VIEW_MANAGER:
            return  # already managing; the retry timer drives progress
        self._cancel_timers()
        cohort.status = Status.VIEW_MANAGER
        cohort.metrics.incr(f"view_changes_started:{cohort.mygroupid}")
        cohort.runtime.ledger.record_view_change_started(
            cohort.mygroupid, cohort.sim.now
        )
        if cohort.tracer is not None:
            cohort.tracer.emit(
                "view_manager",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                mid=cohort.mymid,
            )
        self._make_invitations()

    def _make_invitations(self) -> None:
        """Figure 5: mint a new viewid, invite everyone, await responses."""
        from repro.core.cohort import Status

        cohort = self.cohort
        if cohort.status is not Status.VIEW_MANAGER:
            return  # a stale retry timer fired after we stopped managing
        cohort.max_viewid = cohort.max_viewid.next_for(cohort.mymid)
        self._manage_rounds += 1
        self._formed = False
        self._responses = {cohort.mymid: self._own_acceptance()}
        for peer, address in cohort.configuration:
            if peer != cohort.mymid:
                cohort.send(
                    address,
                    m.InviteMsg(viewid=cohort.max_viewid, manager_mid=cohort.mymid),
                )
        self._invite_timer = cohort.set_timer(
            cohort.config.invite_timeout, self._attempt_formation
        )
        if cohort.config.adaptive_timeouts:
            self._arm_invite_retransmit()

    def _arm_invite_retransmit(self) -> None:
        """Mid-round invite re-sends: a dropped invite or accept must not
        stall the round for the whole ``invite_timeout``.  The period comes
        from the detector's learned RTO (a couple of round trips), bounded
        so a round sees at least one retransmission."""
        cohort = self.cohort
        rto = cohort.detect.group_rto()
        if rto is not None:
            period = max(cohort.config.min_timeout, 2.0 * rto)
        else:
            period = cohort.config.invite_timeout / 4.0
        period = min(period, cohort.config.invite_timeout / 2.0)
        self._retransmit_timer = cohort.set_timer(period, self._retransmit_invites)

    def _retransmit_invites(self) -> None:
        from repro.core.cohort import Status

        cohort = self.cohort
        self._retransmit_timer = None
        if cohort.status is not Status.VIEW_MANAGER or self._formed:
            return
        resent = 0
        for peer, address in cohort.configuration:
            if peer == cohort.mymid or peer in self._responses:
                continue
            if cohort._is_suspect(peer):
                continue  # looks dead; formation will not wait for it either
            cohort.send(
                address,
                m.InviteMsg(viewid=cohort.max_viewid, manager_mid=cohort.mymid),
            )
            resent += 1
        if resent:
            cohort.metrics.incr(f"invite_retransmits:{cohort.mygroupid}", resent)
        self._arm_invite_retransmit()

    def _own_acceptance(self) -> m.AcceptMsg:
        cohort = self.cohort
        lease_promises = ()
        if cohort.reads is not None:
            # Report outstanding read-lease promises so the formation can
            # defer the new primary past any lease an old one could still
            # be serving under (docs/READS.md).
            lease_promises = cohort.reads.outstanding_promises()
        if cohort.is_witness:
            # Witnesses vote -- the acceptance counts toward the majority
            # and they join the formed view -- but carry no viewstamp
            # evidence: they hold no event buffer, so the formation
            # conditions must be met by storage members alone
            # (repro.scale, docs/SCALE.md).
            if cohort.tracer is not None:
                cohort.tracer.emit(
                    "witness_vote",
                    node=cohort.node.node_id,
                    group=cohort.mygroupid,
                    mid=cohort.mymid,
                    viewid=str(cohort.max_viewid),
                )
            return m.AcceptMsg(
                viewid=cohort.max_viewid,
                mid=cohort.mymid,
                crashed=False,
                viewstamp=None,
                was_primary=False,
                crash_viewid=None,
                view=cohort.cur_view,
                lease_promises=lease_promises,
                witness=True,
            )
        if cohort.up_to_date:
            return m.AcceptMsg(
                viewid=cohort.max_viewid,
                mid=cohort.mymid,
                crashed=False,
                viewstamp=cohort.history.latest,
                was_primary=cohort.cur_view is not None
                and cohort.cur_view.primary == cohort.mymid,
                crash_viewid=None,
                view=cohort.cur_view,
                lease_promises=lease_promises,
            )
        return m.AcceptMsg(
            viewid=cohort.max_viewid,
            mid=cohort.mymid,
            crashed=True,
            viewstamp=None,
            was_primary=False,
            crash_viewid=cohort.cur_viewid,
            lease_promises=lease_promises,
        )

    # ------------------------------------------------------------------
    # accepting invitations (do_accept)
    # ------------------------------------------------------------------

    def on_invite(self, msg: m.InviteMsg) -> None:
        from repro.core.cohort import Status

        cohort = self.cohort
        if msg.viewid < cohort.max_viewid:
            return  # "ignore the msg"
        if msg.viewid == cohort.max_viewid and cohort.status is not Status.UNDERLING:
            # Equal viewid: only re-accept while still awaiting that view.
            return
        self._do_accept(msg.viewid, msg.manager_mid)

    def _do_accept(self, viewid: ViewId, manager_mid: int) -> None:
        from repro.core.cohort import Status

        cohort = self.cohort
        if cohort.status is Status.ACTIVE:
            cohort.leave_active()
        cohort.max_viewid = viewid
        self._cancel_timers()
        self._installing = False
        cohort.status = Status.UNDERLING
        if cohort.tracer is not None:
            cohort.tracer.emit(
                "invite_accepted",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                mid=cohort.mymid,
                viewid=str(viewid),
                manager=manager_mid,
            )
        cohort.send_mid(manager_mid, self._own_acceptance())
        self._arm_await_timer()

    def _arm_await_timer(self) -> None:
        cohort = self.cohort
        delay = cohort.config.underling_timeout
        if cohort.config.adaptive_timeouts and cohort.config.promotion_jitter > 0.0:
            # Spread promotions out so underlings of a dead manager do not
            # all become competing managers at the same instant.  Jitter
            # only ever *extends* the paper's "fairly long" timeout.
            delay *= 1.0 + cohort.config.promotion_jitter * self._jitter_rng().random()
        self._await_timer = cohort.set_timer(delay, self._await_timeout)

    def _await_timeout(self) -> None:
        from repro.core.cohort import Status

        if self.cohort.status is Status.UNDERLING:
            self.become_manager()

    # ------------------------------------------------------------------
    # collecting acceptances and forming the view
    # ------------------------------------------------------------------

    def on_accept(self, msg: m.AcceptMsg) -> None:
        from repro.core.cohort import Status

        cohort = self.cohort
        if cohort.status is not Status.VIEW_MANAGER:
            return
        if msg.viewid != cohort.max_viewid:
            return  # acceptance of an older proposal of ours
        self._responses[msg.mid] = msg
        if len(self._responses) == cohort.config_size:
            self._attempt_formation()
            return
        # Section 4.1: the manager waits "to hear from all cohorts that the
        # 'I'm alive' messages indicate should reply" -- cohorts that look
        # dead are not waited for beyond this point.
        expected = {
            mid
            for mid, _addr in cohort.configuration
            if mid == cohort.mymid or not cohort._is_suspect(mid)
        }
        if set(self._responses) >= expected:
            self._attempt_formation()

    def _attempt_formation(self) -> None:
        from repro.core.cohort import Status

        cohort = self.cohort
        if cohort.status is not Status.VIEW_MANAGER or self._formed:
            return
        if self._invite_timer is not None:
            self._invite_timer.cancel()
            self._invite_timer = None
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None
        if self._retry_timer is not None:
            # A late acceptance can trigger another formation attempt while
            # a retry timer from a previous failure is still armed; without
            # cancelling it here the old timer fires alongside the new one
            # and mints two viewids back to back.
            self._retry_timer.cancel()
            self._retry_timer = None
        view = self.form_view(self._responses)
        if view is None:
            cohort.metrics.incr(f"view_formations_failed:{cohort.mygroupid}")
            if cohort.config.adaptive_timeouts:
                delay = self._backoff().next()
            else:
                delay = cohort.config.view_retry_delay
            self._retry_timer = cohort.set_timer(delay, self._make_invitations)
            return
        self._formed = True
        if cohort.tracer is not None:
            cohort.tracer.emit(
                "view_formed",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                mid=cohort.mymid,
                viewid=str(cohort.max_viewid),
                primary=view.primary,
                members=sorted(view.members),
                config_size=cohort.config_size,
            )
        if self._retry_backoff is not None and self._retry_backoff.reset():
            cohort.metrics.incr(f"backoff_resets:{cohort.mygroupid}")
        lease_bound = 0.0
        if cohort.reads is not None:
            from repro.reads.lease import formation_lease_bound

            lease_bound = formation_lease_bound(
                self._responses.values(), view.primary
            )
        if view.primary == cohort.mymid:
            self._start_view(view, lease_bound)
        else:
            cohort.send_mid(
                view.primary,
                m.InitViewMsg(
                    viewid=cohort.max_viewid, view=view, lease_bound=lease_bound
                ),
            )
            cohort.status = Status.UNDERLING
            self._arm_await_timer()

    def form_view(self, responses: Dict[int, m.AcceptMsg]) -> Optional[View]:
        """Apply the section-4 formation rule; None when it cannot be met."""
        cohort = self.cohort
        accepted = list(responses.values())
        if len(accepted) < majority(cohort.config_size):
            return None
        # Witness acceptances (repro.scale) count toward the majority and
        # join the formed view, but carry no viewstamp/crash evidence --
        # they are excluded from both evidence partitions.
        normals = [a for a in accepted if not a.crashed and not a.witness]
        crashed = [a for a in accepted if a.crashed and not a.witness]
        if not normals:
            return None
        normal_vs: Viewstamp = max(a.viewstamp for a in normals)
        normal_viewid = normal_vs.id
        cfg_witnesses = getattr(cohort, "_witnesses", frozenset())
        if cfg_witnesses:
            # With witnesses configured, force quorums are all-storage
            # (``majority(n)`` buffer-holding members counting the
            # primary), so the paper's condition 1 relaxes to *coverage*:
            # enough storage members accepted normally that they intersect
            # every possible force quorum of every view, hence no forced
            # event can be missing from their joint state.
            storage = cohort.config_size - len(cfg_witnesses)
            covered = len(normals) >= storage - majority(cohort.config_size) + 1
            if not crashed:
                if not covered:
                    return None
            else:
                crash_viewid = max(a.crash_viewid for a in crashed)
                cond2 = crash_viewid < normal_viewid
                cond3 = crash_viewid == normal_viewid and any(
                    a.was_primary and a.viewstamp.id == normal_viewid
                    for a in normals
                )
                cond4 = (
                    crash_viewid == normal_viewid
                    and getattr(cohort.config, "extended_formation_rule", False)
                    and self._backups_cover_forces(normals, normal_viewid)
                )
                if not (covered or cond2 or cond3 or cond4):
                    return None
        elif crashed:
            crash_viewid = max(a.crash_viewid for a in crashed)
            cond1 = len(normals) >= majority(cohort.config_size)
            cond2 = crash_viewid < normal_viewid
            cond3 = crash_viewid == normal_viewid and any(
                a.was_primary and a.viewstamp.id == normal_viewid for a in normals
            )
            cond4 = (
                crash_viewid == normal_viewid
                and getattr(cohort.config, "extended_formation_rule", False)
                and self._backups_cover_forces(normals, normal_viewid)
            )
            if not (cond1 or cond2 or cond3 or cond4):
                return None
        primary = self._choose_primary(normals, normal_vs)
        backups = tuple(
            sorted(a.mid for a in accepted if a.mid != primary)
        )
        return View(primary=primary, backups=backups)

    def _backups_cover_forces(self, normals, normal_viewid) -> bool:
        """Extended formation condition (beyond the paper; DESIGN.md D11).

        Every force in view V required acknowledgments from a sub-majority
        ``s`` of V's ``b`` backups, and buffer delivery is a cumulative
        prefix of the primary's log.  Therefore if at least ``b - s + 1``
        backups of V accepted normally, the set intersects every possible
        force quorum, and its max-viewstamp member's prefix contains every
        forced event -- it can safely seed the new view even though V's
        primary (which the paper's condition 3 insists on) is gone.
        """
        from repro.core.view import sub_majority

        members = [a for a in normals if a.viewstamp.id == normal_viewid]
        if not members:
            return False
        old_view = next((a.view for a in members if a.view is not None), None)
        if old_view is None or old_view.primary in {a.mid for a in members}:
            return False  # no membership info / condition 3 territory
        # Witnesses never ack buffer records, so force quorums were drawn
        # from the storage backups only (repro.scale).
        cfg_witnesses = getattr(self.cohort, "_witnesses", frozenset())
        storage_backups = [b for b in old_view.backups if b not in cfg_witnesses]
        old_backups = [a for a in members if a.mid in storage_backups]
        needed = len(storage_backups) - sub_majority(self.cohort.config_size) + 1
        return len(old_backups) >= max(needed, 1)

    @staticmethod
    def _choose_primary(normals, normal_vs: Viewstamp) -> int:
        """Largest viewstamp wins; the old primary of that view if possible."""
        for acceptance in normals:
            if acceptance.was_primary and acceptance.viewstamp.id == normal_vs.id:
                return acceptance.mid
        candidates = [a.mid for a in normals if a.viewstamp == normal_vs]
        return min(candidates)

    # ------------------------------------------------------------------
    # starting the view (new primary path)
    # ------------------------------------------------------------------

    def on_init_view(self, msg: m.InitViewMsg) -> None:
        from repro.core.cohort import Status

        cohort = self.cohort
        if msg.viewid != cohort.max_viewid:
            return
        if cohort.status is Status.ACTIVE and cohort.cur_viewid == msg.viewid:
            return  # duplicate init for a view we already started
        self._start_view(msg.view, msg.lease_bound)

    def _start_view(self, view: View, lease_bound: float = 0.0) -> None:
        """Figure 5 ``start_view``: open the history entry, persist the
        viewid, then activate (``activate_as_primary`` builds the newview
        record and opens the buffer).

        With reads enabled, activation is additionally deferred until
        ``lease_bound`` has passed: an old primary may serve leased reads
        until then, and this primary committing a write any earlier would
        let a read miss it (docs/READS.md)."""
        cohort = self.cohort
        self._cancel_timers()
        viewid = cohort.max_viewid
        cohort.cur_view = view
        cohort.cur_viewid = viewid
        cohort.history.open_view(viewid)
        write = cohort.stable.write("cur_viewid", viewid)

        def activate() -> None:
            if cohort.max_viewid != viewid or not cohort.node.up:
                return  # preempted by a higher view while waiting
            cohort.activate_as_primary(viewid, view)

        def on_durable(future) -> None:
            if cohort.max_viewid != viewid or not cohort.node.up:
                return  # preempted by a higher view while writing
            if future.exception() is not None:
                # The viewid never became durable: activating anyway would
                # break the recovery protocol's reliance on stable
                # cur_viewid (section 4).  Refuse the view and retry.
                self._on_viewid_write_failed(viewid, future.exception())
                return
            now = cohort.sim.now
            if lease_bound > now:
                # Grants are valid strictly before their expiry, so waiting
                # until exactly the bound suffices.
                if cohort.tracer is not None:
                    cohort.tracer.emit(
                        "lease_wait",
                        node=cohort.node.node_id,
                        group=cohort.mygroupid,
                        mid=cohort.mymid,
                        viewid=str(viewid),
                        until=lease_bound,
                    )
                cohort.metrics.incr(f"lease_waits:{cohort.mygroupid}")
                cohort.set_timer(lease_bound - now, activate)
                return
            activate()

        write.add_done_callback(on_durable)

    def _on_viewid_write_failed(self, viewid: ViewId, error) -> None:
        """A ``cur_viewid`` stable write resolved to a failure (disk fault).

        The view must not be silently accepted: a manager re-enters the
        invitation round after a backoff (minting a fresh viewid), an
        underling keeps waiting so its await timer can promote it.  Either
        way the failure is counted and traced.
        """
        from repro.core.cohort import Status

        cohort = self.cohort
        cohort.metrics.incr(f"stable_write_failures:{cohort.mygroupid}")
        if cohort.tracer is not None:
            cohort.tracer.emit(
                "stable_write_failed",
                node=cohort.node.node_id,
                group=cohort.mygroupid,
                mid=cohort.mymid,
                viewid=str(viewid),
                key="cur_viewid",
                error=str(error),
            )
        if cohort.status is Status.VIEW_MANAGER:
            cohort.metrics.incr(f"view_formations_failed:{cohort.mygroupid}")
            self._formed = False
            if cohort.config.adaptive_timeouts:
                delay = self._backoff().next()
            else:
                delay = cohort.config.view_retry_delay
            self._retry_timer = cohort.set_timer(delay, self._make_invitations)
            return
        # Underling: stay put; re-arm the await timer if _start_view's
        # timer sweep cancelled it, so silence still promotes us.
        if self._await_timer is None or not self._await_timer.active:
            self._arm_await_timer()

    # ------------------------------------------------------------------
    # underling: newview arriving through the buffer
    # ------------------------------------------------------------------

    def on_buffer_while_underling(self, msg: m.BufferMsg) -> None:
        cohort = self.cohort
        if msg.viewid != cohort.max_viewid or self._installing:
            return
        if not msg.records or msg.records[0][0] != 1:
            return  # need the start of the view; primary resends from ts 1
        first_ts, first_record = msg.records[0]
        if not isinstance(first_record, NewView):
            return
        self._installing = True
        viewid = msg.viewid
        write = cohort.stable.write("cur_viewid", viewid)

        def on_durable(future) -> None:
            self._installing = False
            if cohort.max_viewid != viewid or not cohort.node.up:
                return
            from repro.core.cohort import Status

            if cohort.status is not Status.UNDERLING:
                return
            if future.exception() is not None:
                # Joining the view without a durable cur_viewid would make
                # a later recovery report a stale crash_viewid; stay an
                # underling (the await timer still promotes us).
                self._on_viewid_write_failed(viewid, future.exception())
                return
            self._cancel_timers()
            cohort.install_newview(viewid, first_record)

        write.add_done_callback(on_durable)

    # ------------------------------------------------------------------
    # witness: view announcements outside the buffer (repro.scale)
    # ------------------------------------------------------------------

    def on_witness_install(self, msg: m.WitnessInstallMsg) -> None:
        """A new primary announced its formed view to this witness.

        Witnesses receive no buffer traffic, so the newview record never
        reaches them; the activating primary sends an explicit
        ``WitnessInstallMsg`` instead and retransmits it from its heartbeat
        loop until the witness confirms.  The confirmation reuses
        ``BufferAckMsg(acked_ts=0)`` -- harmless to the buffer (a witness
        mid is not in its acked map) and idempotent under loss.
        """
        from repro.core.cohort import Status

        cohort = self.cohort
        if not cohort.is_witness:
            return
        if cohort.status is Status.ACTIVE and cohort.cur_viewid == msg.viewid:
            # Duplicate announcement: our ack was lost; just re-confirm.
            self._ack_witness_install(msg)
            return
        if msg.viewid < cohort.max_viewid or self._installing:
            return
        if cohort.status is Status.ACTIVE:
            # The announcement outran an invitation (or we missed the
            # round entirely); a formed view always supersedes.
            cohort.leave_active()
        cohort.max_viewid = msg.viewid
        cohort.status = Status.UNDERLING
        self._installing = True
        viewid = msg.viewid
        view = msg.view

        def on_durable(future) -> None:
            self._installing = False
            if cohort.max_viewid != viewid or not cohort.node.up:
                return
            if cohort.status is not Status.UNDERLING:
                return
            if future.exception() is not None:
                self._on_viewid_write_failed(viewid, future.exception())
                return
            self._cancel_timers()
            cohort.install_as_witness(viewid, view)
            self._ack_witness_install(msg)

        write = cohort.stable.write("cur_viewid", viewid)
        write.add_done_callback(on_durable)

    def _ack_witness_install(self, msg: m.WitnessInstallMsg) -> None:
        cohort = self.cohort
        cohort.send_mid(
            msg.view.primary,
            m.BufferAckMsg(viewid=msg.viewid, acked_ts=0, mid=cohort.mymid),
        )

    # ------------------------------------------------------------------

    def _cancel_timers(self) -> None:
        for timer in (
            self._invite_timer,
            self._await_timer,
            self._retry_timer,
            self._retransmit_timer,
        ):
            if timer is not None:
                timer.cancel()
        self._invite_timer = None
        self._await_timer = None
        self._retry_timer = None
        self._retransmit_timer = None
