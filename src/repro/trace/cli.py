"""``python -m repro.trace``: inspect exported traces.

Subcommands::

    timeline FILE [--node N] [--kind K] [--limit M]
        Per-node timeline of a JSONL export.

    chain FILE EID [--limit M]
        The causal chain (ancestry) leading to one event id.

    chrome FILE --out OUT.json
        Convert a JSONL export to Chrome trace_event JSON
        (load in chrome://tracing or https://ui.perfetto.dev).

    monitors
        The invariant-monitor catalog with paper sections.

    check-docs DOC
        Fail unless every event kind and monitor name is mentioned in DOC
        (the docs-drift gate for docs/TRACING.md).
"""

from __future__ import annotations

import argparse
import sys
from collections import deque
from typing import Dict, List

from repro.trace.events import EVENT_KINDS, TraceEvent
from repro.trace.export import read_jsonl, write_chrome
from repro.trace.monitors import MONITORS


def _timeline(args) -> int:
    events = read_jsonl(args.file)
    if args.kind:
        events = [event for event in events if event.kind == args.kind]
    by_node: Dict[str, List[TraceEvent]] = {}
    for event in events:
        node = event.node if event.node is not None else "(global)"
        by_node.setdefault(node, []).append(event)
    nodes = sorted(by_node)
    if args.node:
        if args.node not in by_node:
            print(f"no events for node {args.node!r}; have {nodes}",
                  file=sys.stderr)
            return 1
        nodes = [args.node]
    for node in nodes:
        lane = by_node[node]
        print(f"== {node} ({len(lane)} events) ==")
        shown = lane if args.limit is None else lane[-args.limit:]
        if len(shown) < len(lane):
            print(f"  ... {len(lane) - len(shown)} earlier events elided ...")
        for event in shown:
            print(f"  {event.render()}")
    return 0


def _chain(args) -> int:
    events = {event.eid: event for event in read_jsonl(args.file)}
    if args.eid not in events:
        print(f"event #{args.eid} not in {args.file} "
              f"(ring may have evicted it)", file=sys.stderr)
        return 1
    frontier = deque([args.eid])
    seen = set()
    chain: List[TraceEvent] = []
    while frontier and len(chain) < args.limit:
        eid = frontier.popleft()
        if eid in seen:
            continue
        seen.add(eid)
        event = events.get(eid)
        if event is None:
            continue
        chain.append(event)
        frontier.extend(event.parents)
    print(f"causal chain to #{args.eid} ({len(chain)} events):")
    for event in sorted(chain, key=lambda e: e.eid):
        marker = "->" if event.eid == args.eid else "  "
        print(f"{marker} {event.render()}")
    return 0


def _chrome(args) -> int:
    events = read_jsonl(args.file)
    write_chrome(events, args.out)
    print(f"wrote {args.out} ({len(events)} events); load in "
          "chrome://tracing or https://ui.perfetto.dev")
    return 0


def _monitors(_args) -> int:
    for name in sorted(MONITORS):
        monitor = MONITORS[name]
        print(f"{name}  [{monitor.paper}]")
        print(f"    {monitor.description}")
    return 0


def _check_docs(args) -> int:
    try:
        with open(args.doc, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        print(f"cannot read {args.doc}: {error}", file=sys.stderr)
        return 2
    missing = [kind for kind in sorted(EVENT_KINDS) if kind not in text]
    missing += [name for name in sorted(MONITORS) if name not in text]
    if missing:
        print(f"{args.doc} is missing documentation for: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    print(f"{args.doc} documents all {len(EVENT_KINDS)} event kinds and "
          f"{len(MONITORS)} monitors")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect repro.trace exports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    timeline = sub.add_parser("timeline", help="per-node timeline")
    timeline.add_argument("file", help="JSONL export")
    timeline.add_argument("--node", default=None)
    timeline.add_argument("--kind", default=None)
    timeline.add_argument("--limit", type=int, default=None,
                          help="last N events per node")
    timeline.set_defaults(fn=_timeline)

    chain = sub.add_parser("chain", help="causal chain to an event id")
    chain.add_argument("file", help="JSONL export")
    chain.add_argument("eid", type=int)
    chain.add_argument("--limit", type=int, default=50)
    chain.set_defaults(fn=_chain)

    chrome = sub.add_parser("chrome", help="convert JSONL to Chrome JSON")
    chrome.add_argument("file", help="JSONL export")
    chrome.add_argument("--out", required=True)
    chrome.set_defaults(fn=_chrome)

    monitors = sub.add_parser("monitors", help="invariant-monitor catalog")
    monitors.set_defaults(fn=_monitors)

    check = sub.add_parser("check-docs",
                           help="assert DOC mentions every kind/monitor")
    check.add_argument("doc")
    check.set_defaults(fn=_check_docs)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into head/less that quit early; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
