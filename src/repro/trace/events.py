"""Trace events: Lamport-stamped, causally-linked structured records.

One :class:`TraceEvent` is emitted per interesting happening (a message
send, a timer firing, a record entering the buffer, a commit point...).
Events carry:

- ``eid``: a process-wide sequence number, assigned in emission order --
  with a deterministic simulator it is itself deterministic;
- ``at``: the virtual time of the event;
- ``lamport``: a Lamport clock per attributed node, advanced past every
  causal parent, so a topological sort of the causal graph is recoverable
  from the export alone;
- ``parents``: eids of the events that *happened-before* this one (the
  send for a delivery, the enclosing delivery for a protocol action, the
  timer arming context for a fire).

Serialization is strictly deterministic: sorted keys, compact separators,
and a ``str()`` fallback for protocol objects (viewstamps, aids) whose
``__str__`` is already stable.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional, Tuple

#: Catalog of event kinds the instrumentation can emit.  ``python -m
#: repro.trace check-docs`` asserts each name is documented in
#: docs/TRACING.md, so adding a kind here without documenting it fails CI.
EVENT_KINDS: Dict[str, str] = {
    # network plane (net/network.py)
    "msg_send": "a message was handed to the network",
    "msg_deliver": "a message reached its destination actor",
    "msg_drop": "the network dropped a message (crash/partition/loss)",
    # kernel / node (sim/node.py, repro.faults)
    "timer_fire": "a node-scoped timer callback ran",
    "node_crash": "a node fail-stopped",
    "node_recover": "a crashed node came back up",
    "partition": "the network split into blocks",
    "heal": "partitions and failed links were repaired",
    "fault": "a FaultController action executed",
    # replication core (core/cohort.py, core/view_change.py)
    "record_added": "an event record entered a cohort's history",
    "batch_flush": "a batched-mode flush tick shipped coalesced BufferMsgs",
    "ack_coalesce": "a backup sent one cumulative ack covering several BufferMsgs",
    "primary_activated": "a cohort became the active primary of a view",
    "newview_installed": "an underling installed a newview record",
    "view_manager": "a cohort became view manager and sent invites",
    "invite_accepted": "a cohort accepted an invitation (underling)",
    "view_formed": "a manager's formation rule produced a view",
    "view_started": "the new primary completed start_view",
    "stable_write_failed": "a cur_viewid stable write failed; the view was refused",
    # remote calls (core/calls.py)
    "call_start": "a remote call was issued",
    "call_reply": "a remote call's reply arrived",
    "call_failed": "a remote call failed (no reply / rejected)",
    # transactions (core/client_role.py, driver.py)
    "txn_submit": "a driver submitted a transaction request",
    "txn_outcome": "a driver learned (or gave up on) an outcome",
    "txn_begin": "the client primary started a transaction program",
    "txn_prepare": "2PC phase one began (prepares sent)",
    "commit_point": "the committing record became majority-known",
    "txn_abort": "the coordinator aborted a transaction",
    # participant side of 2PC (core/server_role.py)
    "prepare_decision": "a participant accepted or refused a prepare",
    "commit_applied": "a participant added and forced a committed record",
    "abort_applied": "a participant discarded a transaction locally",
    # sharding (repro.shard, core/client_role.py)
    "shard_route": "a sharded facade routed a request to its owning groups",
    "shard_prepare": "a cross-group prepare went out to one participant",
    "shard_commit": "a cross-group commit point covering many participants",
    # read serving path (repro.reads, core/cohort.py, core/view_change.py)
    "lease_grant": "a primary's read lease became valid (quorum of grants)",
    "lease_expire": "a primary's read lease lapsed or was surrendered",
    "lease_read": "a leased primary served a linearizable local read",
    "lease_wait": "a new primary deferred activation past a lease bound",
    "stale_read": "a backup served a stale-bounded read from its prefix",
    # geo routing (repro.geo, driver.py)
    "geo_route": "a sited driver routed a read to its nearest serving replica",
    # cohort scaling (repro.scale, core/cohort.py, core/view_change.py)
    "gossip_relay": "a heartbeat carried relayed liveness evidence to gossip peers",
    "ack_tree": "an interior backup forwarded its subtree's aggregated buffer acks",
    "witness_vote": "a witness accepted an invitation without viewstamp evidence",
}


def _plain(value: Any) -> Any:
    """JSON-safe, deterministic projection of an event-data value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=str)
        return [_plain(item) for item in items]
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    return str(value)


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured event in the causal record of a run."""

    eid: int
    at: float
    lamport: int
    node: Optional[str]
    kind: str
    data: Dict[str, Any]
    parents: Tuple[int, ...]

    def to_json_dict(self) -> dict:
        return {
            "eid": self.eid,
            "at": self.at,
            "lamport": self.lamport,
            "node": self.node,
            "kind": self.kind,
            "parents": list(self.parents),
            "data": _plain(self.data),
        }

    def to_json_line(self) -> str:
        return json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json_dict(cls, doc: dict) -> "TraceEvent":
        return cls(
            eid=doc["eid"],
            at=doc["at"],
            lamport=doc["lamport"],
            node=doc.get("node"),
            kind=doc["kind"],
            data=doc.get("data", {}),
            parents=tuple(doc.get("parents", ())),
        )

    def render(self) -> str:
        """One human-readable line (used by the CLI and violation reports)."""
        fields = " ".join(
            f"{key}={_plain(value)!r}" for key, value in sorted(self.data.items())
        )
        where = self.node if self.node is not None else "-"
        return (
            f"#{self.eid} t={self.at:.3f} L{self.lamport} "
            f"{where} {self.kind} {fields}".rstrip()
        )
