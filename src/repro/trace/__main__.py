"""Entry point: ``python -m repro.trace``."""

import sys

from repro.trace.cli import main

sys.exit(main())
