"""Online protocol-invariant monitors over the trace event stream.

Each monitor encodes one invariant from the paper's correctness argument
and checks it *while the run executes*, not post hoc.  A violation raises
:class:`InvariantViolation` -- an ``AssertionError`` subclass, so existing
harness/soak failure handling catches it -- carrying the minimal causal
slice (<= 50 events) that explains the offending event.

All monitors are false-positive-free on legitimate runs:

- ``viewstamp_monotonic``: within one view, a cohort's applied timestamps
  strictly increase.  A crashed-and-recovered backup legitimately re-applies
  a view from ts=1 after re-installing its newview record, so the per-key
  watermark resets on ``newview_installed``.
- ``single_primary``: viewids are globally unique (counter paired with the
  minting manager's mid), so at most one cohort may ever activate as the
  primary of a given viewid.  Re-activation by the *same* cohort (duplicate
  init-view) is allowed.
- ``quorum_intersection``: every formed view contains a majority of the
  configuration; any two majorities of one configuration intersect, so
  consecutive formed views must share a member (section 4's "the new
  primary knows at least as much as any backup" rests on this).
- ``commit_quorum``: at a commit point, the committing record's timestamp
  must be acknowledged by at least a sub-majority of backups (which, with
  the primary, is a majority of the configuration) -- section 3.7's "no
  commit without the committing record being majority-known".
- ``phantom_delivery``: every delivery must correspond to a send the
  network actually performed (section 3.1's delivery-system assumption).
- ``stale_lease``: once a primary of a newer view has committed a write,
  no leased read may be served under an older view -- the lease protocol's
  activation deferral (docs/READS.md) exists precisely to make any such
  overlap impossible.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.core.view import majority, sub_majority


class InvariantViolation(AssertionError):
    """A protocol invariant was violated; carries the causal evidence."""

    def __init__(self, monitor: str, message: str, event, causal_slice):
        self.monitor = monitor
        self.message = message
        self.event = event
        self.causal_slice = list(causal_slice)
        super().__init__(self._render())

    def _render(self) -> str:
        lines = [
            f"[{self.monitor}] {self.message}",
            f"violating event: {self.event.render()}",
            f"causal slice ({len(self.causal_slice)} events):",
        ]
        lines.extend(f"  {event.render()}" for event in self.causal_slice)
        return "\n".join(lines)


class InvariantMonitor:
    """Base class: subscribe to the event stream, assert one invariant."""

    #: registry key and violation label
    name = "invariant"
    #: paper section(s) the invariant comes from
    paper = ""
    description = ""

    def on_event(self, event, tracer) -> None:
        raise NotImplementedError

    def fail(self, tracer, event, message: str) -> None:
        raise InvariantViolation(
            self.name, message, event, tracer.causal_slice(event.eid, limit=50)
        )


class ViewstampMonotonicMonitor(InvariantMonitor):
    name = "viewstamp_monotonic"
    paper = "§2, §3.4"
    description = (
        "per (group, viewid, cohort), applied record timestamps strictly "
        "increase; the watermark resets when a newview is (re)installed"
    )

    def __init__(self):
        self._last_ts: Dict[Tuple[str, str, int], int] = {}

    def on_event(self, event, tracer) -> None:
        if event.kind == "newview_installed":
            data = event.data
            key = (data["group"], data["viewid"], data["mid"])
            self._last_ts[key] = 1  # the newview record itself is ts=1
            return
        if event.kind != "record_added":
            return
        data = event.data
        key = (data["group"], data["viewid"], data["mid"])
        ts = data["ts"]
        last = self._last_ts.get(key)
        if last is not None and ts <= last:
            self.fail(
                tracer,
                event,
                f"timestamp regression in {data['group']} view "
                f"{data['viewid']} at cohort {data['mid']}: "
                f"{last} -> {ts}",
            )
        self._last_ts[key] = ts


class SinglePrimaryMonitor(InvariantMonitor):
    name = "single_primary"
    paper = "§4.1"
    description = (
        "at most one cohort ever activates as the primary of a given "
        "(group, viewid); viewids are globally unique by construction"
    )

    def __init__(self):
        self._primary: Dict[Tuple[str, str], int] = {}

    def on_event(self, event, tracer) -> None:
        if event.kind != "primary_activated":
            return
        data = event.data
        key = (data["group"], data["viewid"])
        mid = data["mid"]
        holder = self._primary.setdefault(key, mid)
        if holder != mid:
            self.fail(
                tracer,
                event,
                f"two primaries in {data['group']} view {data['viewid']}: "
                f"cohort {holder} already activated, now cohort {mid}",
            )


class QuorumIntersectionMonitor(InvariantMonitor):
    name = "quorum_intersection"
    paper = "§4, §4.1"
    description = (
        "every formed view is a majority of the configuration and therefore "
        "intersects the previously formed view of the group"
    )

    def __init__(self):
        self._previous: Dict[str, Tuple[str, FrozenSet[int]]] = {}

    def on_event(self, event, tracer) -> None:
        if event.kind != "view_formed":
            return
        data = event.data
        group = data["group"]
        members = frozenset(data["members"])
        config_size = data["config_size"]
        if len(members) < majority(config_size):
            self.fail(
                tracer,
                event,
                f"view {data['viewid']} of {group} formed with "
                f"{len(members)} members; majority of {config_size} is "
                f"{majority(config_size)}",
            )
        previous = self._previous.get(group)
        if previous is not None and not (members & previous[1]):
            self.fail(
                tracer,
                event,
                f"view {data['viewid']} of {group} (members "
                f"{sorted(members)}) does not intersect previously formed "
                f"view {previous[0]} (members {sorted(previous[1])})",
            )
        self._previous[group] = (data["viewid"], members)


class CommitQuorumMonitor(InvariantMonitor):
    name = "commit_quorum"
    paper = "§3.3, §3.7"
    description = (
        "at a commit point the committing record's timestamp is acked by a "
        "sub-majority of backups (with the primary, a majority knows it)"
    )

    def on_event(self, event, tracer) -> None:
        if event.kind != "commit_point":
            return
        data = event.data
        force_ts = data["force_ts"]
        config_size = data["config_size"]
        satisfied = sum(
            1 for acked_ts in data["acked"].values() if acked_ts >= force_ts
        )
        needed = sub_majority(config_size)
        if satisfied < needed:
            self.fail(
                tracer,
                event,
                f"commit of {data['aid']} at force_ts={force_ts} with only "
                f"{satisfied} backup ack(s); sub-majority of {config_size} "
                f"is {needed}",
            )


class PhantomDeliveryMonitor(InvariantMonitor):
    name = "phantom_delivery"
    paper = "§3.1"
    description = (
        "every delivered message corresponds to a send the network performed"
    )

    def on_event(self, event, tracer) -> None:
        if event.kind != "msg_deliver":
            return
        if not event.data.get("sent", False):
            self.fail(
                tracer,
                event,
                f"message {event.data['msg_id']} "
                f"({event.data['type']}) delivered to "
                f"{event.data['dst']} but was never sent",
            )


class StaleLeaseMonitor(InvariantMonitor):
    name = "stale_lease"
    paper = "beyond the paper (docs/READS.md)"
    description = (
        "no leased read is served under a view older than one whose "
        "primary has already committed a write (no committed write is "
        "concurrent with a stale lease serving reads)"
    )

    def __init__(self):
        # group -> (viewid tuple, viewid str) of the newest view in which
        # a primary committed a write
        self._commit_view: Dict[str, Tuple[Tuple[int, int], str]] = {}

    @staticmethod
    def _parse_viewid(viewid: str) -> Tuple[int, int]:
        # "v{cnt}.{mid}" -- parse for ordering (cnt first, mid breaks ties)
        cnt, _, mid = viewid[1:].partition(".")
        return (int(cnt), int(mid))

    def on_event(self, event, tracer) -> None:
        data = event.data
        if (
            event.kind == "record_added"
            and data.get("role") == "primary"
            and data.get("rtype") == "Committed"
        ):
            group = data["group"]
            parsed = self._parse_viewid(data["viewid"])
            current = self._commit_view.get(group)
            if current is None or parsed > current[0]:
                self._commit_view[group] = (parsed, data["viewid"])
            return
        if event.kind != "lease_read":
            return
        group = data["group"]
        newest = self._commit_view.get(group)
        if newest is None:
            return
        served = self._parse_viewid(data["viewid"])
        if served < newest[0]:
            self.fail(
                tracer,
                event,
                f"leased read in {group} served under view {data['viewid']} "
                f"after a primary of view {newest[1]} committed a write: a "
                f"stale lease is serving reads concurrent with committed "
                f"writes",
            )


#: name -> monitor class; ``TraceConfig.monitors`` selects by name.
MONITORS = {
    monitor.name: monitor
    for monitor in (
        ViewstampMonotonicMonitor,
        SinglePrimaryMonitor,
        QuorumIntersectionMonitor,
        CommitQuorumMonitor,
        PhantomDeliveryMonitor,
        StaleLeaseMonitor,
    )
}


def build_monitors(spec) -> list:
    """Instantiate monitors from a ``TraceConfig.monitors`` value: the
    string ``"all"``, or an iterable of registry names."""
    if spec == "all":
        names = list(MONITORS)
    else:
        names = list(spec)
    unknown = sorted(set(names) - set(MONITORS))
    if unknown:
        raise ValueError(
            f"unknown monitor(s) {unknown}; known: {sorted(MONITORS)}"
        )
    return [MONITORS[name]() for name in names]
