"""The Tracer: ring-buffered causal event sink owned by a Runtime.

Design constraints (see docs/TRACING.md):

- **Zero-cost when disabled.**  Instrumented hot paths hold a ``tracer``
  attribute that is ``None`` unless tracing was requested at Runtime
  construction; the disabled path pays one attribute load and an ``is
  None`` test.  Nothing here is consulted by the kernel loop itself.
- **Pure observation.**  The tracer draws no randomness and schedules no
  events, so enabling it cannot change what a seeded run computes --
  ledger digests with and without tracing are asserted identical by the
  ``trace_overhead`` perf scenario and tests/trace.
- **Deterministic.**  Event ids, Lamport stamps, and ring eviction depend
  only on emission order, which the simulator makes deterministic.

Causality is tracked two ways:

- a *context stack*: while a delivery or timer callback runs, its event id
  sits on the stack and becomes an implicit parent of everything emitted
  inside it (protocol actions, nested sends);
- explicit parents: a delivery names its send, a timer fire names the
  event context in which it was armed.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.trace.events import TraceEvent

#: Cap on the msg_id -> send-eid map.  In-flight messages are short-lived
#: (delays are bounded), so entries this old are long settled; pruning the
#: oldest half by insertion order (= msg_id order) is deterministic.
_MSG_MAP_LIMIT = 131_072


class Tracer:
    """Collects :class:`TraceEvent` records into a bounded ring."""

    def __init__(self, sim, config):
        self.sim = sim
        self.config = config
        self.ring_size = max(1, int(config.ring_size))
        self._ring: deque = deque()
        self._index: Dict[int, TraceEvent] = {}
        self._next_eid = 0
        self._clocks: Dict[str, int] = {}
        self._context: List[int] = []
        self._msg_sends: Dict[int, int] = {}
        self._monitors: list = []
        self.events_emitted = 0
        self.events_evicted = 0

    # -- monitors ---------------------------------------------------------

    def install_monitors(self, monitors) -> None:
        """Attach monitor instances; each sees every event as it is emitted."""
        self._monitors.extend(monitors)

    @property
    def monitors(self) -> tuple:
        return tuple(self._monitors)

    # -- emission ---------------------------------------------------------

    def emit(
        self,
        kind: str,
        node: Optional[str] = None,
        parents: Tuple[int, ...] = (),
        **data: Any,
    ) -> int:
        return self._emit(kind, node, parents, data)

    def _emit(
        self,
        kind: str,
        node: Optional[str],
        parents: Tuple[int, ...],
        data: Dict[str, Any],
    ) -> int:
        self._next_eid += 1
        eid = self._next_eid
        context = self._context
        if context:
            top = context[-1]
            if top not in parents:
                parents = parents + (top,)
        clock_key = node if node is not None else ""
        lamport = self._clocks.get(clock_key, 0)
        index = self._index
        for parent_id in parents:
            parent = index.get(parent_id)
            if parent is not None and parent.lamport > lamport:
                lamport = parent.lamport
        lamport += 1
        self._clocks[clock_key] = lamport
        event = TraceEvent(
            eid=eid,
            at=self.sim.now,
            lamport=lamport,
            node=node,
            kind=kind,
            data=data,
            parents=parents,
        )
        self._ring.append(event)
        index[eid] = event
        if len(self._ring) > self.ring_size:
            evicted = self._ring.popleft()
            del index[evicted.eid]
            self.events_evicted += 1
        self.events_emitted += 1
        for monitor in self._monitors:
            monitor.on_event(event, self)
        return eid

    # -- causal context ---------------------------------------------------

    def push(self, eid: int) -> None:
        self._context.append(eid)

    def pop(self) -> None:
        self._context.pop()

    def current(self) -> Optional[int]:
        return self._context[-1] if self._context else None

    # -- network hooks (called by Network when tracer is not None) --------

    def on_send(self, envelope) -> int:
        eid = self._emit(
            "msg_send",
            envelope.source,
            (),
            {
                "msg_id": envelope.msg_id,
                "src": envelope.source,
                "dst": envelope.destination,
                "type": envelope.payload.msg_type,
            },
        )
        sends = self._msg_sends
        sends[envelope.msg_id] = eid
        if len(sends) > _MSG_MAP_LIMIT:
            for key in list(sends)[: _MSG_MAP_LIMIT // 2]:
                del sends[key]
        return eid

    def on_drop(self, envelope, reason: str, node: Optional[str]) -> int:
        send_eid = self._msg_sends.get(envelope.msg_id)
        parents = (send_eid,) if send_eid is not None else ()
        return self._emit(
            "msg_drop",
            node,
            parents,
            {
                "msg_id": envelope.msg_id,
                "src": envelope.source,
                "dst": envelope.destination,
                "type": envelope.payload.msg_type,
                "reason": reason,
            },
        )

    def on_deliver(self, envelope) -> int:
        send_eid = self._msg_sends.get(envelope.msg_id)
        parents = (send_eid,) if send_eid is not None else ()
        return self._emit(
            "msg_deliver",
            envelope.destination,
            parents,
            {
                "msg_id": envelope.msg_id,
                "src": envelope.source,
                "dst": envelope.destination,
                "type": envelope.payload.msg_type,
                "sent": send_eid is not None,
            },
        )

    # -- Simulator.trace adapter ------------------------------------------

    def on_sim_trace(self, at: float, kind: str, data: dict) -> None:
        """Bridge for the kernel's lightweight ``sim.trace`` hook (crashes,
        recoveries, partitions, fault-controller actions)."""
        self._emit(kind, data.get("node"), (), dict(data))

    # -- inspection & export ----------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Ring contents, oldest first."""
        return list(self._ring)

    def get(self, eid: int) -> Optional[TraceEvent]:
        return self._index.get(eid)

    def causal_slice(self, eid: int, limit: int = 50) -> List[TraceEvent]:
        """The minimal explanation of *eid*: a breadth-first walk of its
        causal ancestry (still in the ring), at most *limit* events,
        returned in eid order."""
        frontier = deque([eid])
        seen = set()
        collected: List[TraceEvent] = []
        while frontier and len(collected) < limit:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            event = self._index.get(current)
            if event is None:
                continue  # evicted from the ring
            collected.append(event)
            frontier.extend(event.parents)
        return sorted(collected, key=lambda event: event.eid)

    def export_jsonl(self, path: str) -> None:
        from repro.trace.export import write_jsonl

        write_jsonl(self.events(), path)

    def export_chrome(self, path: str) -> None:
        from repro.trace.export import write_chrome

        write_chrome(self.events(), path)

    def maybe_export(self) -> Optional[str]:
        """Honour ``TraceConfig.export_path``: ``.json`` means Chrome
        ``trace_event`` format, anything else JSONL.  Returns the path
        written, or None."""
        path = self.config.export_path
        if not path:
            return None
        if path.endswith(".json"):
            self.export_chrome(path)
        else:
            self.export_jsonl(path)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(emitted={self.events_emitted}, ring={len(self._ring)}/"
            f"{self.ring_size}, monitors={len(self._monitors)})"
        )
