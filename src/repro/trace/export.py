"""Trace exporters: deterministic JSONL and Chrome ``trace_event`` JSON.

JSONL is the archival format (one event per line, sorted keys, compact
separators): byte-identical across same-seed runs, so tests can compare
exports directly.  The Chrome format targets ``chrome://tracing`` and
Perfetto: every event becomes an instant on its node's timeline (one
"thread" per node) and each send/deliver pair becomes a flow arrow.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.trace.events import TraceEvent, _plain


def jsonl_lines(events: Iterable[TraceEvent]) -> Iterable[str]:
    for event in events:
        yield event.to_json_line()


def write_jsonl(events: Iterable[TraceEvent], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for line in jsonl_lines(events):
            handle.write(line)
            handle.write("\n")


def read_jsonl(path: str) -> List[TraceEvent]:
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_json_dict(json.loads(line)))
    return events


def chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Chrome ``trace_event`` document: instants + send->deliver flows.

    Virtual time units map to microseconds (the viewer's native unit), so
    one simulated time unit reads as 1us on the timeline.
    """
    trace_events: List[dict] = []
    tids: dict = {}

    def tid_for(node) -> int:
        key = node if node is not None else "(global)"
        tid = tids.get(key)
        if tid is None:
            tid = len(tids) + 1
            tids[key] = tid
            trace_events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": key},
                }
            )
        return tid

    for event in events:
        tid = tid_for(event.node)
        ts = event.at
        args = dict(_plain(event.data))
        args["eid"] = event.eid
        args["lamport"] = event.lamport
        args["parents"] = list(event.parents)
        trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": 1,
                "tid": tid,
                "ts": ts,
                "name": event.kind,
                "cat": "repro",
                "args": args,
            }
        )
        if event.kind == "msg_send":
            trace_events.append(
                {
                    "ph": "s",
                    "pid": 1,
                    "tid": tid,
                    "ts": ts,
                    "id": event.data["msg_id"],
                    "name": "msg",
                    "cat": "msg",
                }
            )
        elif event.kind == "msg_deliver" and event.data.get("sent"):
            trace_events.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "pid": 1,
                    "tid": tid,
                    "ts": ts,
                    "id": event.data["msg_id"],
                    "name": "msg",
                    "cat": "msg",
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(events: Iterable[TraceEvent], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(events), handle, sort_keys=True)
