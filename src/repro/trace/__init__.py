"""repro.trace: causal tracing + online protocol-invariant checking.

Enable by passing a :class:`~repro.config.TraceConfig` to
:class:`~repro.Runtime`::

    from repro import Runtime, TraceConfig

    rt = Runtime(seed=1, trace=TraceConfig())   # monitors on, 64k ring
    ...
    rt.tracer.export_jsonl("run.jsonl")

See docs/TRACING.md for the event schema, the monitor catalog, and
``python -m repro.trace`` CLI examples.
"""

from repro.trace.events import EVENT_KINDS, TraceEvent
from repro.trace.monitors import (
    MONITORS,
    InvariantMonitor,
    InvariantViolation,
    build_monitors,
)
from repro.trace.tracer import Tracer

__all__ = [
    "EVENT_KINDS",
    "InvariantMonitor",
    "InvariantViolation",
    "MONITORS",
    "TraceEvent",
    "Tracer",
    "build_monitors",
]
