"""Counters and latency statistics for simulations.

A single :class:`Metrics` instance is threaded through the network and the
protocol layers.  It is deliberately dependency-free (no simulator imports)
so any component can record into it.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, Optional


class LatencyStat:
    """Streaming summary of a latency series (count/mean/min/max/percentiles).

    Keeps raw samples; simulations here are small enough (tens of thousands
    of transactions) that exact percentiles are affordable and more useful
    than sketches.
    """

    def __init__(self) -> None:
        self.samples: list[float] = []

    def record(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else math.nan

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else math.nan

    def percentile(self, p: float) -> float:
        """Exact percentile via nearest-rank; ``p`` in [0, 100]."""
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        if p <= 0:
            return ordered[0]
        if p >= 100:
            return ordered[-1]
        rank = max(1, math.ceil(len(ordered) * p / 100.0))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.samples:
            return "LatencyStat(empty)"
        return (
            f"LatencyStat(n={self.count}, mean={self.mean:.4f}, "
            f"p50={self.p50:.4f}, p99={self.p99:.4f})"
        )


class Metrics:
    """Message, byte, and event accounting for one simulation run."""

    def __init__(self) -> None:
        self.messages_sent: Dict[str, int] = defaultdict(int)
        self.messages_delivered: Dict[str, int] = defaultdict(int)
        self.messages_dropped: Dict[str, int] = defaultdict(int)
        self.messages_duplicated: Dict[str, int] = defaultdict(int)
        self.bytes_sent: Dict[str, int] = defaultdict(int)
        self.counters: Dict[str, int] = defaultdict(int)
        self.latencies: Dict[str, LatencyStat] = defaultdict(LatencyStat)

    # -- message plane ------------------------------------------------------

    def on_send(self, msg_type: str, size: int) -> None:
        self.messages_sent[msg_type] += 1
        self.bytes_sent[msg_type] += size

    def on_deliver(self, msg_type: str) -> None:
        self.messages_delivered[msg_type] += 1

    def on_drop(self, msg_type: str) -> None:
        self.messages_dropped[msg_type] += 1

    def on_duplicate(self, msg_type: str) -> None:
        self.messages_duplicated[msg_type] += 1

    # -- generic counters/latencies -----------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe(self, name: str, value: float) -> None:
        self.latencies[name].record(value)

    # -- aggregation -----------------------------------------------------------

    def total_sent(self, msg_types: Optional[Iterable[str]] = None) -> int:
        if msg_types is None:
            return sum(self.messages_sent.values())
        return sum(self.messages_sent.get(t, 0) for t in msg_types)

    def total_bytes(self, msg_types: Optional[Iterable[str]] = None) -> int:
        if msg_types is None:
            return sum(self.bytes_sent.values())
        return sum(self.bytes_sent.get(t, 0) for t in msg_types)

    def snapshot(self) -> dict:
        """A plain-dict copy, for diffing windows of a run."""
        return {
            "sent": dict(self.messages_sent),
            "delivered": dict(self.messages_delivered),
            "dropped": dict(self.messages_dropped),
            "bytes": dict(self.bytes_sent),
            "counters": dict(self.counters),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Metrics(sent={self.total_sent()}, "
            f"bytes={self.total_bytes()}, counters={len(self.counters)})"
        )
