"""One-copy serializability checking (the paper's correctness criterion).

Section 1: "Our method guarantees the one-copy serializability correctness
criterion: the concurrent execution of transactions on replicated data is
equivalent to a serial execution on non-replicated data."

We check the committed history directly.  During a run, participants report
per-group read/write sets with object *versions* (each object's base
version carries a counter bumped on every install).  The checker builds the
serialization graph over committed transactions:

- **wr** (reads-from): T1 installed version v of x, T2 read version v
  -> edge T1 -> T2;
- **ww**: T1 installed version v, T2 installed version v+1 -> T1 -> T2;
- **rw** (anti-dependency): T2 read version v, T1 installed v+1 -> T2 -> T1.

The committed execution is one-copy serializable iff the graph is acyclic
(Bernstein & Goodman; Papadimitriou).  Because version counters are derived
from the single logical install order per object, replication is already
collapsed to "one copy" -- a divergent replica would surface either here or
in the replica-convergence check that integration tests also run.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import networkx as nx


class SerializabilityViolation(AssertionError):
    """The committed history admits no equivalent serial order."""


@dataclasses.dataclass
class CommittedTransaction:
    """Merged read/write sets of one committed transaction."""

    aid: object
    reads: Dict[Tuple[str, str], int] = dataclasses.field(default_factory=dict)
    writes: Dict[Tuple[str, str], int] = dataclasses.field(default_factory=dict)


class SerializabilityChecker:
    """Builds and checks the serialization graph of a committed history."""

    def __init__(self, transactions: List[CommittedTransaction]):
        self.transactions = transactions

    def graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        for txn in self.transactions:
            graph.add_node(txn.aid)
        writers: Dict[Tuple[str, str], Dict[int, object]] = {}
        for txn in self.transactions:
            for key, version in txn.writes.items():
                by_version = writers.setdefault(key, {})
                if version in by_version and by_version[version] != txn.aid:
                    raise SerializabilityViolation(
                        f"two transactions installed version {version} of {key}: "
                        f"{by_version[version]} and {txn.aid}"
                    )
                by_version[version] = txn.aid
        for txn in self.transactions:
            for key, version in txn.reads.items():
                by_version = writers.get(key, {})
                # wr: we read the version installed by its writer
                writer = by_version.get(version)
                if writer is not None and writer != txn.aid:
                    graph.add_edge(writer, txn.aid, kind="wr")
                # rw: whoever installed the next version comes after us
                overwriter = by_version.get(version + 1)
                if overwriter is not None and overwriter != txn.aid:
                    graph.add_edge(txn.aid, overwriter, kind="rw")
            for key, version in txn.writes.items():
                by_version = writers.get(key, {})
                previous = by_version.get(version - 1)
                if previous is not None and previous != txn.aid:
                    graph.add_edge(previous, txn.aid, kind="ww")
        return graph

    def check(self) -> None:
        """Raise :class:`SerializabilityViolation` if the history is not 1SR."""
        graph = self.graph()
        try:
            cycle = nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            return
        raise SerializabilityViolation(f"serialization graph has a cycle: {cycle}")

    def is_serializable(self) -> bool:
        try:
            self.check()
        except SerializabilityViolation:
            return False
        return True
