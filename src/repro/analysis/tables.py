"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned monospace table (the shape every bench prints)."""
    text_rows: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
