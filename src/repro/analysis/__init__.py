"""Measurement and correctness-checking substrate.

- :mod:`repro.analysis.metrics` -- message/byte/latency accounting shared by
  the network, the protocol, and the experiment harness.
- :mod:`repro.analysis.serializability` -- one-copy serializability checker
  (the paper's correctness criterion, section 1) over committed histories.
- :mod:`repro.analysis.tables` -- plain-text table rendering for the
  experiment harness.
"""

from repro.analysis.ledger import LedgerViolation, TransactionLedger
from repro.analysis.metrics import LatencyStat, Metrics
from repro.analysis.serializability import (
    CommittedTransaction,
    SerializabilityChecker,
    SerializabilityViolation,
)
from repro.analysis.tables import render_table

__all__ = [
    "CommittedTransaction",
    "LatencyStat",
    "LedgerViolation",
    "Metrics",
    "SerializabilityChecker",
    "SerializabilityViolation",
    "TransactionLedger",
    "render_table",
]
