"""The transaction ledger: authoritative ground truth for one run.

Protocol code reports decisions here at the instant they become durable
(commit = the committing record is majority-known; abort = the coordinator
gave up).  The ledger is a *simulation-level* observer -- it carries no
protocol state back into the system -- and feeds:

- the one-copy serializability checker (committed read/write sets),
- exactly-once accounting (a transaction must never be both committed and
  aborted),
- view-change and availability statistics for the experiment harness.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.analysis.serializability import (
    CommittedTransaction,
    SerializabilityChecker,
)


class LedgerViolation(AssertionError):
    """The protocol reported contradictory outcomes for one transaction."""


@dataclasses.dataclass
class ViewChangeEvent:
    groupid: str
    viewid: object
    primary: int
    completed_at: float


@dataclasses.dataclass
class FaultEvent:
    """One fault injected by a :class:`~repro.faults.FaultController`."""

    at: float
    kind: str  # "crash", "recover", "partition", "heal", ...
    target: str


@dataclasses.dataclass
class DetectorEvent:
    """A failure-detector opinion change at one cohort (repro.detect)."""

    at: float
    kind: str  # "suspect" | "trust"
    groupid: str
    observer: int  # mid whose detector changed its mind
    target: int    # mid being judged


class TransactionLedger:
    """Ground-truth record of everything that was decided during a run."""

    def __init__(self, clock=None) -> None:
        self._clock = clock  # callable returning current sim time, or None
        self.committed: Dict[object, float] = {}
        self.aborted: Dict[object, str] = {}
        self.effects: Dict[Tuple[object, str], Tuple[dict, dict]] = {}
        self.view_changes: List[ViewChangeEvent] = []
        self.view_change_started: List[Tuple[str, float]] = []
        self.faults: List[FaultEvent] = []
        self.detector_events: List[DetectorEvent] = []
        self._last_at: Dict[str, float] = {}

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def _check_at(self, stream: str, at: float) -> float:
        """Shared timestamp validation for every timeline stream.

        Each stream's entries must carry non-negative, non-decreasing
        times: the ledger is an observer of a deterministic simulation, so
        a regression means a caller passed a stale or wrong clock value --
        corrupting the availability statistics silently.  Fail loudly.
        """
        if at < 0:
            raise ValueError(f"ledger {stream!r} event at negative time {at!r}")
        last = self._last_at.get(stream)
        if last is not None and at < last:
            raise ValueError(
                f"ledger {stream!r} event at {at!r} is before the stream's "
                f"latest entry at {last!r}"
            )
        self._last_at[stream] = at
        return at

    # -- protocol-facing hooks ------------------------------------------------

    def record_commit(self, aid) -> None:
        if aid in self.aborted:
            raise LedgerViolation(
                f"{aid} committed after being reported aborted "
                f"({self.aborted[aid]!r})"
            )
        self.committed.setdefault(aid, self._now())

    def record_abort(self, aid, reason: str) -> None:
        if aid in self.committed:
            raise LedgerViolation(f"{aid} aborted after being reported committed")
        self.aborted.setdefault(aid, reason)

    def record_effects(self, aid, groupid: str, reads: dict, writes: dict) -> None:
        """First report per (aid, group) wins; retries are idempotent."""
        self.effects.setdefault((aid, groupid), (dict(reads), dict(writes)))

    def record_view_change_started(self, groupid: str, at: float) -> None:
        self.view_change_started.append(
            (groupid, self._check_at("view_change", at))
        )

    def record_fault(self, kind: str, target: str, at: float) -> None:
        """Injected-fault timeline entry, so analysis can correlate
        latency spikes and aborts with the fault that caused them."""
        self.faults.append(
            FaultEvent(at=self._check_at("fault", at), kind=kind, target=target)
        )

    def record_detector_event(
        self, kind: str, groupid: str, observer: int, target: int, at: float
    ) -> None:
        """Suspicion/trust transition from a cohort's failure detector."""
        self.detector_events.append(
            DetectorEvent(
                at=self._check_at("detector", at),
                kind=kind,
                groupid=groupid,
                observer=observer,
                target=target,
            )
        )

    def record_view_change(self, groupid: str, viewid, primary: int) -> None:
        self.view_changes.append(
            ViewChangeEvent(
                groupid=groupid,
                viewid=viewid,
                primary=primary,
                completed_at=self._check_at("view_change_completed", self._now()),
            )
        )

    # -- analysis ------------------------------------------------------------

    def committed_transactions(self) -> List[CommittedTransaction]:
        merged: Dict[object, CommittedTransaction] = {}
        for (aid, groupid), (reads, writes) in self.effects.items():
            if aid not in self.committed:
                continue
            txn = merged.setdefault(aid, CommittedTransaction(aid=aid))
            for uid, version in reads.items():
                txn.reads[(groupid, uid)] = version
            for uid, version in writes.items():
                txn.writes[(groupid, uid)] = version
        return list(merged.values())

    def check_serializability(self) -> None:
        SerializabilityChecker(self.committed_transactions()).check()

    def abort_reasons(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for reason in self.aborted.values():
            counts[reason] = counts.get(reason, 0) + 1
        return counts

    @property
    def commit_count(self) -> int:
        return len(self.committed)

    @property
    def abort_count(self) -> int:
        return len(self.aborted)

    def view_changes_for(self, groupid: str) -> List[ViewChangeEvent]:
        return [event for event in self.view_changes if event.groupid == groupid]

    def view_change_durations(self, groupid: str) -> List[float]:
        """Convergence times: each completion paired with the earliest
        still-unconsumed start at or before it.  Overlapping manager
        attempts between two completions count as one outage, measured
        from the first signal that a change was needed."""
        starts = sorted(
            at for group, at in self.view_change_started if group == groupid
        )
        durations: List[float] = []
        consumed = 0
        for event in sorted(
            self.view_changes_for(groupid), key=lambda e: e.completed_at
        ):
            begin = None
            while consumed < len(starts) and starts[consumed] <= event.completed_at:
                if begin is None:
                    begin = starts[consumed]
                consumed += 1
            if begin is not None:
                durations.append(event.completed_at - begin)
        return durations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionLedger(committed={self.commit_count}, "
            f"aborted={self.abort_count}, view_changes={len(self.view_changes)})"
        )
