"""The fault controller: executes plans and nemeses against a runtime.

One :class:`FaultController` belongs to one
:class:`~repro.runtime.Runtime` (available as ``runtime.faults``).  It is
the single gate through which faults enter a simulation:

- **imperative primitives** (``crash``, ``recover``, ``partition``,
  ``heal``, ``fail_link``, ``degrade_link``, ``lossy``, ...) act on the
  runtime immediately;
- **declarative execution** (:meth:`execute`) runs
  :class:`~repro.faults.plan.FaultPlan` scripts and
  :class:`~repro.faults.nemesis.Nemesis` rules as simulated processes
  that call those same primitives.

Every injection -- however it was requested -- is appended to
:attr:`timeline`, counted in the runtime's metrics
(``faults_injected:<kind>``), and reported to the transaction ledger, so
experiments can correlate latency spikes and aborts with the exact fault
that caused them.  Because all randomness comes from named forks of the
simulator RNG, re-running the same plan against a same-seed runtime
reproduces the timeline byte for byte (:meth:`timeline_text`).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Union

from repro.faults import plan as ops
from repro.faults.nemesis import Nemesis
from repro.faults.plan import FaultPlan
from repro.net.link import LinkModel
from repro.sim.process import Process, sleep, spawn


@dataclasses.dataclass(frozen=True)
class InjectedFault:
    """One fault that actually happened, at simulated time ``at``."""

    at: float
    kind: str
    target: str

    def render(self) -> str:
        return f"{self.at:.6f} {self.kind} {self.target}".rstrip()


class FaultController:
    """Injects faults into one runtime and records everything it did."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.timeline: List[InjectedFault] = []
        self._processes: List[Process] = []
        self._default_link = runtime.network.link
        # Directed address pairs overridden by slow_node, per victim, so
        # restore_node can undo exactly what slow_node did.
        self._slow_pairs: dict = {}
        # Directed address pairs overridden by degrade_wan, so restore_wan
        # can undo exactly the cross-DC degradation.
        self._wan_pairs: List[tuple] = []

    # -- bookkeeping --------------------------------------------------------

    def _record(self, kind: str, target: str = "") -> None:
        event = InjectedFault(at=self.runtime.sim.now, kind=kind, target=target)
        self.timeline.append(event)
        self.runtime.metrics.incr(f"faults_injected:{kind}")
        self.runtime.ledger.record_fault(kind, target, event.at)
        self.runtime.sim.trace("fault", fault=kind, target=target)

    def node(self, node_id: str):
        try:
            return self.runtime.nodes[node_id]
        except KeyError:
            raise KeyError(
                f"fault targets unknown node {node_id!r}; "
                f"known: {sorted(self.runtime.nodes)}"
            ) from None

    def count(self, kind: str) -> int:
        return sum(1 for event in self.timeline if event.kind == kind)

    def timeline_text(self) -> str:
        """Canonical rendering of every injected event, for replay checks."""
        return "\n".join(event.render() for event in self.timeline)

    def spawn(self, generator, name: str) -> Process:
        process = spawn(self.runtime.sim, generator, name=name)
        self._processes.append(process)
        return process

    # -- node faults --------------------------------------------------------

    def crash(self, node_id: str) -> bool:
        """Fail-stop *node_id* now; False if it was already down."""
        node = self.node(node_id)
        if not node.up:
            return False
        node.crash()
        self._record("crash", node_id)
        return True

    def recover(self, node_id: str) -> bool:
        """Bring *node_id* back up now; False if it was already up."""
        node = self.node(node_id)
        if node.up:
            return False
        node.recover()
        self._record("recover", node_id)
        return True

    def recover_later(self, node_id: str, delay: float) -> None:
        self.runtime.sim.schedule(delay, self.recover, node_id)

    def crash_primary(
        self, groupid: str, recover_after: Optional[float] = None
    ) -> Optional[str]:
        """Crash *groupid*'s active primary; returns its node id, if any."""
        group = self.runtime.groups[groupid]
        primary = group.active_primary()
        if primary is None:
            return None
        node_id = primary.node.node_id
        self.crash(node_id)
        if recover_after is not None:
            self.recover_later(node_id, recover_after)
        return node_id

    # -- network faults ------------------------------------------------------

    def partition(self, *blocks: Iterable[str]) -> None:
        normalized = [set(block) for block in blocks]
        self.runtime.network.partition(normalized)
        self._record(
            "partition",
            " | ".join(",".join(sorted(block)) for block in normalized),
        )

    def heal(self) -> None:
        self.runtime.network.heal()
        self._record("heal")

    def fail_link(self, node_a: str, node_b: str) -> None:
        self.runtime.network.fail_link(node_a, node_b)
        self._record("fail_link", f"{node_a}<->{node_b}")

    def repair_link(self, node_a: str, node_b: str) -> None:
        self.runtime.network.repair_link(node_a, node_b)
        self._record("repair_link", f"{node_a}<->{node_b}")

    def degrade_link(
        self, src_address: str, dst_address: str, model: LinkModel
    ) -> None:
        """Override one directed address pair's link behaviour."""
        self.runtime.network.set_link_model(src_address, dst_address, model)
        self._record(
            "degrade_link",
            f"{src_address}->{dst_address} loss={model.loss_probability}",
        )

    def restore_link(self, src_address: str, dst_address: str) -> None:
        self.runtime.network.clear_link_override(src_address, dst_address)
        self._record("restore_link", f"{src_address}->{dst_address}")

    def lossy(
        self,
        rate: float,
        jitter: Optional[float] = None,
        duplicate: Optional[float] = None,
    ) -> None:
        """Degrade the network-wide default link until :meth:`restore_links`."""
        model = dataclasses.replace(
            self._default_link,
            loss_probability=rate,
            jitter=self._default_link.jitter if jitter is None else jitter,
            duplicate_probability=(
                self._default_link.duplicate_probability
                if duplicate is None
                else duplicate
            ),
        )
        self.runtime.network.link = model
        self._record("lossy", f"loss={rate}")

    def restore_links(self) -> None:
        self.runtime.network.link = self._default_link
        self._record("restore_links")

    # -- region (geo) faults --------------------------------------------------

    def _require_topology(self, what: str):
        topology = self.runtime.topology
        if topology is None:
            raise ValueError(
                f"{what} requires a geo topology "
                "(ProtocolConfig.geo with GeoConfig.topology set)"
            )
        return topology

    def region_nodes(self, region: str) -> list:
        """Node ids placed in datacenter *region*, sorted."""
        topology = self._require_topology("region_nodes")
        if region not in topology.dc_names():
            raise ValueError(
                f"unknown region {region!r} (have {list(topology.dc_names())})"
            )
        return sorted(
            node_id
            for node_id, site in self.runtime.node_sites.items()
            if topology.dc_of(site) == region
        )

    def partition_region(self, region: str) -> list:
        """Cut one datacenter off from the rest of the world.

        The region's placed nodes form one partition block; everyone
        else (other regions plus unplaced nodes) forms the implicit
        leftover block.  Restored by :meth:`heal` / :meth:`heal_all`.
        Returns the isolated node ids.
        """
        nodes = self.region_nodes(region)
        if not nodes:
            raise ValueError(f"no nodes placed in region {region!r}")
        self.runtime.network.partition([set(nodes)])
        self._record("region_partition", region)
        return nodes

    def degrade_wan(self, factor: float = 3.0, loss: float = 0.05) -> int:
        """Degrade every cross-datacenter path (both directions).

        Each cross-DC address pair gets a fault override derived from
        its *structural* model: delay and jitter scaled by *factor*,
        loss raised to at least *loss*.  Intra-DC traffic is untouched.
        Restored by :meth:`restore_wan` / :meth:`heal_all`.  Returns the
        number of directed address pairs degraded.
        """
        topology = self._require_topology("degrade_wan")
        network = self.runtime.network
        placed = sorted(self.runtime.node_sites.items())
        degraded = 0
        for src_id, src_site in placed:
            for dst_id, dst_site in placed:
                if src_id == dst_id:
                    continue
                if topology.dc_of(src_site) == topology.dc_of(dst_site):
                    continue
                base = topology.link_between(src_site, dst_site)
                model = dataclasses.replace(
                    base,
                    base_delay=base.base_delay * factor,
                    jitter=base.jitter * factor,
                    loss_probability=min(0.99, max(base.loss_probability, loss)),
                )
                for src_actor in self.runtime.nodes[src_id].actors:
                    for dst_actor in self.runtime.nodes[dst_id].actors:
                        network.set_link_model(
                            src_actor.address, dst_actor.address, model
                        )
                        self._wan_pairs.append(
                            (src_actor.address, dst_actor.address)
                        )
                        degraded += 1
        self._record("wan_degradation", f"x{factor:g} loss={loss:g}")
        return degraded

    def restore_wan(self) -> None:
        """Clear every override laid down by :meth:`degrade_wan`."""
        for src_address, dst_address in self._wan_pairs:
            self.runtime.network.clear_link_override(src_address, dst_address)
        self._wan_pairs.clear()
        self._record("restore_wan")

    # -- asymmetric (gray) network faults ------------------------------------

    def fail_link_oneway(self, src_node: str, dst_node: str) -> None:
        """Sever only src -> dst traffic; the reverse direction still works."""
        self.runtime.network.fail_link_oneway(src_node, dst_node)
        self._record("fail_link_oneway", f"{src_node}->{dst_node}")

    def repair_link_oneway(self, src_node: str, dst_node: str) -> None:
        self.runtime.network.repair_link_oneway(src_node, dst_node)
        self._record("repair_link_oneway", f"{src_node}->{dst_node}")

    def isolate_oneway(self, node_id: str, direction: str = "outbound") -> None:
        """Asymmetric partition of one node from every other node.

        ``"outbound"`` silences the node (its messages vanish but it still
        hears everyone -- it never suspects anyone while everyone suspects
        it); ``"inbound"`` deafens it (it hears nothing but its own traffic
        still arrives, so *it* calls view changes the rest ignore).
        """
        if direction not in ("outbound", "inbound"):
            raise ValueError(f"direction must be outbound/inbound, got {direction!r}")
        victim = self.node(node_id)
        for other_id in self.runtime.nodes:
            if other_id == victim.node_id:
                continue
            if direction == "outbound":
                self.runtime.network.fail_link_oneway(victim.node_id, other_id)
            else:
                self.runtime.network.fail_link_oneway(other_id, victim.node_id)
        self._record("isolate_oneway", f"{node_id} {direction}")

    def slow_node(self, node_id: str, factor: float = 8.0) -> None:
        """Gray failure: every link to/from *node_id* gets *factor* times the
        default delay and jitter (no loss).  The node keeps participating --
        just slowly enough to stall callers -- until :meth:`restore_node`."""
        if factor < 1.0:
            raise ValueError(f"slow factor must be >= 1.0, got {factor}")
        victim = self.node(node_id)
        model = dataclasses.replace(
            self._default_link,
            base_delay=self._default_link.base_delay * factor,
            jitter=self._default_link.jitter * factor,
        )
        victim_addrs = [actor.address for actor in victim.actors]
        other_addrs = [
            actor.address
            for node in self.runtime.nodes.values()
            if node is not victim
            for actor in node.actors
        ]
        pairs = []
        for src in victim_addrs:
            for dst in other_addrs:
                pairs.append((src, dst))
                pairs.append((dst, src))
        for src, dst in pairs:
            self.runtime.network.set_link_model(src, dst, model)
        self._slow_pairs[node_id] = pairs
        self._record("slow_node", f"{node_id} x{factor:g}")

    def restore_node(self, node_id: str) -> None:
        """Undo :meth:`slow_node` for *node_id* (no-op if it was not slow)."""
        pairs = self._slow_pairs.pop(node_id, None)
        if pairs is None:
            return
        for src, dst in pairs:
            self.runtime.network.clear_link_override(src, dst)
        self._record("restore_node", node_id)

    # -- disk faults ----------------------------------------------------------

    def _stores(self, node_id: str):
        stores = self.node(node_id).stable_stores
        if not stores:
            raise ValueError(f"node {node_id!r} hosts no StableStore")
        return stores

    def disk_fail(self, node_id: str) -> None:
        """Every subsequent StableStore.write on *node_id* fails with
        :class:`~repro.storage.stable.DiskFault` (nothing persists)."""
        for store in self._stores(node_id):
            store.inject_fail()
        self._record("disk_fail", node_id)

    def disk_slow(self, node_id: str, factor: float = 8.0) -> None:
        """Stretch *node_id*'s stable-write latency by *factor*."""
        for store in self._stores(node_id):
            store.inject_slow(factor)
        self._record("disk_slow", f"{node_id} x{factor:g}")

    def disk_torn(self, node_id: str) -> None:
        """Arm a one-shot torn write: the next StableStore.write on
        *node_id* persists, then the node crashes before the write is
        acknowledged (durable-but-unacknowledged)."""
        for store in self._stores(node_id):
            store.arm_torn()
        self._record("disk_torn", node_id)

    def disk_heal(self, node_id: str) -> None:
        for store in self.node(node_id).stable_stores:
            store.heal_faults()
        self._record("disk_heal", node_id)

    # -- global heal -----------------------------------------------------------

    def heal_all(self) -> None:
        """Restore every injected disruption: partitions, failed links (both
        kinds), per-pair link overrides (including slow_node), the
        network-wide default link, all disk faults, and crashed nodes
        (each recovery runs the normal crash-recovery protocol and is
        recorded individually).  This is the full contract :meth:`heal`
        deliberately does not provide."""
        self.runtime.network.heal()
        # Clears fault overrides only: structural (geo topology) link
        # models are the network's shape, not an injected disruption,
        # and deliberately survive heal_all.
        self.runtime.network.clear_link_overrides()
        self._slow_pairs.clear()
        self._wan_pairs.clear()
        self.runtime.network.link = self._default_link
        for node in self.runtime.nodes.values():
            for store in node.stable_stores:
                store.heal_faults()
        for node_id in sorted(self.runtime.nodes):
            if not self.runtime.nodes[node_id].up:
                self.recover(node_id)
        self._record("heal_all")

    # -- declarative execution ----------------------------------------------

    def execute(
        self, *sources: Union[FaultPlan, Nemesis]
    ) -> "FaultController":
        """Start executing plans/nemeses; faults fire as the clock advances."""
        for source in sources:
            if isinstance(source, FaultPlan):
                self.spawn(self._run_plan(source), name="fault-plan")
            elif isinstance(source, Nemesis):
                for rule in source.rules:
                    rule.start(self)
            else:
                raise TypeError(
                    f"execute() takes FaultPlan or Nemesis, got {source!r}"
                )
        return self

    def stop(self) -> None:
        """Stop all running plans and nemesis rules (injected state stays)."""
        for process in self._processes:
            if not process.done:
                process.interrupt()
        self._processes.clear()

    def _run_plan(self, fault_plan: FaultPlan):
        elapsed = 0.0
        for at, op in fault_plan.ops():
            if at > elapsed:
                yield sleep(at - elapsed)
                elapsed = at
            self._apply(op)

    def _apply(self, op) -> None:
        if isinstance(op, ops.Crash):
            self.crash(op.node_id)
        elif isinstance(op, ops.Recover):
            self.recover(op.node_id)
        elif isinstance(op, ops.CrashPrimary):
            self.crash_primary(op.groupid, recover_after=op.recover_after)
        elif isinstance(op, ops.Partition):
            self.partition(*op.blocks)
        elif isinstance(op, ops.Heal):
            self.heal()
        elif isinstance(op, ops.FailLink):
            self.fail_link(op.node_a, op.node_b)
        elif isinstance(op, ops.RepairLink):
            self.repair_link(op.node_a, op.node_b)
        elif isinstance(op, ops.FlapLink):
            self.spawn(self._run_flap(op), name=f"flap:{op.node_a}|{op.node_b}")
        elif isinstance(op, ops.Lossy):
            self.lossy(op.rate, jitter=op.jitter, duplicate=op.duplicate)
            if op.duration is not None:
                self.runtime.sim.schedule(op.duration, self.restore_links)
        elif isinstance(op, ops.DegradeLink):
            self.degrade_link(op.src_address, op.dst_address, op.model)
        elif isinstance(op, ops.RestoreLink):
            self.restore_link(op.src_address, op.dst_address)
        else:  # pragma: no cover - plans can only hold known ops
            raise TypeError(f"unknown fault op {op!r}")

    def _run_flap(self, op):
        deadline = self.runtime.sim.now + op.duration
        while True:
            self.fail_link(op.node_a, op.node_b)
            yield sleep(min(op.period, deadline - self.runtime.sim.now))
            self.repair_link(op.node_a, op.node_b)
            remaining = deadline - self.runtime.sim.now
            if remaining <= 0:
                return
            yield sleep(min(op.period, remaining))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultController(injected={len(self.timeline)}, "
            f"running={sum(1 for p in self._processes if not p.done)})"
        )
