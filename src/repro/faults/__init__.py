"""Deterministic fault injection: declarative plans, randomized nemeses.

The paper's claims are about behaviour *under failure* (section 4 view
changes and crash recovery, section 5 availability comparisons), so this
package makes failure workloads first-class values:

- :class:`~repro.faults.plan.FaultPlan` -- a scripted, replayable
  schedule of crashes, recoveries, partitions, and link faults;
- :class:`~repro.faults.nemesis.Nemesis` -- randomized rules (crash the
  primary every T, Poisson churn, rolling restarts, majority/minority
  partitions) driven by the seeded simulation RNG;
- :class:`~repro.faults.controller.FaultController` -- executes both
  against a :class:`~repro.runtime.Runtime` (``runtime.faults``) and
  records every injected event into the metrics and the ledger timeline.

See ``docs/FAULTS.md`` for a walkthrough.
"""

from repro.faults.controller import FaultController, InjectedFault
from repro.faults.nemesis import (
    AsymmetricPartitionRule,
    CrashChurnRule,
    CrashPrimaryRule,
    DiskFaultRule,
    FaultRule,
    GroupPartitionRule,
    MuteBackupUplinksRule,
    Nemesis,
    PartitionStormRule,
    RegionPartitionRule,
    RollingRestartRule,
    SlowNodeRule,
    WanDegradationRule,
)
from repro.faults.plan import FaultPlan

__all__ = [
    "AsymmetricPartitionRule",
    "CrashChurnRule",
    "CrashPrimaryRule",
    "DiskFaultRule",
    "FaultController",
    "FaultPlan",
    "FaultRule",
    "GroupPartitionRule",
    "InjectedFault",
    "MuteBackupUplinksRule",
    "Nemesis",
    "PartitionStormRule",
    "RegionPartitionRule",
    "RollingRestartRule",
    "SlowNodeRule",
    "WanDegradationRule",
]
