"""Nemesis: randomized, protocol-aware failure workloads.

Where a :class:`~repro.faults.plan.FaultPlan` scripts faults at fixed
times against fixed targets, a :class:`Nemesis` carries *rules* that pick
their victims and timing at run time -- "crash the primary every T",
Poisson crash/recover churn, rolling restarts, random majority/minority
partitions.  Every random draw comes from a named fork of the simulator's
seeded RNG, so a nemesis is exactly as reproducible as a static plan: the
same seed yields a byte-identical injected-event timeline.

Rules are started by a :class:`~repro.faults.controller.FaultController`
and inject through its primitives, so everything a nemesis does lands in
the controller's timeline, the metrics counters, and the ledger.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.net.link import LinkModel
from repro.sim.process import sleep


class FaultRule:
    """One autonomous failure behaviour; subclasses implement ``run``.

    ``start`` is called once by the controller; the default spawns the
    rule's ``run`` generator as a controller-tracked process.  Rules that
    need several concurrent processes (e.g. per-node churn) override
    ``start`` instead.
    """

    label = "rule"

    def start(self, controller) -> None:
        controller.spawn(self.run(controller), name=f"nemesis:{self.label}")

    def run(self, controller):
        raise NotImplementedError


@dataclasses.dataclass
class CrashPrimaryRule(FaultRule):
    """Crash *groupid*'s active primary every *every*, *count* times."""

    groupid: str
    every: float
    count: int = 1
    recover_after: Optional[float] = None
    label = "crash-primary"

    def run(self, controller):
        for _ in range(self.count):
            yield sleep(self.every)
            controller.crash_primary(self.groupid, recover_after=self.recover_after)


@dataclasses.dataclass
class RollingRestartRule(FaultRule):
    """Restart nodes one at a time: crash, recover after *downtime*."""

    node_ids: Sequence[str]
    every: float
    downtime: float
    rounds: int = 1
    label = "rolling-restart"

    def run(self, controller):
        for _ in range(self.rounds):
            for node_id in self.node_ids:
                yield sleep(self.every)
                if controller.crash(node_id):
                    controller.recover_later(node_id, self.downtime)


@dataclasses.dataclass
class CrashChurnRule(FaultRule):
    """Poisson crash/recover churn: each node independently fails with
    exponential MTTF and recovers after exponential MTTR.  ``max_down``
    caps simultaneous failures (set it to the sub-majority to keep the
    group formable, or leave uncapped to allow catastrophes).

    ``protect_group`` adds the stronger, protocol-aware guard ``max_down``
    alone cannot give: with the MINIMAL stable-storage policy a *recovered*
    node contributes nothing until a view change brings it up to date, so
    crashing the next node while the last one is still catching up can
    leave fewer than a majority of up-to-date cohorts -- state the group
    can never safely re-form from (it stalls forever, by design, rather
    than lose forced commits).  With ``protect_group`` set, a crash is
    held off unless the group would keep a majority of up, up-to-date
    cohorts afterwards.
    """

    node_ids: Sequence[str]
    mttf: float
    mttr: float
    max_down: Optional[int] = None
    rng_name: str = "crash-schedule"
    protect_group: Optional[str] = None
    label = "crash-churn"

    def start(self, controller) -> None:
        # One process per node, all drawing from one shared named stream:
        # the spawn order (node order) makes the draw sequence, and hence
        # the timeline, deterministic for a given seed.
        rng = controller.runtime.sim.rng.fork(self.rng_name)
        for node_id in self.node_ids:
            controller.spawn(
                self._churn(controller, node_id, rng), name=f"churn:{node_id}"
            )

    def _down_count(self, controller) -> int:
        return sum(
            1 for node_id in self.node_ids if not controller.node(node_id).up
        )

    def _crash_would_strand(self, controller, node_id: str) -> bool:
        """Would crashing *node_id* leave ``protect_group`` without a
        majority of up, up-to-date cohorts?

        With witness replicas (repro.scale) a bare majority is not enough:
        witnesses hold no event buffer, so a surviving quorum made mostly
        (or entirely) of witnesses cannot cover the force quorums of past
        views and the group can never safely re-form.  The guard therefore
        additionally requires enough up, up-to-date *storage* cohorts to
        intersect every all-storage force quorum (the form_view coverage
        condition).  With no witnesses configured both checks coincide
        with the original majority test.
        """
        group = controller.runtime.groups[self.protect_group]
        witness_mids = getattr(group, "witness_mids", frozenset())
        survivors = 0
        storage_survivors = 0
        for cohort in group.cohorts.values():
            if (
                cohort.node.node_id == node_id
                or not cohort.node.up
                or not cohort.up_to_date
            ):
                continue
            survivors += 1
            if cohort.mymid not in witness_mids:
                storage_survivors += 1
        if survivors < group.majority_size():
            return True
        if witness_mids:
            storage_total = group.size - len(witness_mids)
            needed = max(1, storage_total - group.majority_size() + 1)
            if storage_survivors < needed:
                return True
        return False

    def _churn(self, controller, node_id: str, rng):
        node = controller.node(node_id)
        while True:
            yield sleep(rng.expovariate(1.0 / self.mttf))
            if self.max_down is not None and self._down_count(controller) >= self.max_down:
                continue  # hold off; too many already down
            if not node.up:
                continue
            if self.protect_group is not None and self._crash_would_strand(
                controller, node_id
            ):
                continue  # hold off; a peer is still catching up
            controller.crash(node_id)
            yield sleep(rng.expovariate(1.0 / self.mttr))
            if node.up:
                continue
            controller.recover(node_id)


@dataclasses.dataclass
class PartitionStormRule(FaultRule):
    """Repeatedly split the nodes into two random blocks, then heal."""

    node_ids: Sequence[str]
    mean_healthy: float
    mean_partitioned: float
    rng_name: str = "partition-schedule"
    label = "partition-storm"

    def run(self, controller):
        rng = controller.runtime.sim.rng.fork(self.rng_name)
        while True:
            yield sleep(rng.expovariate(1.0 / self.mean_healthy))
            ids = list(self.node_ids)
            rng.shuffle(ids)
            cut = rng.randint(1, len(ids) - 1)
            controller.partition(set(ids[:cut]), set(ids[cut:]))
            yield sleep(rng.expovariate(1.0 / self.mean_partitioned))
            controller.heal()


@dataclasses.dataclass
class GroupPartitionRule(FaultRule):
    """Partition a group so its primary lands on a chosen side.

    ``primary_side`` is ``"minority"`` (the paper's interesting case: the
    old primary is fenced because it cannot force to a sub-majority),
    ``"majority"`` (the group keeps serving), or ``"random"``.  The
    minority block is a random sub-majority of the group's nodes.
    """

    groupid: str
    every: float
    duration: float
    count: int = 1
    primary_side: str = "minority"
    rng_name: str = "group-partition"
    label = "group-partition"

    def run(self, controller):
        rng = controller.runtime.sim.rng.fork(self.rng_name)
        group = controller.runtime.groups[self.groupid]
        for _ in range(self.count):
            yield sleep(self.every)
            node_ids = [node.node_id for node in group.nodes()]
            minority_size = (len(node_ids) - 1) // 2
            if minority_size < 1:
                continue  # a group of <= 2 has no strict minority to isolate
            primary = group.active_primary()
            primary_node = primary.node.node_id if primary is not None else None
            side = self.primary_side
            if side == "random" or primary_node is None:
                side = rng.choice(("minority", "majority"))
            others = [nid for nid in node_ids if nid != primary_node]
            rng.shuffle(others)
            if primary_node is not None and side == "minority":
                minority = {primary_node, *others[: minority_size - 1]}
            else:
                minority = set(others[:minority_size])
            majority_block = set(node_ids) - minority
            controller.partition(minority, majority_block)
            yield sleep(self.duration)
            controller.heal()


@dataclasses.dataclass
class LossyBurstsRule(FaultRule):
    """Alternate clean and lossy periods on the network-wide link.

    Models weather on a shared segment: every exponential *mean_healthy*
    the default link degrades to *loss* (and optionally *duplicate*) for
    an exponential *mean_lossy*, then is restored.  Combine with a
    partition storm for the E16 robustness scenario.
    """

    mean_healthy: float
    mean_lossy: float
    loss: float = 0.25
    duplicate: Optional[float] = None
    rng_name: str = "lossy-schedule"
    label = "lossy-bursts"

    def run(self, controller):
        rng = controller.runtime.sim.rng.fork(self.rng_name)
        while True:
            yield sleep(rng.expovariate(1.0 / self.mean_healthy))
            controller.lossy(self.loss, duplicate=self.duplicate)
            yield sleep(rng.expovariate(1.0 / self.mean_lossy))
            controller.restore_links()


@dataclasses.dataclass
class RegionPartitionRule(FaultRule):
    """Cut a whole datacenter off *count* times, healing in between.

    ``region`` names a datacenter, or ``"random"`` to draw one per
    episode from the rule's seeded stream.  Requires a geo topology
    (``ProtocolConfig.geo``); built on ``controller.partition_region``,
    restored by ``controller.heal()``.
    """

    region: str
    every: float
    duration: float
    count: int = 1
    rng_name: str = "region-partition"
    label = "region-partition"

    def run(self, controller):
        rng = controller.runtime.sim.rng.fork(self.rng_name)
        for _ in range(self.count):
            yield sleep(self.every)
            region = self.region
            if region == "random":
                topology = controller.runtime.topology
                if topology is None:
                    raise ValueError(
                        "region_partition requires a geo topology"
                    )
                region = rng.choice(list(topology.dc_names()))
            controller.partition_region(region)
            yield sleep(self.duration)
            controller.heal()


@dataclasses.dataclass
class WanDegradationRule(FaultRule):
    """Alternate healthy and degraded WAN weather on cross-DC paths.

    Every exponential *mean_healthy*, every cross-datacenter pair's
    delay/jitter scales by *factor* and its loss floor rises to *loss*
    for an exponential *mean_degraded*; intra-DC traffic never suffers.
    Built on ``controller.degrade_wan`` / ``restore_wan`` (so
    ``heal_all()`` also clears it).
    """

    mean_healthy: float
    mean_degraded: float
    factor: float = 3.0
    loss: float = 0.05
    rng_name: str = "wan-degradation"
    label = "wan-degradation"

    def run(self, controller):
        rng = controller.runtime.sim.rng.fork(self.rng_name)
        while True:
            yield sleep(rng.expovariate(1.0 / self.mean_healthy))
            controller.degrade_wan(self.factor, self.loss)
            yield sleep(rng.expovariate(1.0 / self.mean_degraded))
            controller.restore_wan()


@dataclasses.dataclass
class MuteBackupUplinksRule(FaultRule):
    """Asymmetric outage: silence one backup's uplinks, then restore.

    Every *every*, the first non-primary cohort's outgoing links to its
    peers are overridden with *link* (typically near-total loss) for
    *duration*: its heartbeats and acks vanish while it still hears the
    primary, so it never secedes -- the section 4.1 scenario where the
    primary must either unilaterally edit its view or run a full view
    change.
    """

    groupid: str
    every: float
    duration: float
    rounds: int = 1
    link: LinkModel = dataclasses.field(
        default_factory=lambda: LinkModel(
            base_delay=1.0, jitter=0.2, loss_probability=0.9999
        )
    )
    label = "mute-backup-uplinks"

    def run(self, controller):
        group = controller.runtime.groups[self.groupid]
        for _ in range(self.rounds):
            yield sleep(self.every)
            primary = group.active_primary()
            if primary is None:
                continue
            victim = next(
                group.cohort(mid)
                for mid in range(group.size)
                if mid != primary.mymid
            )
            peers = [
                address
                for peer, address in victim.configuration
                if peer != victim.mymid
            ]
            for address in peers:
                controller.degrade_link(victim.address, address, self.link)
            yield sleep(self.duration)
            for address in peers:
                controller.restore_link(victim.address, address)


@dataclasses.dataclass
class DiskFaultRule(FaultRule):
    """Inject stable-storage faults on random nodes, then heal them.

    Every exponential *mean_healthy* a random node's disks fail (*mode*
    ``"fail"``: writes error), slow down (*mode* ``"slow"``: writes take
    *slow_factor* times longer), or arm a torn write (*mode* ``"torn"``:
    the next write persists but the node crashes unacknowledged).  Fail
    and slow are healed after an exponential *mean_faulty*; torn victims
    are healed and recovered after it (the crash is the fault).
    """

    node_ids: Sequence[str]
    mean_healthy: float
    mean_faulty: float
    mode: str = "fail"
    slow_factor: float = 8.0
    rng_name: str = "disk-schedule"
    label = "disk-faults"

    def __post_init__(self):
        if self.mode not in ("fail", "slow", "torn"):
            raise ValueError(f"mode must be fail/slow/torn, got {self.mode!r}")
        if not self.node_ids:
            raise ValueError("node_ids must be non-empty")

    def run(self, controller):
        rng = controller.runtime.sim.rng.fork(self.rng_name)
        while True:
            yield sleep(rng.expovariate(1.0 / self.mean_healthy))
            victim = rng.choice(list(self.node_ids))
            if self.mode == "fail":
                controller.disk_fail(victim)
            elif self.mode == "slow":
                controller.disk_slow(victim, self.slow_factor)
            else:
                controller.disk_torn(victim)
            yield sleep(rng.expovariate(1.0 / self.mean_faulty))
            controller.disk_heal(victim)
            if self.mode == "torn" and not controller.node(victim).up:
                controller.recover(victim)


@dataclasses.dataclass
class AsymmetricPartitionRule(FaultRule):
    """One-directional outages: a random node goes mute or deaf, then heals.

    Every exponential *mean_healthy* a random victim is isolated in a
    random single direction (outbound = mute: it hears everyone, nobody
    hears it; inbound = deaf) for an exponential *mean_partitioned*, then
    the one-way links are repaired.  The two sides of the cut disagree
    about who is unreachable -- the classic gray-failure trigger.
    """

    node_ids: Sequence[str]
    mean_healthy: float
    mean_partitioned: float
    rng_name: str = "asymmetric-schedule"
    label = "asymmetric-partition"

    def __post_init__(self):
        if not self.node_ids:
            raise ValueError("node_ids must be non-empty")

    def run(self, controller):
        rng = controller.runtime.sim.rng.fork(self.rng_name)
        while True:
            yield sleep(rng.expovariate(1.0 / self.mean_healthy))
            victim = rng.choice(list(self.node_ids))
            direction = rng.choice(("outbound", "inbound"))
            controller.isolate_oneway(victim, direction)
            yield sleep(rng.expovariate(1.0 / self.mean_partitioned))
            for other in self.node_ids:
                if other == victim:
                    continue
                if direction == "outbound":
                    controller.repair_link_oneway(victim, other)
                else:
                    controller.repair_link_oneway(other, victim)


@dataclasses.dataclass
class SlowNodeRule(FaultRule):
    """Gray failure: a random node goes slow (links and disk), then recovers.

    Every exponential *mean_healthy* a random victim's links are stretched
    by *link_factor* and its stable writes by *disk_factor* for an
    exponential *mean_slow*.  The node stays up and correct -- just slow
    enough to drag on whoever depends on it.
    """

    node_ids: Sequence[str]
    mean_healthy: float
    mean_slow: float
    link_factor: float = 8.0
    disk_factor: float = 8.0
    rng_name: str = "slow-schedule"
    label = "slow-node"

    def __post_init__(self):
        if not self.node_ids:
            raise ValueError("node_ids must be non-empty")
        if self.link_factor < 1.0 or self.disk_factor < 1.0:
            raise ValueError(
                f"factors must be >= 1.0, got link={self.link_factor} "
                f"disk={self.disk_factor}"
            )

    def run(self, controller):
        rng = controller.runtime.sim.rng.fork(self.rng_name)
        while True:
            yield sleep(rng.expovariate(1.0 / self.mean_healthy))
            victim = rng.choice(list(self.node_ids))
            controller.slow_node(victim, self.link_factor)
            controller.disk_slow(victim, self.disk_factor)
            yield sleep(rng.expovariate(1.0 / self.mean_slow))
            controller.restore_node(victim)
            controller.disk_heal(victim)


class Nemesis:
    """A named bundle of randomized failure rules, built fluently::

        nemesis = (
            Nemesis()
            .crash_primary("kv", every=300.0, count=10, recover_after=140.0)
            .partition_storm(node_ids, mean_healthy=600.0, mean_partitioned=400.0)
        )
        rt.faults.execute(nemesis)
    """

    def __init__(self, name: str = "nemesis"):
        self.name = name
        self.rules: List[FaultRule] = []

    def _stream(self, kind: str) -> str:
        return f"{self.name}/{kind}-{len(self.rules)}"

    def add(self, rule: FaultRule) -> "Nemesis":
        self.rules.append(rule)
        return self

    def crash_primary(
        self,
        groupid: str,
        every: float,
        count: int = 1,
        recover_after: Optional[float] = None,
    ) -> "Nemesis":
        return self.add(CrashPrimaryRule(groupid, every, count, recover_after))

    def crash_shard_primary(
        self,
        sharded,
        shard: int,
        every: float,
        count: int = 1,
        recover_after: Optional[float] = None,
    ) -> "Nemesis":
        """Crash one shard of a sharded group (façade or name) by index.

        Targets only ``{name}-s{shard}``; the other shards and the router
        group keep serving, so only transactions touching this shard see
        the view change.
        """
        from repro.shard.facade import resolve_shard_groupid

        groupid = resolve_shard_groupid(sharded, shard)
        return self.add(CrashPrimaryRule(groupid, every, count, recover_after))

    def partition_shard(
        self,
        sharded,
        shard: int,
        every: float,
        duration: float,
        count: int = 1,
        primary_side: str = "minority",
        rng_name: Optional[str] = None,
    ) -> "Nemesis":
        """Partition one shard of a sharded group (façade or name) by index."""
        from repro.shard.facade import resolve_shard_groupid

        groupid = resolve_shard_groupid(sharded, shard)
        return self.partition_group(
            groupid, every, duration, count, primary_side, rng_name
        )

    def rolling_restart(
        self,
        node_ids: Sequence[str],
        every: float,
        downtime: float,
        rounds: int = 1,
    ) -> "Nemesis":
        return self.add(RollingRestartRule(tuple(node_ids), every, downtime, rounds))

    def crash_churn(
        self,
        node_ids: Sequence[str],
        mttf: float,
        mttr: float,
        max_down: Optional[int] = None,
        rng_name: str = "crash-schedule",
        protect_group: Optional[str] = None,
    ) -> "Nemesis":
        return self.add(
            CrashChurnRule(
                tuple(node_ids), mttf, mttr, max_down, rng_name, protect_group
            )
        )

    def partition_storm(
        self,
        node_ids: Sequence[str],
        mean_healthy: float,
        mean_partitioned: float,
        rng_name: str = "partition-schedule",
    ) -> "Nemesis":
        return self.add(
            PartitionStormRule(
                tuple(node_ids), mean_healthy, mean_partitioned, rng_name
            )
        )

    def partition_group(
        self,
        groupid: str,
        every: float,
        duration: float,
        count: int = 1,
        primary_side: str = "minority",
        rng_name: Optional[str] = None,
    ) -> "Nemesis":
        return self.add(
            GroupPartitionRule(
                groupid,
                every,
                duration,
                count,
                primary_side,
                rng_name or self._stream("group-partition"),
            )
        )

    def lossy_bursts(
        self,
        mean_healthy: float,
        mean_lossy: float,
        loss: float = 0.25,
        duplicate: Optional[float] = None,
        rng_name: Optional[str] = None,
    ) -> "Nemesis":
        return self.add(
            LossyBurstsRule(
                mean_healthy,
                mean_lossy,
                loss,
                duplicate,
                rng_name or self._stream("lossy"),
            )
        )

    def disk_faults(
        self,
        node_ids: Sequence[str],
        mean_healthy: float,
        mean_faulty: float,
        mode: str = "fail",
        slow_factor: float = 8.0,
        rng_name: Optional[str] = None,
    ) -> "Nemesis":
        return self.add(
            DiskFaultRule(
                tuple(node_ids),
                mean_healthy,
                mean_faulty,
                mode,
                slow_factor,
                rng_name or self._stream("disk"),
            )
        )

    def asymmetric_partition(
        self,
        node_ids: Sequence[str],
        mean_healthy: float,
        mean_partitioned: float,
        rng_name: Optional[str] = None,
    ) -> "Nemesis":
        return self.add(
            AsymmetricPartitionRule(
                tuple(node_ids),
                mean_healthy,
                mean_partitioned,
                rng_name or self._stream("asymmetric"),
            )
        )

    def slow_node(
        self,
        node_ids: Sequence[str],
        mean_healthy: float,
        mean_slow: float,
        link_factor: float = 8.0,
        disk_factor: float = 8.0,
        rng_name: Optional[str] = None,
    ) -> "Nemesis":
        return self.add(
            SlowNodeRule(
                tuple(node_ids),
                mean_healthy,
                mean_slow,
                link_factor,
                disk_factor,
                rng_name or self._stream("slow"),
            )
        )

    def mute_backup_uplinks(
        self,
        groupid: str,
        every: float,
        duration: float,
        rounds: int = 1,
        link: Optional[LinkModel] = None,
    ) -> "Nemesis":
        rule = MuteBackupUplinksRule(groupid, every, duration, rounds)
        if link is not None:
            rule.link = link
        return self.add(rule)

    def region_partition(
        self,
        region: str,
        every: float,
        duration: float,
        count: int = 1,
        rng_name: Optional[str] = None,
    ) -> "Nemesis":
        return self.add(
            RegionPartitionRule(
                region,
                every,
                duration,
                count,
                rng_name or self._stream("region-partition"),
            )
        )

    def wan_degradation(
        self,
        mean_healthy: float,
        mean_degraded: float,
        factor: float = 3.0,
        loss: float = 0.05,
        rng_name: Optional[str] = None,
    ) -> "Nemesis":
        return self.add(
            WanDegradationRule(
                mean_healthy,
                mean_degraded,
                factor,
                loss,
                rng_name or self._stream("wan-degradation"),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Nemesis({self.name!r}, rules={len(self.rules)})"
