"""Declarative fault plans: *what* to inject and *when*, as plain data.

A :class:`FaultPlan` is a time-ordered script of fault operations --
crashes, recoveries, partitions, link failures, loss injection -- with no
reference to any live runtime.  Plans are built with a fluent cursor API::

    plan = FaultPlan()
    plan.at(300).crash("kv-n0")
    plan.at(500).recover("kv-n0")
    plan.at(800).partition({"kv-n0"}, {"kv-n1", "kv-n2"})
    plan.at(1400).heal()
    plan.at(0).flap_link("kv-n1", "kv-n2", period=40.0, duration=600.0)
    plan.at(0).lossy(rate=0.1, duration=1000.0)

Times are relative to the moment the plan is handed to a
:class:`~repro.faults.controller.FaultController`, so the same plan can be
replayed against any runtime (and, with the same seed, reproduces a
byte-identical injected-event timeline).  The paper's failure model
(section 1: fail-stop crashes, lost/duplicated/reordered messages, link
failures that partition the network) maps one-to-one onto these ops.

Dynamic targets that depend on protocol state at injection time (``which
node is the primary?``) are expressed with :meth:`_Cursor.crash_primary`;
randomized, open-ended failure workloads belong in
:class:`~repro.faults.nemesis.Nemesis` instead.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Tuple

from repro.net.link import LinkModel


# -- fault operations (plain declarative records) ---------------------------


@dataclasses.dataclass(frozen=True)
class Crash:
    node_id: str


@dataclasses.dataclass(frozen=True)
class Recover:
    node_id: str


@dataclasses.dataclass(frozen=True)
class CrashPrimary:
    """Crash whichever node hosts *groupid*'s active primary at fire time."""

    groupid: str
    recover_after: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class Partition:
    blocks: Tuple[Tuple[str, ...], ...]


@dataclasses.dataclass(frozen=True)
class Heal:
    pass


@dataclasses.dataclass(frozen=True)
class FailLink:
    node_a: str
    node_b: str


@dataclasses.dataclass(frozen=True)
class RepairLink:
    node_a: str
    node_b: str


@dataclasses.dataclass(frozen=True)
class FlapLink:
    """Alternately sever and repair one link every *period*, for *duration*.

    The link always ends repaired, even if *duration* is not a whole
    number of periods.
    """

    node_a: str
    node_b: str
    period: float
    duration: float


@dataclasses.dataclass(frozen=True)
class Lossy:
    """Degrade the whole network's default link for *duration* time units.

    ``rate`` is the per-message loss probability; ``duplicate`` optionally
    overrides the duplicate probability and ``jitter`` the delay jitter.
    The previous default link model is restored afterwards (per-pair
    overrides installed via :meth:`FaultController.degrade_link` are
    unaffected).
    """

    rate: float
    duration: Optional[float] = None
    jitter: Optional[float] = None
    duplicate: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class DegradeLink:
    """Install a per-directed-address-pair link model override."""

    src_address: str
    dst_address: str
    model: LinkModel


@dataclasses.dataclass(frozen=True)
class RestoreLink:
    src_address: str
    dst_address: str


FaultOp = object  # any of the dataclasses above


class _Cursor:
    """Fluent builder for the ops scheduled at one instant of a plan."""

    def __init__(self, plan: "FaultPlan", at: float):
        self._plan = plan
        self._at = at

    def _add(self, op: FaultOp) -> "_Cursor":
        self._plan._add(self._at, op)
        return self

    def crash(self, node_id: str) -> "_Cursor":
        return self._add(Crash(node_id))

    def recover(self, node_id: str) -> "_Cursor":
        return self._add(Recover(node_id))

    def crash_primary(
        self, groupid: str, recover_after: Optional[float] = None
    ) -> "_Cursor":
        return self._add(CrashPrimary(groupid, recover_after))

    def crash_shard_primary(
        self, sharded, shard: int, recover_after: Optional[float] = None
    ) -> "_Cursor":
        """Crash one shard (by index) of a sharded group (façade or name)."""
        from repro.shard.facade import resolve_shard_groupid

        return self._add(
            CrashPrimary(resolve_shard_groupid(sharded, shard), recover_after)
        )

    def partition(self, *blocks: Iterable[str]) -> "_Cursor":
        if not blocks:
            raise ValueError("partition() needs at least one block of node ids")
        return self._add(
            Partition(tuple(tuple(sorted(block)) for block in blocks))
        )

    def heal(self) -> "_Cursor":
        return self._add(Heal())

    def fail_link(self, node_a: str, node_b: str) -> "_Cursor":
        return self._add(FailLink(node_a, node_b))

    def repair_link(self, node_a: str, node_b: str) -> "_Cursor":
        return self._add(RepairLink(node_a, node_b))

    def flap_link(
        self, node_a: str, node_b: str, period: float, duration: float
    ) -> "_Cursor":
        if period <= 0 or duration <= 0:
            raise ValueError("flap_link() needs period > 0 and duration > 0")
        return self._add(FlapLink(node_a, node_b, period, duration))

    def lossy(
        self,
        rate: float,
        duration: Optional[float] = None,
        jitter: Optional[float] = None,
        duplicate: Optional[float] = None,
    ) -> "_Cursor":
        if not 0.0 <= rate < 1.0:
            raise ValueError("lossy() rate must be in [0, 1)")
        return self._add(Lossy(rate, duration, jitter, duplicate))

    def degrade_link(
        self, src_address: str, dst_address: str, model: LinkModel
    ) -> "_Cursor":
        return self._add(DegradeLink(src_address, dst_address, model))

    def restore_link(self, src_address: str, dst_address: str) -> "_Cursor":
        return self._add(RestoreLink(src_address, dst_address))


class FaultPlan:
    """A deterministic, replayable schedule of fault injections."""

    def __init__(self) -> None:
        self._scheduled: List[Tuple[float, int, FaultOp]] = []
        self._order = 0

    def _add(self, at: float, op: FaultOp) -> None:
        if at < 0:
            raise ValueError(f"fault scheduled in the past: at={at!r}")
        self._order += 1
        self._scheduled.append((at, self._order, op))

    def at(self, time: float) -> _Cursor:
        """Cursor scheduling ops *time* units after execution starts."""
        return _Cursor(self, time)

    def ops(self) -> List[Tuple[float, FaultOp]]:
        """(time, op) pairs in execution order (time, then insertion)."""
        return [(at, op) for at, _order, op in sorted(self._scheduled)]

    def __len__(self) -> int:
        return len(self._scheduled)

    def __iadd__(self, other: "FaultPlan") -> "FaultPlan":
        """Merge another plan's ops into this one (times stay as given)."""
        for at, _order, op in sorted(other._scheduled):
            self._add(at, op)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(ops={len(self._scheduled)})"
