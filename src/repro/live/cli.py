"""``python -m repro.live``: the liveness coverage matrix and its tooling.

Subcommands::

    matrix [--seed N] [--duration D] [--schedule NAME ...]
           [--quick] [--trace] [--artifact-dir DIR]
        Run the nemesis x spec coverage matrix (the default command).
        Healable schedules must produce zero violations; the unhealable
        majority partition must produce one that names the cut.  On a
        failing cell the StallReport (and, with --trace, its causal
        slice) is written under --artifact-dir.

    specs
        The liveness-spec catalog with default windows.

    schedules
        The nemesis schedules the matrix crosses the specs against.

    check-docs DOC
        Fail unless every spec name, schedule name, and StallReport
        field is mentioned in DOC (the docs-drift gate for
        docs/LIVENESS.md).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys

from repro.config import ProtocolConfig
from repro.live.matrix import SCHEDULES, run_matrix
from repro.live.report import StallReport
from repro.live.specs import (
    EventuallyCommits,
    EventuallySinglePrimary,
    NoLivelock,
    ViewChangeConverges,
    spec_catalog,
)

SPEC_CLASSES = (
    EventuallySinglePrimary,
    EventuallyCommits,
    ViewChangeConverges,
    NoLivelock,
)


def _export_cell_artifacts(result, artifact_dir: str) -> None:
    os.makedirs(artifact_dir, exist_ok=True)
    base = os.path.join(artifact_dir, f"{result.schedule}-seed{result.seed}")
    with open(f"{base}.txt", "w", encoding="utf-8") as handle:
        handle.write(result.render() + "\n")
        if result.report is not None:
            handle.write(result.report.render() + "\n")
    if result.report is not None and result.report.causal_slice:
        with open(f"{base}-slice.jsonl", "w", encoding="utf-8") as handle:
            for event in result.report.causal_slice:
                handle.write(event.to_json_line() + "\n")


def _matrix(args) -> int:
    duration = args.duration
    if args.quick and args.duration == _DEFAULT_DURATION:
        duration = 2_500.0
    trace = None
    if args.trace:
        from repro.config import TraceConfig

        trace = TraceConfig(enabled=True, ring_size=20_000)
    results = run_matrix(
        seed=args.seed,
        duration=duration,
        schedules=args.schedule or None,
        trace=trace,
    )
    failed = [result for result in results if not result.ok]
    for result in results:
        print(result.render())
    for result in failed:
        if args.artifact_dir:
            _export_cell_artifacts(result, args.artifact_dir)
        if result.report is not None:
            print()
            print(result.report.render())
    print()
    print(
        f"matrix: {len(results) - len(failed)}/{len(results)} cells ok "
        f"(seed {args.seed}, duration {duration:g})"
    )
    return 1 if failed else 0


def _specs(_args) -> int:
    config = ProtocolConfig()
    for spec in spec_catalog("GROUP", config, commits=1):
        print(spec.describe())
        doc = (type(spec).__doc__ or "").strip().splitlines()[0]
        print(f"    {doc}")
    return 0


def _schedules(_args) -> int:
    for name in SCHEDULES:
        schedule = SCHEDULES[name]
        kind = "unhealable" if schedule.expect_violation else "healable"
        note = f" -- {schedule.note}" if schedule.note else ""
        print(f"{name}  [{kind}]{note}")
    return 0


def _check_docs(args) -> int:
    try:
        with open(args.doc, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        print(f"cannot read {args.doc}: {error}", file=sys.stderr)
        return 2
    required = sorted(
        {cls.name for cls in SPEC_CLASSES}
        | set(SCHEDULES)
        | {field.name for field in dataclasses.fields(StallReport)}
    )
    missing = [name for name in required if name not in text]
    if missing:
        print(
            f"{args.doc} is missing documentation for: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"{args.doc} documents all {len(SPEC_CLASSES)} specs, "
        f"{len(SCHEDULES)} schedules, and every StallReport field"
    )
    return 0


_DEFAULT_DURATION = 5_000.0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    commands = {"matrix", "specs", "schedules", "check-docs"}
    if argv and argv[0] not in commands and argv[0] not in ("-h", "--help"):
        argv = ["matrix"] + list(argv)  # bare flags mean the matrix
    elif not argv:
        argv = ["matrix"]
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="Liveness specs, stall diagnosis, and the coverage matrix.",
    )
    sub = parser.add_subparsers(dest="command")

    matrix = sub.add_parser("matrix", help="run the nemesis x spec matrix")
    matrix.add_argument("--seed", type=int, default=0)
    matrix.add_argument("--duration", type=float, default=_DEFAULT_DURATION)
    matrix.add_argument(
        "--schedule",
        action="append",
        choices=sorted(SCHEDULES),
        help="run only these schedules (repeatable)",
    )
    matrix.add_argument(
        "--quick", action="store_true", help="shorter cells for CI smoke"
    )
    matrix.add_argument(
        "--trace",
        action="store_true",
        help="arm repro.trace so StallReports carry causal slices",
    )
    matrix.add_argument("--artifact-dir", default=None)
    matrix.set_defaults(fn=_matrix)

    specs = sub.add_parser("specs", help="the liveness-spec catalog")
    specs.set_defaults(fn=_specs)

    schedules = sub.add_parser("schedules", help="the nemesis schedules")
    schedules.set_defaults(fn=_schedules)

    check = sub.add_parser(
        "check-docs", help="assert DOC mentions every spec/schedule/field"
    )
    check.add_argument("doc")
    check.set_defaults(fn=_check_docs)

    args = parser.parse_args(argv)
    return args.fn(args)
