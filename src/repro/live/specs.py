"""Liveness specs: window-bounded eventual-progress assertions.

A safety monitor (:mod:`repro.trace.monitors`) says "this must never
happen"; a liveness spec says "this must *eventually* happen, and
'eventually' has a budget".  Each spec is a predicate plus a window:
whenever the predicate is unsatisfied, the spec accrues *eligible* time,
and if it stays unsatisfied for longer than ``within`` the checker raises
:class:`~repro.live.report.LivenessViolation`.

The twist that makes the specs usable under fault injection is
*disruption-relative* time: with ``relax_under_disruption`` (the
default), eligible time only accrues while the system is undisrupted --
no partitions, no failed links, no down nodes, no disk faults, the
default link model in force.  A nemesis can then run arbitrary havoc
without tripping the spec, but once the schedule heals, the system owes
progress within the window.  Set ``relax_under_disruption=False`` for a
strict spec that charges the window regardless -- that is how a test
asserts a *permanent* majority partition produces a violation whose
:class:`~repro.live.report.StallReport` names the cut.

Nothing in a spec mutates the system or draws randomness: an armed
checker observes the identical trajectory an unarmed run takes.
"""

from __future__ import annotations

from typing import List, Optional


class LivenessSpec:
    """Base class: window accounting over a boolean progress predicate.

    Subclasses implement :meth:`satisfied` (and optionally override
    :meth:`describe` / :meth:`unsatisfied_reason`).  ``bind`` is called
    once when the spec is armed against a runtime.
    """

    name = "liveness"

    def __init__(self, within: float, relax_under_disruption: bool = True):
        if within <= 0:
            raise ValueError(f"within must be positive, got {within}")
        self.within = within
        self.relax_under_disruption = relax_under_disruption
        self.runtime = None
        self._eligible = 0.0

    def bind(self, runtime) -> None:
        self.runtime = runtime

    def reset(self) -> None:
        self._eligible = 0.0

    def satisfied(self) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        relax = "relaxed" if self.relax_under_disruption else "strict"
        return f"{self.name}(within={self.within:g}, {relax})"

    def unsatisfied_reason(self) -> str:
        return "progress predicate unsatisfied"

    def step(self, dt: float, disrupted: bool) -> Optional[str]:
        """Advance the window by *dt*; a string means the window expired."""
        if self.satisfied():
            self._eligible = 0.0
            return None
        if disrupted and self.relax_under_disruption:
            return None  # the clock is paused while faults are active
        self._eligible += dt
        if self._eligible <= self.within:
            return None
        return (
            f"{self.unsatisfied_reason()} for {self._eligible:g} "
            f"undisrupted time units (window {self.within:g})"
        )


class EventuallySinglePrimary(LivenessSpec):
    """Exactly one up, ACTIVE cohort of *groupid* claims the primaryship."""

    name = "eventually_single_primary"

    def __init__(self, groupid: str, within: float, **kwargs):
        super().__init__(within, **kwargs)
        self.groupid = groupid

    def _claimants(self) -> int:
        group = self.runtime.groups[self.groupid]
        return sum(
            1
            for cohort in group.active_cohorts()
            if cohort.is_primary
        )

    def satisfied(self) -> bool:
        return self._claimants() == 1

    def describe(self) -> str:
        return f"{super().describe()} group={self.groupid}"

    def unsatisfied_reason(self) -> str:
        count = self._claimants()
        return (
            f"group {self.groupid!r} has {count} active primaries "
            f"(want exactly 1)"
        )


class EventuallyCommits(LivenessSpec):
    """The system keeps committing: at least *n* new commits per window.

    Unlike the other specs this one measures throughput of the whole
    ledger, so it needs a workload that retries until commit; arm it only
    while such a workload is running.
    """

    name = "eventually_commits"

    def __init__(self, n: int, within: float, **kwargs):
        super().__init__(within, **kwargs)
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self._base = 0

    def bind(self, runtime) -> None:
        super().bind(runtime)
        self._base = len(runtime.ledger.committed)

    def satisfied(self) -> bool:
        count = len(self.runtime.ledger.committed)
        if count - self._base >= self.n:
            self._base = count
            return True
        return False

    def describe(self) -> str:
        return f"{super().describe()} n={self.n}"

    def unsatisfied_reason(self) -> str:
        fresh = len(self.runtime.ledger.committed) - self._base
        return f"only {fresh} of {self.n} expected commits landed"


class ViewChangeConverges(LivenessSpec):
    """Every started view change of *groupid* eventually completes."""

    name = "view_change_converges"

    def __init__(self, groupid: str, within: float, **kwargs):
        super().__init__(within, **kwargs)
        self.groupid = groupid

    def satisfied(self) -> bool:
        ledger = self.runtime.ledger
        starts = [
            at for groupid, at in ledger.view_change_started
            if groupid == self.groupid
        ]
        if not starts:
            return True
        completions = ledger.view_changes_for(self.groupid)
        return bool(completions) and completions[-1].completed_at >= starts[-1]

    def describe(self) -> str:
        return f"{super().describe()} group={self.groupid}"

    def unsatisfied_reason(self) -> str:
        ledger = self.runtime.ledger
        starts = [
            at for groupid, at in ledger.view_change_started
            if groupid == self.groupid
        ]
        completions = ledger.view_changes_for(self.groupid)
        latest_done = completions[-1].completed_at if completions else None
        return (
            f"group {self.groupid!r} view change started at {starts[-1]:g} "
            f"has not completed (latest completion: {latest_done})"
        )


class NoLivelock(LivenessSpec):
    """View formation must not retry unboundedly without completing a view.

    Counts ``view_changes_started`` attempts since the group's last
    *completed* view change; more than *max_retries* of them sustained
    for the window is a livelock (e.g. dueling managers that keep
    preempting each other, or a manager whose ``cur_viewid`` writes keep
    failing).
    """

    name = "no_livelock"

    def __init__(self, groupid: str, max_retries: int, within: float, **kwargs):
        super().__init__(within, **kwargs)
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.groupid = groupid
        self.max_retries = max_retries
        self._starts_at_completion = 0
        self._completions_seen = 0

    def _starts(self) -> int:
        counters = self.runtime.metrics.counters
        return counters.get(f"view_changes_started:{self.groupid}", 0)

    def satisfied(self) -> bool:
        completions = len(self.runtime.ledger.view_changes_for(self.groupid))
        if completions > self._completions_seen:
            # A view formed; everything before it was productive retrying.
            self._completions_seen = completions
            self._starts_at_completion = self._starts()
        return self._starts() - self._starts_at_completion <= self.max_retries

    def describe(self) -> str:
        return (
            f"{super().describe()} group={self.groupid} "
            f"max_retries={self.max_retries}"
        )

    def unsatisfied_reason(self) -> str:
        stuck = self._starts() - self._starts_at_completion
        return (
            f"group {self.groupid!r} started {stuck} view changes since its "
            f"last completed view (bound {self.max_retries})"
        )


def spec_catalog(
    groupid: str,
    config,
    within_scale: float = 1.0,
    commits: Optional[int] = None,
    strict: bool = False,
) -> List[LivenessSpec]:
    """The standard spec set for one group, windows derived from timing.

    The base window is several full view-change budgets (underling
    timeout + invite timeout + retry slack), so a clean network gets a
    tight bound while ``within_scale`` loosens it for schedules that
    keep the system legitimately busy; ``commits`` arms the throughput
    spec on top.  ``strict=True`` charges windows even while faults are
    active (for asserting that unhealable disruption *does* violate).
    """
    window = within_scale * 4.0 * (
        config.underling_timeout
        + config.invite_timeout
        + config.view_retry_delay
    )
    # A client attempt can legitimately sleep through one fully backed-off
    # retry delay (per-attempt timeout x backoff cap x max jitter) before
    # it re-probes a recovered group, so the throughput window must be
    # wider than that or quiet-but-healthy clients trip it.
    commit_window = max(
        window,
        within_scale
        * 2.0
        * (2.0 * config.call_timeout)
        * config.backoff_cap
        * (1.0 + config.backoff_jitter),
    )
    relax = not strict
    specs: List[LivenessSpec] = [
        EventuallySinglePrimary(
            groupid, within=window, relax_under_disruption=relax
        ),
        ViewChangeConverges(
            groupid, within=window, relax_under_disruption=relax
        ),
        NoLivelock(
            groupid,
            max_retries=12,
            within=window,
            relax_under_disruption=relax,
        ),
    ]
    if commits is not None:
        specs.append(
            EventuallyCommits(
                commits, within=commit_window, relax_under_disruption=relax
            )
        )
    return specs
