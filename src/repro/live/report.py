"""Stall diagnosis: what the system looked like when liveness ran out.

A liveness spec that misses its deadline raises :class:`LivenessViolation`
carrying a :class:`StallReport` -- a structured snapshot assembled at the
moment the window expired, designed to answer "why is nothing happening?"
without re-running the simulation:

- per-node protocol state (up, cohort status, viewids, ``up_to_date``),
- pending-timer counts and an in-flight-message estimate,
- every active disruption (partition blocks, failed links -- including
  one-way cuts -- link-model overrides, disk faults),
- when the bound group is partitioned away from a majority, the report
  *names* the blocks so the cause is explicit, and
- a bounded causal slice from :mod:`repro.trace` when a tracer is armed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List


@dataclasses.dataclass
class StallReport:
    """Snapshot of a stalled system at the instant a liveness window expired."""

    at: float
    spec: str
    reason: str
    nodes: List[Dict[str, Any]]
    network: Dict[str, Any]
    disk_faults: Dict[str, List[str]]
    causal_slice: list

    def render(self) -> str:
        lines = [
            f"liveness violation at t={self.at:.3f}: {self.spec}",
            f"  reason: {self.reason}",
            "  nodes:",
        ]
        for node in self.nodes:
            state = "up" if node["up"] else "DOWN"
            lines.append(
                f"    {node['node_id']}: {state}, "
                f"{node['timers_active']} active timers"
            )
            for cohort in node["cohorts"]:
                primary = " primary" if cohort["is_primary"] else ""
                caught_up = "" if cohort["up_to_date"] else " NOT-up-to-date"
                lines.append(
                    f"      {cohort['group']}/{cohort['mid']}: "
                    f"{cohort['status']}{primary} view={cohort['cur_viewid']} "
                    f"max={cohort['max_viewid']}{caught_up}"
                )
        net = self.network
        lines.append(
            f"  network: ~{net['in_flight']} messages in flight, "
            f"{len(net['link_overrides'])} link overrides"
        )
        if net["partition_blocks"] is not None:
            rendered = " | ".join(
                ",".join(block) for block in net["partition_blocks"]
            )
            lines.append(f"    partition: {rendered}")
        for link in net["failed_links"]:
            lines.append(f"    failed link: {link}")
        for node_id, faults in sorted(self.disk_faults.items()):
            lines.append(f"  disk faults on {node_id}: {', '.join(faults)}")
        if self.causal_slice:
            lines.append(f"  causal slice ({len(self.causal_slice)} events):")
            lines.extend(f"    {event.render()}" for event in self.causal_slice)
        return "\n".join(lines)


class LivenessViolation(AssertionError):
    """A liveness spec's eventual-progress window expired without progress.

    Carries the full :class:`StallReport` as ``.report`` and exposes
    ``.causal_slice`` so the soak harness exports it exactly like a
    safety :class:`~repro.trace.monitors.InvariantViolation`.
    """

    def __init__(self, report: StallReport):
        self.report = report
        self.causal_slice = report.causal_slice
        super().__init__(report.render())


def build_stall_report(runtime, spec, reason: str) -> StallReport:
    """Assemble a :class:`StallReport` from one runtime, read-only."""
    nodes = []
    cohorts_by_node: Dict[str, list] = {}
    for group in runtime.groups.values():
        for cohort in group.cohorts.values():
            cohorts_by_node.setdefault(cohort.node.node_id, []).append(cohort)
    for node_id in sorted(runtime.nodes):
        node = runtime.nodes[node_id]
        nodes.append(
            {
                "node_id": node_id,
                "up": node.up,
                "timers_active": sum(
                    1 for timer in node._timers if timer.active
                ),
                "cohorts": [
                    {
                        "group": cohort.mygroupid,
                        "mid": cohort.mymid,
                        "status": cohort.status.name,
                        "cur_viewid": str(cohort.cur_viewid),
                        "max_viewid": str(cohort.max_viewid),
                        "up_to_date": cohort.up_to_date,
                        "is_primary": cohort.node.up and cohort.is_primary,
                    }
                    for cohort in cohorts_by_node.get(node_id, [])
                ],
            }
        )
    network = runtime.network
    net = {
        "in_flight": network.in_flight_estimate(),
        "partition_blocks": network.partition_blocks(),
        "failed_links": network.failed_links(),
        "link_overrides": sorted(network.link_overrides()),
    }
    disk_faults = {}
    for node_id in sorted(runtime.nodes):
        for store in runtime.nodes[node_id].stable_stores:
            active = store.faults_active()
            if active:
                disk_faults.setdefault(node_id, []).extend(active)
    reason = _name_partitioned_quorum(runtime, spec, reason, net)
    causal_slice: list = []
    if runtime.tracer is not None:
        events = runtime.tracer.events()
        if events:
            causal_slice = runtime.tracer.causal_slice(
                events[-1].eid, limit=50
            )
    return StallReport(
        at=runtime.sim.now,
        spec=spec.describe(),
        reason=reason,
        nodes=nodes,
        network=net,
        disk_faults=disk_faults,
        causal_slice=causal_slice,
    )


def _name_partitioned_quorum(runtime, spec, reason: str, net: dict) -> str:
    """When the spec's group cannot assemble a majority in any partition
    block, say so explicitly -- the single most common stall cause."""
    blocks = net["partition_blocks"]
    groupid = getattr(spec, "groupid", None)
    if blocks is None or groupid is None or groupid not in runtime.groups:
        return reason
    group = runtime.groups[groupid]
    member_ids = {node.node_id for node in group.nodes()}
    need = group.majority_size()
    for block in blocks:
        if len(member_ids & set(block)) >= need:
            return reason  # a quorum-capable block exists; not the cause
    rendered = " | ".join(",".join(block) for block in blocks)
    return (
        f"{reason}; no partition block holds a majority of group "
        f"{groupid!r} (need {need} of {sorted(member_ids)}): {rendered}"
    )
