"""The liveness checker: polls armed specs against a running simulation.

Mirrors the :mod:`repro.trace` cost model: a runtime's ``liveness``
attribute is ``None`` by default and nothing anywhere pays for the
feature until :meth:`~repro.runtime.Runtime.arm_liveness` attaches a
checker.  Armed, the checker schedules one recurring simulator callback
that *reads* protocol and ledger state -- it never mutates the system
and never draws randomness, so a run with specs armed follows the exact
same trajectory (same ledger, same replica state, same ``state_digest``)
as one without.

Disruption awareness: every poll first classifies the system as
disrupted (a partition, a failed or overridden or degraded link, a down
node, or an active disk fault) and passes that to each spec, which by
default only charges its window with undisrupted time.  The classifier
uses the fault controller's captured default link, so ``lossy()`` counts
as a disruption while a network that was *built* lossy does not.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.live.report import LivenessViolation, build_stall_report
from repro.live.specs import LivenessSpec


class LivenessChecker:
    """Polls a set of :class:`LivenessSpec` against one runtime."""

    def __init__(
        self,
        runtime,
        specs: Iterable[LivenessSpec],
        poll_interval: Optional[float] = None,
        raise_on_violation: bool = True,
    ):
        self.runtime = runtime
        self.specs: List[LivenessSpec] = list(specs)
        if not self.specs:
            raise ValueError("arm_liveness needs at least one spec")
        for spec in self.specs:
            spec.bind(runtime)
        if poll_interval is None:
            poll_interval = runtime.config.im_alive_interval
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self.poll_interval = poll_interval
        self.raise_on_violation = raise_on_violation
        self.violations: List[LivenessViolation] = []
        self.polls = 0
        self._armed = True
        self._last_poll = runtime.sim.now
        runtime.sim.schedule(self.poll_interval, self._tick)

    # -- lifecycle ----------------------------------------------------------

    def disarm(self) -> None:
        """Stop polling; already-collected violations stay available."""
        self._armed = False

    # -- polling ------------------------------------------------------------

    def disrupted(self) -> bool:
        """Whether any injected disruption is active right now."""
        runtime = self.runtime
        if runtime.network.disrupted(runtime.faults._default_link):
            return True
        for node in runtime.nodes.values():
            if not node.up:
                return True
            for store in node.stable_stores:
                if store.faults_active():
                    return True
        return False

    def _tick(self) -> None:
        if not self._armed:
            return
        self.polls += 1
        now = self.runtime.sim.now
        dt = now - self._last_poll
        self._last_poll = now
        disrupted = self.disrupted()
        for spec in self.specs:
            reason = spec.step(dt, disrupted)
            if reason is not None:
                report = build_stall_report(self.runtime, spec, reason)
                violation = LivenessViolation(report)
                spec.reset()  # one report per expired window, not per poll
                if self.raise_on_violation:
                    self._armed = False
                    raise violation
                self.violations.append(violation)
        self.runtime.sim.schedule(self.poll_interval, self._tick)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LivenessChecker(specs={len(self.specs)}, polls={self.polls}, "
            f"violations={len(self.violations)}, armed={self._armed})"
        )
