"""The nemesis x spec coverage matrix behind ``python -m repro.live``.

Each *schedule* is a named failure regime (crash churn, lossy bursts,
partition-and-heal, asymmetric cuts, disk faults, a slow node) run
against the full spec catalog with a retrying KV workload.  Healable
schedules must finish with **zero** liveness violations: the relaxed
specs pause their windows while faults are active, so every clean
interval -- and the post-``heal_all`` tail -- is held to the progress
deadline.  The one *unhealable* schedule (a permanent three-way
majority-destroying partition) must do the opposite: its strict specs
are required to produce a :class:`~repro.live.report.LivenessViolation`
whose :class:`~repro.live.report.StallReport` names the partitioned
quorum.  A matrix where the unhealable cell stays quiet means the specs
are toothless, so that cell failing-to-fail fails the run.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.faults.nemesis import Nemesis
from repro.harness.common import build_kv_system, kv_jobs
from repro.live.report import StallReport
from repro.live.specs import spec_catalog
from repro.workloads.loadgen import run_retry_loop


@dataclasses.dataclass
class Schedule:
    """One failure regime the matrix runs the spec catalog against."""

    name: str
    install: Callable  # (runtime, node_ids) -> None
    expect_violation: bool = False
    within_scale: float = 1.0
    note: str = ""


@dataclasses.dataclass
class CellResult:
    """Outcome of one schedule x spec-catalog cell."""

    schedule: str
    seed: int
    ok: bool
    detail: str
    polls: int
    violations: int
    committed: int
    faults_injected: int
    report: Optional[StallReport] = None

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"{self.schedule:<20} {status:<5} polls={self.polls:<5} "
            f"violations={self.violations:<3} committed={self.committed:<5} "
            f"faults={self.faults_injected:<4} {self.detail}"
        )


# -- schedule installers ------------------------------------------------------


def _crash_churn(runtime, node_ids) -> None:
    # protect_group keeps a majority of *up-to-date* cohorts: with MINIMAL
    # stable storage, crashing a node while the last victim is still
    # catching up strands the group in a state it can never safely
    # re-form from (a real stall the specs would rightly report).
    runtime.inject(
        Nemesis("crash-churn").crash_churn(
            node_ids, mttf=700.0, mttr=160.0, max_down=1, protect_group="kv"
        )
    )


def _lossy(runtime, node_ids) -> None:
    runtime.inject(
        Nemesis("lossy").lossy_bursts(
            mean_healthy=600.0, mean_lossy=250.0, loss=0.2
        )
    )


def _partition_heal(runtime, node_ids) -> None:
    runtime.inject(
        Nemesis("partition-heal").partition_group(
            "kv", every=700.0, duration=260.0, count=4
        )
    )


def _asymmetric(runtime, node_ids) -> None:
    runtime.inject(
        Nemesis("asymmetric").asymmetric_partition(
            node_ids, mean_healthy=700.0, mean_partitioned=220.0
        )
    )


def _disk_fault(runtime, node_ids) -> None:
    # Disk faults only bite when cur_viewid must move, so pair them with
    # primary crashes that force view changes while a disk is bad.
    runtime.inject(
        Nemesis("disk-fault")
        .disk_faults(node_ids, mean_healthy=600.0, mean_faulty=200.0, mode="fail")
        .crash_primary("kv", every=650.0, count=4, recover_after=180.0)
    )


def _slow_node(runtime, node_ids) -> None:
    runtime.inject(
        Nemesis("slow-node").slow_node(
            node_ids,
            mean_healthy=700.0,
            mean_slow=220.0,
            link_factor=6.0,
            disk_factor=6.0,
        )
    )


def _majority_partition(runtime, node_ids) -> None:
    # Permanent three-singleton split: no block can form a majority, so
    # strict specs MUST violate and the report MUST name the blocks.
    runtime.faults.partition(*[{node_id} for node_id in node_ids])


SCHEDULES: Dict[str, Schedule] = {
    schedule.name: schedule
    for schedule in [
        Schedule("crash_churn", _crash_churn),
        Schedule("lossy", _lossy),
        Schedule("partition_heal", _partition_heal),
        Schedule("asymmetric", _asymmetric),
        Schedule("disk_fault", _disk_fault),
        Schedule("slow_node", _slow_node),
        Schedule(
            "majority_partition",
            _majority_partition,
            expect_violation=True,
            within_scale=0.5,
            note="unhealable; specs are required to fire",
        ),
    ]
}


# -- cell execution -----------------------------------------------------------


def run_cell(
    schedule: Schedule,
    seed: int = 0,
    duration: float = 5_000.0,
    trace=None,
) -> CellResult:
    """Run one schedule against the spec catalog; deterministic per seed."""
    rt, kv, clients, driver, spec = build_kv_system(seed=seed, trace=trace)
    node_ids = [node.node_id for node in kv.nodes()]
    strict = schedule.expect_violation
    specs = spec_catalog(
        "kv",
        rt.config,
        within_scale=schedule.within_scale,
        commits=None if strict else 1,
        strict=strict,
    )
    checker = rt.arm_liveness(specs, raise_on_violation=False)

    rt.run_for(60.0)  # let the bootstrap view settle before injecting
    schedule.install(rt, node_ids)

    stats = None
    if not strict:
        # Distinct-key retry-until-commit writes: enough of them that the
        # closed loop outlasts the cell, so the commits spec stays fed.
        jobs = [
            ("write", ("kv", spec.key(index % spec.n_keys), index))
            for index in range(50_000)
        ]
        stats = run_retry_loop(rt, driver, "clients", jobs, concurrency=4)

    end = rt.sim.now + duration
    while rt.sim.now < end:
        rt.run_for(200.0)

    committed = stats.committed if stats is not None else 0
    faults = len(rt.faults.timeline)
    if strict:
        checker.disarm()
        return _judge_unhealable(schedule, seed, checker, committed, faults)

    # Heal everything and hold the system to the post-disruption deadline:
    # from here the windows charge continuously, and the still-running
    # retry workload must visibly commit again.
    rt.faults.stop()
    rt.faults.heal_all()
    before_tail = stats.committed
    # Long enough that any post-heal stall exhausts the widest window.
    tail = 1.25 * max(armed.within for armed in specs)
    tail_end = rt.sim.now + tail
    while rt.sim.now < tail_end:
        rt.run_for(100.0)
    checker.disarm()
    committed = stats.committed
    # The workload never quiesces (that is the point), so convergence is
    # asserted by the always-on specs; here only serializability.
    rt.check_invariants(require_convergence=False)

    violations = len(checker.violations)
    ok = violations == 0 and committed > before_tail
    if violations:
        detail = checker.violations[0].report.reason
    elif committed <= before_tail:
        detail = "no commits landed after heal_all"
    else:
        detail = "all specs held"
    return CellResult(
        schedule=schedule.name,
        seed=seed,
        ok=ok,
        detail=detail,
        polls=checker.polls,
        violations=violations,
        committed=committed,
        faults_injected=len(rt.faults.timeline),
        report=checker.violations[0].report if violations else None,
    )


def _judge_unhealable(
    schedule: Schedule, seed: int, checker, committed: int, faults: int
) -> CellResult:
    violations = len(checker.violations)
    named = [
        violation
        for violation in checker.violations
        if "no partition block holds a majority" in violation.report.reason
    ]
    ok = violations > 0 and bool(named)
    if not violations:
        detail = "expected a LivenessViolation but none fired"
    elif not named:
        detail = "violations fired but none named the partitioned quorum"
    else:
        detail = named[0].report.reason
    return CellResult(
        schedule=schedule.name,
        seed=seed,
        ok=ok,
        detail=detail,
        polls=checker.polls,
        violations=violations,
        committed=committed,
        faults_injected=faults,
        report=named[0].report if named else None,
    )


def run_matrix(
    seed: int = 0,
    duration: float = 5_000.0,
    schedules: Optional[List[str]] = None,
    trace=None,
) -> List[CellResult]:
    """Run the schedule x spec matrix; each cell gets its own runtime."""
    names = schedules if schedules else list(SCHEDULES)
    unknown = [name for name in names if name not in SCHEDULES]
    if unknown:
        raise KeyError(
            f"unknown schedules {unknown}; known: {sorted(SCHEDULES)}"
        )
    return [
        run_cell(SCHEDULES[name], seed=seed, duration=duration, trace=trace)
        for name in names
    ]
