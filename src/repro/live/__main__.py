"""Entry point: ``python -m repro.live``."""

import sys

from repro.live.cli import main

sys.exit(main())
