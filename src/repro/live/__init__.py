"""Liveness specs, stall diagnosis, and the nemesis coverage matrix.

Safety monitors (:mod:`repro.trace`) catch the protocol doing something
wrong; this package catches it doing *nothing*.  Three pieces:

- :mod:`repro.live.specs` -- composable, window-bounded eventual-progress
  assertions (``eventually_single_primary``, ``eventually_commits``,
  ``view_change_converges``, ``no_livelock``) whose deadlines only charge
  while the system is undisrupted, so a nemesis can rage without false
  alarms but a healed system owes progress;
- :mod:`repro.live.report` -- on a missed deadline,
  :class:`LivenessViolation` carries a :class:`StallReport`: per-node
  protocol state, pending timers, in-flight traffic, active disruptions
  (named partitioned quorums included), and a bounded causal slice;
- :mod:`repro.live.matrix` -- ``python -m repro.live`` crosses the spec
  catalog against nemesis schedules (crash churn, lossy, partition+heal,
  asymmetric cuts, disk faults, a slow node, and one deliberately
  unhealable majority partition that is *required* to violate).

Arm specs with :meth:`repro.Runtime.arm_liveness`; a runtime without
armed specs pays nothing (``runtime.liveness`` stays ``None``, the
pattern the ``liveness_overhead`` perf scenario gates).  See
``docs/LIVENESS.md``.
"""

from repro.live.checker import LivenessChecker
from repro.live.matrix import SCHEDULES, CellResult, Schedule, run_cell, run_matrix
from repro.live.report import LivenessViolation, StallReport, build_stall_report
from repro.live.specs import (
    EventuallyCommits,
    EventuallySinglePrimary,
    LivenessSpec,
    NoLivelock,
    ViewChangeConverges,
    spec_catalog,
)

__all__ = [
    "CellResult",
    "EventuallyCommits",
    "EventuallySinglePrimary",
    "LivenessChecker",
    "LivenessSpec",
    "LivenessViolation",
    "NoLivelock",
    "SCHEDULES",
    "Schedule",
    "StallReport",
    "ViewChangeConverges",
    "build_stall_report",
    "run_cell",
    "run_matrix",
    "spec_catalog",
]
