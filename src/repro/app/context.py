"""CallContext: what a procedure sees while executing at a primary.

Reads and writes acquire strict-2PL locks (waiting when contended, with a
timeout-abort deadlock breaker); nested remote calls run through the shared
remote-call machinery, and their pset pairs flow into this call's pset
(Figure 3: "If it makes any nested calls, process them as described in
Figure 2").  Every touched object is recorded so the completed-call event
record can list "all objects used by the remote call, together with the
type of lock acquired and the tentative version if any".
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from repro.core.events import ObjectEffect
from repro.sim.errors import SimulationError
from repro.sim.future import Future
from repro.txn.ids import Aid, CallId
from repro.txn.objects import READ, WRITE


class TransactionAborted(SimulationError):
    """Raised inside a procedure when its transaction cannot continue."""


class LockTimeout(TransactionAborted):
    """A lock wait exceeded the deadlock-breaking timeout."""


@dataclasses.dataclass
class _Touched:
    kind: str  # READ or WRITE
    read_version: Optional[int] = None
    writes: list = dataclasses.field(default_factory=list)  # values in order


class CallContext:
    """Execution context of one remote call at a server primary."""

    def __init__(self, cohort, aid: Aid, call_id: CallId):
        self._cohort = cohort
        self.aid = aid
        self.call_id = call_id
        self.subaction = call_id.subaction
        self._touched: Dict[str, _Touched] = {}
        self._nested_pset_pairs: list = []
        self._nested_seq = 0

    # -- object access ---------------------------------------------------------

    def read(self, uid: str) -> Future:
        """Acquire a read lock and return the object's value."""
        return self._with_lock(uid, READ, self._do_read)

    def write(self, uid: str, value: Any) -> Future:
        """Acquire a write lock and record a tentative version."""
        return self._with_lock(uid, WRITE, self._do_write, value)

    def read_for_update(self, uid: str) -> Future:
        """Read under a *write* lock.

        Read-modify-write procedures should use this instead of
        ``read``-then-``write``: acquiring the read lock first invites the
        classic 2PL upgrade deadlock when several transactions hit the same
        object concurrently (each holds a shared lock and waits for the
        others to release before upgrading).
        """
        return self._with_lock(uid, WRITE, self._do_read_for_update)

    def update(self, uid: str, fn) -> Future:
        """Read-modify-write convenience: ``write(uid, fn(read(uid)))``."""
        done = Future(label=f"update:{uid}")

        def after_read(read_future: Future) -> None:
            error = read_future.exception()
            if error is not None:
                done.set_exception(error)
                return
            write_future = self.write(uid, fn(read_future.result()))
            write_future.add_done_callback(
                lambda wf: done.set_exception(wf.exception())
                if wf.exception() is not None
                else done.set_result(wf.result())
            )

        self.read(uid).add_done_callback(after_read)
        return done

    def _with_lock(self, uid: str, kind: str, action, *args) -> Future:
        done = Future(label=f"{kind}:{uid}:{self.call_id}")
        lockmgr = self._cohort.lockmgr
        lock_future = lockmgr.acquire(uid, self.aid, kind, subaction=self.subaction)
        if lock_future.done and lock_future.exception() is None:
            done.set_result(action(uid, *args))
            return done
        # Stagger timeouts deterministically per transaction so symmetric
        # deadlocks pick a victim instead of aborting everyone at once.
        stagger = 1.0 + 0.05 * (self.aid.seq % 7)
        timer = self._cohort.set_timer(
            self._cohort.config.lock_timeout * stagger,
            self._lock_timed_out,
            uid,
            lock_future,
        )

        def on_granted(granted: Future) -> None:
            timer.cancel()
            if done.done:
                return
            error = granted.exception()
            if error is not None:
                done.set_exception(LockTimeout(f"lock wait on {uid!r} cancelled"))
                return
            try:
                done.set_result(action(uid, *args))
            except SimulationError as app_error:
                done.set_exception(app_error)

        lock_future.add_done_callback(on_granted)
        return done

    def _lock_timed_out(self, uid: str, lock_future: Future) -> None:
        if not lock_future.done:
            self._cohort.lockmgr.cancel_waits(self.aid)

    def _do_read(self, uid: str) -> Any:
        lockmgr = self._cohort.lockmgr
        value = lockmgr.read_value(uid, self.aid)
        touched = self._touched.get(uid)
        if touched is None:
            obj = self._cohort.store.get(uid)
            self._touched[uid] = _Touched(kind=READ, read_version=obj.version)
        return value

    def _do_read_for_update(self, uid: str) -> Any:
        lockmgr = self._cohort.lockmgr
        value = lockmgr.read_value(uid, self.aid)
        touched = self._touched.get(uid)
        if touched is None:
            obj = self._cohort.store.get(uid)
            touched = _Touched(kind=WRITE, read_version=obj.version)
            self._touched[uid] = touched
        touched.kind = WRITE
        return value

    def _do_write(self, uid: str, value: Any) -> Any:
        lockmgr = self._cohort.lockmgr
        lockmgr.record_write(uid, self.aid, value, subaction=self.subaction)
        touched = self._touched.get(uid)
        if touched is None:
            touched = _Touched(kind=WRITE)
            self._touched[uid] = touched
        touched.kind = WRITE
        touched.writes.append(value)
        return value

    # -- nested remote calls -----------------------------------------------------

    def call(self, groupid: str, proc: str, *args: Any) -> Future:
        """Make a nested remote call on behalf of the same transaction."""
        self._nested_seq += 1
        nested_id = CallId(
            aid=self.aid,
            seq=self.call_id.seq * 1000 + self._nested_seq,
            subaction=self.subaction,
        )
        done = Future(label=f"nested:{nested_id}")
        inner = self._cohort.caller.call(self.aid, groupid, proc, tuple(args), nested_id)

        def on_done(inner_future: Future) -> None:
            error = inner_future.exception()
            if error is not None:
                done.set_exception(error)
                return
            result, pset_pairs, _piggyback = inner_future.result()
            self._nested_pset_pairs.extend(pset_pairs)
            done.set_result(result)

        inner.add_done_callback(on_done)
        return done

    # -- effect extraction ------------------------------------------------------

    def effects(self) -> Tuple[ObjectEffect, ...]:
        """The completed-call record's object list."""
        return tuple(
            ObjectEffect(
                uid=uid,
                kind=touched.kind,
                writes=tuple((self.subaction, value) for value in touched.writes),
                read_version=touched.read_version,
            )
            for uid, touched in sorted(self._touched.items())
        )

    def nested_pset_pairs(self) -> Tuple:
        return tuple(self._nested_pset_pairs)
