"""The module programming model (paper sections 1-2).

"A distributed program consists of modules...  Each module contains within
it both data objects and code that manipulates the objects; modules
communicate by means of remote procedure calls...  Modules are the unit of
replication: ideally, programmers would write programs without concern for
availability...  The language implementation then uses our technique to
replicate individual modules automatically."

The paper's substrate was the Argus language runtime; here a module is a
:class:`ModuleSpec` subclass whose ``@procedure`` generator methods run at
the group's primary, reading and writing atomic objects through a
:class:`CallContext` (which acquires strict-2PL locks and records the
effects that become completed-call event records).
"""

from repro.app.context import CallContext, LockTimeout, TransactionAborted
from repro.app.module import (
    EmptyModule,
    ModuleSpec,
    procedure,
    transaction_program,
)

__all__ = [
    "CallContext",
    "EmptyModule",
    "LockTimeout",
    "ModuleSpec",
    "TransactionAborted",
    "procedure",
    "transaction_program",
]
