"""Module specifications: the user-facing unit of replication."""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict


def procedure(fn: Callable) -> Callable:
    """Mark a ModuleSpec generator method as a remotely callable procedure.

    Procedures are generator functions: they ``yield`` the futures returned
    by :class:`~repro.app.context.CallContext` operations::

        @procedure
        def deposit(self, ctx, amount):
            balance = yield ctx.read("balance")
            yield ctx.write("balance", balance + amount)
            return balance + amount
    """
    fn._vr_procedure = True
    return fn


def transaction_program(fn=None, *, subactions: bool = False):
    """Mark a function as a transaction program runnable at a client group.

    Programs are generator functions receiving a
    :class:`~repro.core.client_role.Transaction` handle::

        @transaction_program
        def transfer(txn, src, dst, amount):
            yield txn.call("bank", "withdraw", src, amount)
            yield txn.call("bank", "deposit", dst, amount)

    ``subactions=True`` opts into section 3.6 semantics: a call that gets
    no reply aborts only its own subaction and is retried, instead of
    aborting the whole transaction.
    """

    def mark(target):
        target._vr_program = True
        target._vr_subactions = subactions
        return target

    if fn is not None:
        return mark(fn)
    return mark


class ModuleSpec:
    """Base class for replicated modules.

    Subclasses override :meth:`initial_objects` to declare the module's
    atomic objects and define ``@procedure`` methods (server side) and/or
    ``@transaction_program`` methods (client side).  One instance of the
    spec is shared by every cohort of the group; it must therefore hold no
    mutable per-replica state -- all state lives in the group's objects.
    """

    def initial_objects(self) -> Dict[str, Any]:
        """uid -> initial base value for every object in the group state."""
        return {}

    # -- procedures (server side) -----------------------------------------

    def procedures(self) -> Dict[str, Callable]:
        """All ``@procedure``-marked methods, by name."""
        procs = {}
        for name, member in inspect.getmembers(self, predicate=callable):
            if getattr(member, "_vr_procedure", False):
                procs[name] = member
        return procs

    def procedure_named(self, name: str) -> Callable:
        member = getattr(self, name, None)
        if member is None or not getattr(member, "_vr_procedure", False):
            raise KeyError(f"{type(self).__name__} has no procedure {name!r}")
        return member

    # -- transaction programs (client side) ----------------------------------

    def register_program(self, name: str, fn: Callable) -> None:
        """Attach a free-standing transaction program under *name*."""
        if not hasattr(self, "_programs"):
            self._programs: Dict[str, Callable] = {}
        self._programs[name] = fn

    def transaction_program(self, name: str) -> Callable:
        programs = getattr(self, "_programs", {})
        if name in programs:
            return programs[name]
        member = getattr(self, name, None)
        if member is not None and getattr(member, "_vr_program", False):
            return member
        raise KeyError(
            f"{type(self).__name__} has no transaction program {name!r}"
        )


class EmptyModule(ModuleSpec):
    """A module with no objects or procedures -- used for pure client
    groups, whose cohorts only originate transactions."""
