"""Unreplicated client agents (paper section 3.5).

"Replicating a client that is not a server, however, may not be
worthwhile."  A :class:`ClientAgent` is a single, crashable process that:

1. registers each transaction with a replicated *coordinator-server* group,
   obtaining an aid whose groupid names that server (so participants know
   whom to query);
2. makes the transaction's remote calls itself, accumulating the pset;
3. hands the pset back to the coordinator-server, which runs two-phase
   commit on its behalf and answers outcome queries;
4. answers the coordinator-server's liveness probes -- if the agent dies
   mid-transaction, the coordinator-server aborts unilaterally once a probe
   goes unanswered.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core import messages as m
from repro.core.cache import ClientCache
from repro.core.calls import CallAborted, RemoteCaller
from repro.detect import AdaptiveTimeouts, RttEstimator
from repro.sim.future import Future
from repro.sim.node import Actor, Node
from repro.txn.ids import Aid, CallId
from repro.txn.pset import PSet


class AgentTransaction:
    """Transaction handle used inside a client agent's program."""

    def __init__(self, agent: "ClientAgent", aid: Aid):
        self._agent = agent
        self.aid = aid
        self.pset = PSet()
        self.aborted_subactions: set[int] = set()
        self._call_seq = 0

    def call(self, groupid: str, proc: str, *args: Any) -> Future:
        self._call_seq += 1
        call_id = CallId(aid=self.aid, seq=self._call_seq, subaction=self._call_seq)
        done = Future(label=f"agentcall:{call_id}")
        attempt = self._agent.caller.call(
            self.aid, groupid, proc, tuple(args), call_id
        )

        def on_done(future: Future) -> None:
            error = future.exception()
            if error is not None:
                done.set_exception(error)
                return
            result, pset_pairs, _piggyback = future.result()
            for pair in pset_pairs:
                self.pset.add(pair.groupid, pair.vs)
            done.set_result(result)

        attempt.add_done_callback(on_done)
        return done

    def abort(self, reason: str = "aborted by program") -> None:
        raise CallAborted(reason)


class ClientAgent(Actor):
    """An unreplicated client running transactions via a coordinator-server."""

    def __init__(self, node: Node, runtime, name: str, coordinator_group: str):
        super().__init__(node, name)
        self.runtime = runtime
        self.config = runtime.config
        self.coordinator_group = coordinator_group
        self.metrics = runtime.metrics
        self.tracer = runtime.tracer
        self.cache = ClientCache()
        self.rtt = RttEstimator()  # fed by RemoteCaller.on_reply
        self.timeouts = AdaptiveTimeouts(self.config, self.rtt)
        self.caller = RemoteCaller(self)
        self._next_request = 0
        self._begin_waiters: Dict[int, Future] = {}
        self._finish_waiters: Dict[Aid, Future] = {}
        self._active_aids: set[Aid] = set()
        runtime.network.register(self)

    # -- host interface for RemoteCaller -----------------------------------

    def send(self, destination: str, message) -> None:
        self.runtime.network.send(self.address, destination, message)

    def locate(self, groupid: str):
        return self.runtime.location.lookup(groupid)

    # -- running programs --------------------------------------------------------

    def run_transaction(self, program, *args: Any) -> Future:
        """Run *program(txn, ...)*; resolves to (outcome, result)."""
        return self.spawn(
            self._run(program, args), name=f"agent-txn@{self.address}"
        )

    def _run(self, program, args: Tuple):
        aid = yield self._begin()
        txn = AgentTransaction(self, aid)
        self._active_aids.add(aid)
        try:
            generated = program(txn, *args)
            if hasattr(generated, "send"):
                result = yield from generated
            else:
                result = generated
        except CallAborted as error:
            self._active_aids.discard(aid)
            outcome = yield self._finish(txn, "abort")
            return ("aborted", None)
        self._active_aids.discard(aid)
        outcome = yield self._finish(txn, "commit")
        return (outcome, result if outcome == "committed" else None)

    # -- begin -----------------------------------------------------------------

    def _begin(self) -> Future:
        self._next_request += 1
        request_id = self._next_request
        future = Future(label=f"begin:{request_id}")
        self._begin_waiters[request_id] = future
        self._send_begin(request_id, retries=6)
        return future

    def _send_begin(self, request_id: int, retries: int) -> None:
        if request_id not in self._begin_waiters:
            return
        target = self._coordinator_primary()
        if target is not None:
            self.send(
                target,
                m.BeginTxnMsg(request_id=request_id, client=self.address),
            )
        if target is None or retries < 6:
            # First attempt went unanswered (or we have no target): the
            # primary may have moved; probe for the current view.
            self._probe_coordinator()
        if retries <= 0:
            future = self._begin_waiters.pop(request_id, None)
            if future is not None and not future.done:
                future.set_exception(CallAborted("coordinator-server unreachable"))
            return
        # Fixed interval on purpose: patience here is retry-count based, and
        # a begin must outlive a full view change at the coordinator group.
        self.set_timer(
            self.config.call_timeout, self._send_begin, request_id, retries - 1
        )

    # -- finish -----------------------------------------------------------------

    def _finish(self, txn: AgentTransaction, decision: str) -> Future:
        future = Future(label=f"finish:{txn.aid}")
        self._finish_waiters[txn.aid] = future
        self._send_finish(txn, decision, retries=8)
        return future

    def _send_finish(self, txn: AgentTransaction, decision: str, retries: int) -> None:
        if txn.aid not in self._finish_waiters:
            return
        target = self._coordinator_primary()
        if target is not None:
            self.send(
                target,
                m.FinishTxnMsg(
                    aid=txn.aid,
                    decision=decision,
                    pset_pairs=tuple(txn.pset.pairs()),
                    aborted_subactions=tuple(sorted(txn.aborted_subactions)),
                    client=self.address,
                ),
            )
        if target is None or retries < 8:
            self._probe_coordinator()
        if retries <= 0:
            future = self._finish_waiters.pop(txn.aid, None)
            if future is not None and not future.done:
                future.set_result("unknown")
            return
        self.set_timer(
            self.config.call_timeout * 2, self._send_finish, txn, decision, retries - 1
        )

    def _coordinator_primary(self) -> Optional[str]:
        entry = self.cache.get(self.coordinator_group)
        return entry.primary_address if entry is not None else None

    def _probe_coordinator(self) -> None:
        for _mid, address in self.locate(self.coordinator_group):
            self.send(address, m.ViewProbeMsg(reply_to=self.address))

    # -- message handling -----------------------------------------------------------

    def handle_message(self, message, source: str) -> None:
        if isinstance(message, m.ReplyMsg):
            self.caller.on_reply(message)
        elif isinstance(message, m.CallFailedMsg):
            self.caller.on_call_failed(message)
        elif isinstance(message, m.ViewChangedMsg):
            self.caller.on_view_changed(message)
            if message.groupid == self.coordinator_group:
                self.cache.invalidate(self.coordinator_group)
                self._probe_coordinator()
        elif isinstance(message, m.ViewProbeReplyMsg):
            self.caller.on_probe_reply(message)
            if message.groupid and message.active and message.view is not None:
                primary_address = self.runtime.location.primary_address(
                    message.groupid, message.view
                )
                self.cache.update(
                    message.groupid, message.viewid, message.view, primary_address
                )
        elif isinstance(message, m.BeginTxnReplyMsg):
            future = self._begin_waiters.pop(message.request_id, None)
            if future is not None and not future.done:
                future.set_result(message.aid)
        elif isinstance(message, m.FinishTxnReplyMsg):
            future = self._finish_waiters.pop(message.aid, None)
            if future is not None and not future.done:
                future.set_result(message.outcome)
        elif isinstance(message, m.ClientProbeMsg):
            self.send(
                source,
                m.ClientProbeReplyMsg(
                    aid=message.aid, active=message.aid in self._active_aids
                ),
            )

    def on_crash(self) -> None:
        self._begin_waiters.clear()
        self._finish_waiters.clear()
        self._active_aids.clear()
        self.caller.abandon_all("client crashed")
