"""Experiments E5-E9: comparisons against voting, virtual partitions
(abort rule), Isis, and safety under partitions."""

from __future__ import annotations

from repro import EmptyModule, Nemesis, Runtime
from repro.config import ProtocolConfig
from repro.harness.common import (
    CALL_MSGS,
    BUFFER_MSGS,
    ExperimentResult,
    build_kv_system,
    drain,
)
from repro.sim.process import sleep, spawn
from repro.workloads.loadgen import run_closed_loop


# ---------------------------------------------------------------------------
# E5: messages per operation vs voting (section 5)
# ---------------------------------------------------------------------------

_VOTE_MSGS = (
    "VoteReadReq",
    "VoteReadReply",
    "VoteLockReq",
    "VoteLockReply",
    "VoteWriteReq",
    "VoteWriteReply",
    "VoteUnlockReq",
)


def _voting_run(n: int, r: int, w: int, ops: int, read_fraction: float, seed: int):
    from repro.baselines.voting import VotingClient, VotingSystem

    rt = Runtime(seed=seed)
    system = VotingSystem(rt, "vote", n, {f"key{i}": 0 for i in range(16)})
    client = VotingClient(
        rt.create_node("vc-node"), rt, "vc", system, read_quorum=r, write_quorum=w
    )
    rng = rt.sim.rng.fork("ops")
    results = {"done": 0}

    def run_ops():
        for index in range(ops):
            key = f"key{rng.randint(0, 15)}"
            if rng.random() < read_fraction:
                yield client.read(key)
            else:
                yield client.write(key, index)
            results["done"] += 1

    spawn(rt.sim, run_ops(), name="voting-ops")
    deadline = 200_000
    while results["done"] < ops and rt.sim.now < deadline:
        rt.run_for(500)
    messages = sum(rt.metrics.messages_sent.get(t, 0) for t in _VOTE_MSGS)
    return messages / max(results["done"], 1), results["done"]


def e05_vs_voting(ops: int = 80, ops_per_txn: int = 8) -> ExperimentResult:
    from repro.app.module import transaction_program
    from repro.harness.common import TWOPC_MSGS

    @transaction_program
    def mixed_chain(txn, group, items):
        result = None
        for kind, key, value in items:
            if kind == "read":
                result = yield txn.call(group, "get", key)
            else:
                result = yield txn.call(group, "put", key, value)
        return result

    rows = []
    for read_fraction in (0.0, 0.5, 0.9, 1.0):
        # Viewstamped replication: transactions of ops_per_txn calls, as in
        # the paper's computation model; count call traffic plus replication
        # and commit traffic, all amortized per operation.
        rt, _kv, clients, driver, spec = build_kv_system(seed=505, n_cohorts=3)
        clients.register_program("mixed", mixed_chain)
        rng = rt.sim.rng.fork("mix")
        n_txns = max(1, ops // ops_per_txn)
        jobs = []
        for t in range(n_txns):
            items = []
            for i in range(ops_per_txn):
                key = spec.key(rng.randint(0, spec.n_keys - 1))
                if rng.random() < read_fraction:
                    items.append(("read", key, 0))
                else:
                    items.append(("write", key, i))
            jobs.append(("mixed", ("kv", items)))
        stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=1)
        drain(rt, stats, n_txns)
        rt.quiesce()
        calls = rt.metrics.counters.get("calls_completed:kv", 0)
        vr_total = sum(
            rt.metrics.messages_sent.get(t, 0)
            for t in CALL_MSGS + BUFFER_MSGS + TWOPC_MSGS
        )
        vr_sync = sum(rt.metrics.messages_sent.get(t, 0) for t in CALL_MSGS)
        vr_msgs = vr_total / max(calls, 1)

        rawa, done_rawa = _voting_run(
            3, 1, 3, ops, read_fraction, seed=506
        )  # read-one/write-all
        maj, done_maj = _voting_run(3, 2, 2, ops, read_fraction, seed=507)  # majorities
        rows.append(
            (
                f"{int(read_fraction * 100)}%",
                round(vr_sync / max(calls, 1), 2),
                round(vr_msgs, 2),
                round(rawa, 2),
                round(maj, 2),
            )
        )
    return ExperimentResult(
        exp_id="E5",
        title="messages per operation: viewstamped replication vs voting",
        claim=(
            "Our method is faster than voting for write operations since we "
            "require fewer messages.  Our method will also be faster for "
            "read operations if these take place at several cohorts (section 5)"
        ),
        headers=["read mix", "vr sync msgs/op", "vr total msgs/op",
                 "voting RAWA msgs/op", "voting majority msgs/op"],
        rows=rows,
        notes=(
            "VR's synchronous path is 2 messages per operation regardless of "
            "mix; replication and commit traffic amortize to a couple more.  "
            "Voting writes cost two rounds at the write quorum; voting "
            "read-one beats VR's total only in the pure-read column, and "
            "reads at several cohorts (majority voting) always cost more -- "
            "exactly the paper's trade-off."
        ),
    )


# ---------------------------------------------------------------------------
# E6: availability under crash/recover churn (section 5)
# ---------------------------------------------------------------------------


def _vr_availability(n: int, mttf: float, mttr: float, duration: float, seed: int,
                     config: ProtocolConfig | None = None):
    if config is None:
        config = ProtocolConfig()
    rt, kv, _clients, driver, spec = build_kv_system(seed=seed, n_cohorts=n, config=config)
    rt.inject(
        Nemesis().crash_churn(
            [node.node_id for node in kv.nodes()], mttf=mttf, mttr=mttr
        )
    )
    outcomes = {"ok": 0, "total": 0}

    def prober():
        index = 0
        while rt.sim.now < duration:
            index += 1
            future = driver.call("clients", "write", "kv", spec.key(index), index,
                                 retries=2)
            outcome, _ = yield future
            outcomes["total"] += 1
            if outcome == "committed":
                outcomes["ok"] += 1
            yield sleep(40.0)

    spawn(rt.sim, prober(), name="prober")
    rt.run(until=duration + 500)
    rt.faults.stop()
    return outcomes["ok"] / max(outcomes["total"], 1)


def _voting_availability(n: int, r: int, w: int, mttf: float, mttr: float,
                         duration: float, seed: int):
    from repro.baselines.voting import VotingClient, VotingSystem

    rt = Runtime(seed=seed)
    system = VotingSystem(rt, "vote", n, {"probe": 0})
    client = VotingClient(
        rt.create_node("vc-node"), rt, "vc", system, read_quorum=r, write_quorum=w,
        op_timeout=20.0,
    )
    rt.inject(
        Nemesis().crash_churn(
            [replica.node.node_id for replica in system.replicas],
            mttf=mttf,
            mttr=mttr,
        )
    )
    outcomes = {"ok": 0, "total": 0}

    def prober():
        index = 0
        while rt.sim.now < duration:
            index += 1
            outcomes["total"] += 1
            try:
                yield client.write("probe", index)
                outcomes["ok"] += 1
            except RuntimeError:
                pass
            yield sleep(40.0)

    spawn(rt.sim, prober(), name="prober")
    rt.run(until=duration + 500)
    rt.faults.stop()
    return outcomes["ok"] / max(outcomes["total"], 1)


def e06_availability(duration: float = 20_000.0) -> ExperimentResult:
    from repro.storage.stable import StableStoragePolicy

    ups = ProtocolConfig(storage_policy=StableStoragePolicy.ALL)
    rows = []
    for mttf, mttr in ((2000.0, 400.0), (1000.0, 400.0), (500.0, 300.0)):
        vr3_volatile = _vr_availability(3, mttf, mttr, duration, seed=606)
        vr3_ups = _vr_availability(3, mttf, mttr, duration, seed=606, config=ups)
        vr5_ups = _vr_availability(5, mttf, mttr, duration, seed=606, config=ups)
        rawa = _voting_availability(3, 1, 3, mttf, mttr, duration, seed=607)
        maj = _voting_availability(3, 2, 2, mttf, mttr, duration, seed=607)
        rows.append(
            (
                f"{int(mttf)}/{int(mttr)}",
                round(vr3_volatile, 3),
                round(vr3_ups, 3),
                round(vr5_ups, 3),
                round(maj, 3),
                round(rawa, 3),
            )
        )
    return ExperimentResult(
        exp_id="E6",
        title="write availability under crash/recover churn",
        claim=(
            "When writes must happen at all cohorts, the loss of a single "
            "cohort can cause writes to become unavailable (section 5); a "
            "view containing a majority suffices for viewstamped replication "
            "(section 4).  Whether it is worthwhile to worry about "
            "catastrophes depends on the likelihood of occurrence "
            "(section 4.2)"
        ),
        headers=["mttf/mttr", "vr n=3 volatile", "vr n=3 UPS", "vr n=5 UPS",
                 "voting majority", "voting write-all"],
        rows=rows,
        notes=(
            "Write-all voting loses availability with any single crash; "
            "majority schemes only lose writes when half the group is down "
            "at once.  The volatile-state VR column shows the section-4.2 "
            "catastrophe exposure at these (aggressive) crash rates: one "
            "overlapping double-crash permanently stalls the group, which "
            "the UPS/NVRAM hardening eliminates -- voting replicas were "
            "assumed stable all along, so the hardened columns are the "
            "like-for-like comparison."
        ),
    )


# ---------------------------------------------------------------------------
# E7: information loss across view changes (sections 4.1, 6 + section 5 ablation)
# ---------------------------------------------------------------------------


def _viewchange_loss_run(config: ProtocolConfig, label: str, seed: int,
                         txns: int = 120, kills: int = 8):
    from repro.app.module import transaction_program
    from repro.sim.process import sleep as _sleep

    @transaction_program
    def slow_chain(txn, group, keys, pause):
        # Several calls with think time: these transactions routinely
        # straddle a view change, which is the case under test.
        for key in keys:
            yield txn.call(group, "incr", key, 1)
            yield _sleep(pause)
        return len(keys)

    rt, kv, clients, driver, spec = build_kv_system(seed=seed, n_cohorts=3,
                                                    n_keys=48, config=config)
    clients.register_program("slow_chain", slow_chain)
    # Disjoint key triples so concurrent transactions never contend on
    # locks: the only aborts left are view-change-induced, which is the
    # quantity under test.
    jobs = [
        (
            "slow_chain",
            ("kv", [spec.key(3 * j), spec.key(3 * j + 1), spec.key(3 * j + 2)], 25.0),
        )
        for j in range(txns)
    ]
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=4)
    rt.inject(
        Nemesis().crash_primary("kv", every=450.0, count=kills, recover_after=220.0)
    )
    drain(rt, stats, txns)
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
    calls = rt.metrics.latencies["call_latency:kv"]
    reasons = rt.ledger.abort_reasons()
    refused = sum(n for reason, n in reasons.items() if "refused" in reason)
    no_reply = sum(n for reason, n in reasons.items() if "no reply" in reason)
    return (
        label,
        stats.committed,
        round(stats.abort_rate, 3),
        refused,
        no_reply,
        round(calls.mean, 2),
        len(rt.ledger.view_changes_for("kv")),
    )


def e07_viewchange_loss() -> ExperimentResult:
    rows = [
        _viewchange_loss_run(ProtocolConfig(), "vr (viewstamps)", seed=707),
        _viewchange_loss_run(
            ProtocolConfig(viewstamp_checks=False),
            "abort-all (virtual partitions rule)",
            seed=707,
        ),
        _viewchange_loss_run(
            ProtocolConfig(force_on_call=True), "force-on-call ablation", seed=707
        ),
    ]
    return ExperimentResult(
        exp_id="E7",
        title="transaction loss across view changes",
        claim=(
            "Little information is lost in a reorganization; we use "
            "viewstamps to avoid the abort (sections 1, 5).  If completed-"
            "call records were forced to the backups before the call "
            "returned, there would be no aborts due to view changes, but "
            "calls would be processed more slowly (section 6)"
        ),
        headers=["policy", "committed", "abort rate", "prepare refusals",
                 "no-reply aborts", "call latency", "view changes"],
        rows=rows,
        notes=(
            "Prepare refusals are the view-change information loss the paper "
            "targets: viewstamps keep them near zero (only calls that "
            "genuinely missed the sub-majority), the virtual-partitions rule "
            "refuses every transaction spanning a view change, and forcing "
            "on every call eliminates refusals entirely at ~2x call latency. "
            "No-reply aborts (a dead primary mid-call) are common to all "
            "three policies -- nested transactions remove those (E10)."
        ),
    )


# ---------------------------------------------------------------------------
# E8: safety under partitions (sections 1, 4.1)
# ---------------------------------------------------------------------------


def e08_safety_partitions(seeds=(1, 2, 3, 4, 5)) -> ExperimentResult:
    from repro.workloads.bank import BankAccountsSpec, total_balance, transfer_program

    rows = []
    for seed in seeds:
        rt = Runtime(seed=seed)
        spec = BankAccountsSpec(n_accounts=6, opening_balance=100)
        bank = rt.create_group("bank", spec, n_cohorts=3)
        clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
        clients.register_program("transfer", transfer_program)
        driver = rt.create_driver("driver")
        rng = rt.sim.rng.fork("jobs")
        jobs = [
            (
                "transfer",
                (
                    "bank",
                    spec.account(rng.randint(0, 5)),
                    spec.account(rng.randint(0, 5)),
                    rng.randint(1, 10),
                ),
            )
            for _ in range(80)
        ]
        stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=3)
        node_ids = [node.node_id for node in bank.nodes()]
        rt.inject(
            Nemesis().partition_storm(
                node_ids, mean_healthy=600.0, mean_partitioned=400.0
            )
        )
        drain(rt, stats, 80, max_time=60_000)
        rt.faults.stop()
        rt.faults.heal()
        rt.quiesce(duration=600)
        violations = 0
        try:
            rt.check_invariants(require_convergence=False)
        except AssertionError:
            violations += 1
        total = total_balance(bank, spec)
        conserved = total == 600
        rows.append(
            (
                seed,
                stats.committed,
                stats.aborted,
                rt.faults.count("partition"),
                len(rt.ledger.view_changes_for("bank")),
                "yes" if conserved else "NO",
                violations,
            )
        )
    return ExperimentResult(
        exp_id="E8",
        title="safety under partitions (no split brain, 1SR holds)",
        claim=(
            "The system performs correctly even if there are several active "
            "primaries ... the old primary will not be able to prepare and "
            "commit user transactions, since it cannot force their effects "
            "to the backups (section 4.1); one-copy serializability (section 1)"
        ),
        headers=["seed", "committed", "aborted", "partitions", "view changes",
                 "money conserved", "1SR violations"],
        rows=rows,
        notes=(
            "Across seeded partition storms, every committed history is "
            "one-copy serializable and the bank's total balance is exactly "
            "conserved -- stale primaries are fenced by the force-to-"
            "sub-majority rule."
        ),
    )


# ---------------------------------------------------------------------------
# E9: bytes on the wire vs Isis piggybacking (section 5)
# ---------------------------------------------------------------------------


def e09_vs_isis(txn_counts=(1, 5, 10, 20, 40), ops_per_txn: int = 4) -> ExperimentResult:
    """Per-message bytes over a *sequence* of committed transactions.

    Psets are per-transaction and discarded at commit, so VR's message size
    is flat across the sequence; the Isis client's piggybacked effect set
    only ever grows.
    """
    from repro.app.module import transaction_program
    from repro.baselines.isis_like import IsisClient, IsisSystem

    _VR_TYPES = ("CallMsg", "ReplyMsg", "PrepareMsg", "CommitMsg", "CommitAckMsg",
                 "PrepareOkMsg")
    _ISIS_TYPES = ("IsisCallReq", "IsisCallReply", "IsisWriteLockReq",
                   "IsisWriteLockReply", "IsisBackgroundEffects")

    rows = []
    for n_txns in txn_counts:
        # Viewstamped replication: n_txns transactions of ops_per_txn calls;
        # measure bytes/message in the *last* transaction of the sequence.
        rt, _kv, clients, driver, spec = build_kv_system(seed=909, n_cohorts=3)

        @transaction_program
        def chain_program(txn, group, count, base):
            for index in range(count):
                yield txn.call(group, "incr", spec.key(base + index), 1)
            return count

        clients.register_program("chain", chain_program)
        jobs = [("chain", ("kv", ops_per_txn, t)) for t in range(n_txns)]
        stats = run_closed_loop(rt, driver, "clients", jobs[:-1], concurrency=1)
        drain(rt, stats, n_txns - 1)
        before_bytes = sum(rt.metrics.bytes_sent.get(t, 0) for t in _VR_TYPES)
        before_count = sum(rt.metrics.messages_sent.get(t, 0) for t in _VR_TYPES)
        last = run_closed_loop(rt, driver, "clients", [jobs[-1]], concurrency=1)
        drain(rt, last, 1)
        rt.quiesce()
        vr_bytes = sum(rt.metrics.bytes_sent.get(t, 0) for t in _VR_TYPES) - before_bytes
        vr_count = (
            sum(rt.metrics.messages_sent.get(t, 0) for t in _VR_TYPES) - before_count
        )

        # Isis-like: the same total operation sequence; measure the last
        # ops_per_txn operations' bytes/message and the carried payload.
        rt2 = Runtime(seed=910)
        system = IsisSystem(rt2, "isis", 3, {spec.key(i): 0 for i in range(16)})
        client = IsisClient(rt2.create_node("ic-node"), rt2, "ic", system)
        total_ops = n_txns * ops_per_txn
        done = {"count": 0}
        marks = {}

        def run_ops():
            for index in range(total_ops):
                if index == total_ops - ops_per_txn:
                    marks["bytes"] = sum(
                        rt2.metrics.bytes_sent.get(t, 0) for t in _ISIS_TYPES
                    )
                    marks["count"] = sum(
                        rt2.metrics.messages_sent.get(t, 0) for t in _ISIS_TYPES
                    )
                yield client.add(spec.key(index % 16), 1)
                done["count"] += 1

        spawn(rt2.sim, run_ops(), name="isis-ops")
        while done["count"] < total_ops and rt2.sim.now < 200_000:
            rt2.run_for(200)
        isis_bytes = (
            sum(rt2.metrics.bytes_sent.get(t, 0) for t in _ISIS_TYPES)
            - marks.get("bytes", 0)
        )
        isis_count = (
            sum(rt2.metrics.messages_sent.get(t, 0) for t in _ISIS_TYPES)
            - marks.get("count", 0)
        )
        rows.append(
            (
                n_txns,
                round(vr_bytes / max(vr_count, 1), 1),
                round(isis_bytes / max(isis_count, 1), 1),
                client.carried_bytes,
            )
        )
    return ExperimentResult(
        exp_id="E9",
        title="bytes per message over a transaction sequence: psets vs Isis",
        claim=(
            "A disadvantage of Isis is the large amount of extra information "
            "flowing on every message, and the difficulty in garbage "
            "collecting that information.  Unlike our pset, piggybacked "
            "information in Isis cannot be discarded when transactions "
            "commit (section 5)"
        ),
        headers=["txns so far", "vr bytes/msg (last txn)",
                 "isis bytes/msg (last txn)", "isis carried bytes (never GC'd)"],
        rows=rows,
        notes=(
            "Both columns measure the final transaction of the sequence.  "
            "VR's per-message size is flat: the pset names only the current "
            "transaction's events and is discarded at commit.  The Isis "
            "client's carried payload grows with every operation it has "
            "ever performed and rides on every subsequent message."
        ),
    )
