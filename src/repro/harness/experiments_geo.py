"""Experiment E20: geo-replication -- placement, failover, and region faults.

The paper assumes one flat network; ``repro.geo`` places cohorts across
datacenters with per-pair structural link models and lets sited drivers
route reads to the nearest serving replica (docs/GEO.md).  E20 measures
what geography does to the protocol, in three parts:

- **(a) failover**: crash the kv primary and time the cross-region view
  change under each placement policy.  Reported against the adaptive-
  timeout bound :func:`failover_bound` -- detection plus formation plus
  a WAN allowance -- which every placement must meet.
- **(b) commit latency**: the canonical sharded workload (single-shard
  ``seq_put`` plus cross-shard ``transfer``) under naive ``spread``
  (every quorum crosses the WAN) vs locality-aware ``single_dc``
  sharding (one shard per DC: only cross-shard 2PC pays WAN prices) vs
  everything pinned in one DC.
- **(c) region partition**: a 5-cohort spread group with leases armed;
  the primary's region is cut off.  The majority side keeps committing
  after the view change, while the minority region's leased reads stop
  -- demonstrably *before* the new primary's first commit, which is
  exactly the lease-wait safety argument of docs/READS.md under a
  region-sized failure.

All cells are pure functions of the seed (same-seed replay is gated by
``python -m repro.geo.gate``, which also checks that the *final state*
is placement-independent).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import GeoConfig, ProtocolConfig, ReadConfig
from repro.geo.topology import Topology, symmetric_topology
from repro.harness.common import ExperimentResult, build_kv_system
from repro.sim.process import sleep, spawn
from repro.workloads.loadgen import run_keyed_loop

GEO_SEED = 2020

#: The placement conditions parts (a) and (b) sweep.
E20_PLACEMENTS = ("spread", "single_dc", "primary_affinity:dc-a")


def e20_topology() -> Topology:
    """The standard E20 shape: 3 DCs x 2 zones x 2 slots."""
    return symmetric_topology(n_dcs=3, zones_per_dc=2, slots_per_zone=2)


def geo_protocol_config(
    placement: str,
    reads: bool = False,
    topology: Optional[Topology] = None,
) -> ProtocolConfig:
    kwargs = {}
    if reads:
        kwargs["reads"] = ReadConfig(enabled=True)
    return ProtocolConfig(
        geo=GeoConfig(
            topology=topology if topology is not None else e20_topology(),
            placement=placement,
        ),
        **kwargs,
    )


def failover_bound(config: ProtocolConfig, topology: Topology) -> float:
    """The adaptive-timeout failover bound a placement must meet.

    Detection (suspect timeout) + promotion (underling timeout) + one
    formation round (invite timeout + retry) + a WAN allowance of ten
    cross-DC round trips for the formation traffic itself.
    """
    wan_rtt = 2.0 * (topology.cross_dc.base_delay + topology.cross_dc.jitter)
    return (
        config.suspect_timeout()
        + config.underling_timeout
        + config.invite_timeout
        + 2.0 * config.view_retry_delay
        + 10.0 * wan_rtt
    )


# -- part (a): cross-region primary failover ------------------------------


def _failover_cell(seed: int, placement: str) -> Dict[str, float]:
    """Crash the kv primary; time detection -> new active primary."""
    config = geo_protocol_config(placement)
    topology = config.geo.topology
    rt, kv, clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=5, config=config, driver_site="dc-b/z1"
    )
    rt.run_for(400.0)

    committed_at: List[float] = []

    def prober():
        index = 0
        while True:
            index += 1
            outcome, _ = yield driver.call(
                "clients", "update", "kv", spec.key(index % spec.n_keys),
                retries=8,
            )
            if outcome == "committed":
                committed_at.append(rt.sim.now)
            yield sleep(10.0)

    spawn(rt.sim, prober(), name="e20a-prober")
    rt.run_for(200.0)

    crashed_at = rt.sim.now
    old_primary = kv.active_primary()
    old_site = rt.node_sites[old_primary.node.node_id]
    rt.faults.crash_primary("kv")
    rt.run_for(3000.0)

    completions = [
        event.completed_at
        for event in rt.ledger.view_changes_for("kv")
        if event.completed_at > crashed_at
    ]
    failover = (completions[0] - crashed_at) if completions else float("nan")
    resumed = [at for at in committed_at if at > crashed_at]
    commit_gap = (resumed[0] - crashed_at) if resumed else float("nan")
    new_primary = kv.active_primary()
    new_site = (
        rt.node_sites[new_primary.node.node_id]
        if new_primary is not None
        else "?"
    )
    return {
        "failover": failover,
        "commit_gap": commit_gap,
        "old_region": topology.dc_of(old_site),
        "new_region": topology.dc_of(new_site),
        "bound": failover_bound(rt.config, topology),
    }


# -- part (b): commit latency vs placement (sharded 2PC) ------------------


def _commit_latency_cell(
    seed: int, placement: str, txns: int = 48, concurrency: int = 4
) -> Dict[str, float]:
    """The canonical sharded workload under one placement policy.

    ``single_dc`` (no pin) is the locality-aware condition: the round-
    robin placement puts one shard per DC, so single-shard seq_puts
    commit on a LAN quorum and only cross-shard transfers pay the WAN.
    """
    from repro.shard.workload import make_jobs, saturation_config

    shard_config = saturation_config(n_shards=3, concurrency=concurrency)
    rt = build_geo_runtime(seed, placement)
    sharded = rt.sharded_group(
        "bank", n_shards=3, n_cohorts=3, config=shard_config
    )
    driver = rt.create_driver("driver", site="dc-a/z1")
    rt.run_for(500.0)
    jobs = make_jobs(seed, txns, cross_ratio=0.25)
    stats = run_keyed_loop(rt, driver, sharded, jobs, concurrency=concurrency)
    rt.run_for(30000.0)

    per_program: Dict[str, List[float]] = {"seq_put": [], "transfer": []}
    for latency, (program, _shards, outcome) in zip(
        stats.latencies, stats.results
    ):
        if outcome == "committed":
            per_program[program].append(latency)

    def mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else float("nan")

    return {
        "seq_put": mean(per_program["seq_put"]),
        "transfer": mean(per_program["transfer"]),
        "committed": float(stats.committed),
        "aborted": float(stats.aborted),
    }


def build_geo_runtime(seed: int, placement: str):
    """A bare geo-armed Runtime (no groups yet)."""
    from repro import Runtime

    return Runtime(seed=seed, config=geo_protocol_config(placement))


# -- part (c): region partition, majority commits vs minority leases ------


def _region_partition_cell(
    seed: int, partition_for: float = 800.0
) -> Dict[str, float]:
    """Cut the primary's region off a 5-cohort spread group with leases.

    Two sited drivers probe throughout: one co-located with the primary's
    region (leased reads), one in another region (retried writes).  The
    claim under test: the minority's last lease-served read happens
    strictly before the majority's first post-partition commit.
    """
    config = geo_protocol_config("spread", reads=True)
    topology = config.geo.topology
    rt, kv, clients, driver_a, spec = build_kv_system(
        seed=seed, n_cohorts=5, config=config, driver_site="dc-a/z1"
    )
    # Spread places mid 0 (the initial primary) in dc-a: driver_a is the
    # minority-side reader, driver_b the majority-side writer.
    driver_b = rt.create_driver("driver-b", site="dc-b/z1")
    rt.run_for(400.0)

    primary = kv.active_primary()
    primary_region = topology.dc_of(rt.node_sites[primary.node.node_id])
    assert primary_region == "dc-a", (
        f"expected the initial primary in dc-a, found {primary_region}"
    )

    lease_reads: List[Tuple[float, str]] = []  # (at, mode) of ok reads
    read_failures: List[float] = []
    write_commits: List[float] = []
    stop = {"probing": False}

    def reader():
        index = 0
        while not stop["probing"]:
            index += 1
            result = yield driver_a.read(
                "kv", spec.key(index % spec.n_keys), prefer="primary",
                max_staleness=30.0, retries=4,
            )
            if result.ok:
                lease_reads.append((rt.sim.now, result.mode))
            else:
                read_failures.append(rt.sim.now)
            yield sleep(5.0)

    def writer():
        index = 0
        while not stop["probing"]:
            index += 1
            outcome, _ = yield driver_b.call(
                "clients", "update", "kv", spec.key(index % spec.n_keys),
                retries=10,
            )
            if outcome == "committed":
                write_commits.append(rt.sim.now)
            yield sleep(8.0)

    spawn(rt.sim, reader(), name="e20c-reader")
    spawn(rt.sim, writer(), name="e20c-writer")
    rt.run_for(300.0)

    cut_at = rt.sim.now
    rt.faults.partition_region(primary_region)
    rt.run_for(partition_for)
    rt.faults.heal_all()
    rt.run_for(1200.0)
    stop["probing"] = True
    rt.run_for(300.0)
    rt.quiesce(200.0)
    rt.check_invariants(require_convergence=True)

    healed_at = cut_at + partition_for
    leased_after_cut = [
        at
        for at, mode in lease_reads
        if cut_at < at < healed_at and mode == "lease"
    ]
    majority_commits = [at for at in write_commits if at > cut_at]
    return {
        "cut_at": cut_at,
        "last_minority_lease_read": (
            max(leased_after_cut) if leased_after_cut else cut_at
        ),
        "first_majority_commit": (
            min(majority_commits) if majority_commits else float("nan")
        ),
        "majority_commits_during": float(
            sum(1 for at in majority_commits if at < cut_at + partition_for)
        ),
        "minority_read_failures": float(
            sum(1 for at in read_failures if cut_at < at < cut_at + partition_for)
        ),
        "lease_duration": rt.config.reads.lease_duration,
    }


# -- the determinism-gate cell (python -m repro.geo.gate) -----------------


def _geo_state_run(
    seed: int,
    placement: Optional[str],
    txns: int = 24,
    read_duration: float = 300.0,
    settle: float = 300.0,
):
    """One cross-placement-comparable cell for the E20 determinism gate.

    Retry-until-commit distinct-key writes (fixed values) plus, when geo
    is armed, a concurrent nearest-routed read-only loop: the final
    replicated state is schedule-independent, so every placement -- and
    the flat ``placement=None`` baseline -- must agree byte-for-byte on
    the state digest (geography moves messages, never what the protocol
    computes).  Returns ``(metrics dict, state digest)``.
    """
    from repro.perf.report import state_digest
    from repro.workloads.loadgen import run_open_loop, run_retry_loop

    config = (
        geo_protocol_config(placement, reads=True)
        if placement is not None
        else ProtocolConfig(reads=ReadConfig(enabled=True))
    )
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=5, n_keys=txns, config=config,
        driver_site="dc-b/z1" if placement is not None else None,
    )
    rt.run_for(settle)
    jobs = [("write", ("kv", spec.key(index), index)) for index in range(txns)]
    write_stats = run_retry_loop(rt, driver, "clients", jobs, concurrency=4)
    read_stats = run_open_loop(
        rt, driver,
        key=spec.key, n_keys=txns, duration=read_duration, rate=0.3,
        read_fraction=1.0,
        prefer="nearest" if placement is not None else "primary",
        name="e20-gate",
    )
    deadline = rt.sim.now + 100_000.0
    while (
        write_stats.committed < txns or not read_stats.drained
    ) and rt.sim.now < deadline:
        rt.run_for(200.0)
    rt.quiesce(100.0)
    rt.check_invariants(require_convergence=False)
    metrics = {
        "writes_committed": write_stats.committed,
        "reads_ok": read_stats.reads_ok,
        "read_modes": dict(sorted(read_stats.read_modes.items())),
        "messages": rt.network.messages_sent_total,
    }
    return metrics, state_digest(rt)


# -- the assembled experiment ---------------------------------------------


def e20_geo(seed: int = GEO_SEED) -> ExperimentResult:
    rows = []
    failover_ok = True
    for placement in E20_PLACEMENTS:
        cell = _failover_cell(seed, placement)
        within = cell["failover"] <= cell["bound"]
        failover_ok = failover_ok and within
        rows.append(
            (
                f"(a) failover [{placement}]",
                f"{cell['old_region']}->{cell['new_region']}",
                f"{cell['failover']:.1f}",
                f"{cell['commit_gap']:.1f}",
                f"bound {cell['bound']:.0f} "
                f"{'met' if within else 'MISSED'}",
            )
        )

    commit_cells = {
        placement: _commit_latency_cell(seed, placement)
        for placement in ("spread", "single_dc", "single_dc:dc-a")
    }
    for placement, cell in commit_cells.items():
        rows.append(
            (
                f"(b) 2PC latency [{placement}]",
                f"{cell['committed']:.0f} committed",
                f"{cell['seq_put']:.1f}",
                f"{cell['transfer']:.1f}",
                f"{cell['aborted']:.0f} aborted",
            )
        )

    region = _region_partition_cell(seed)
    lease_stop = region["last_minority_lease_read"]
    first_commit = region["first_majority_commit"]
    rows.append(
        (
            "(c) region partition",
            f"{region['majority_commits_during']:.0f} majority commits",
            f"{lease_stop - region['cut_at']:.1f}",
            f"{first_commit - region['cut_at']:.1f}",
            "leases stopped before new primary committed"
            if lease_stop < first_commit
            else "LEASE OVERLAP",
        )
    )

    locality_wins = (
        commit_cells["single_dc"]["seq_put"] < commit_cells["spread"]["seq_put"]
    )
    notes = (
        "(a) latency columns: view-change completion / first post-crash "
        "commit, both from the crash instant; every placement must meet "
        "the adaptive-timeout bound.  (b) columns: mean committed seq_put "
        "/ transfer latency -- one-shard-per-DC (single_dc) keeps "
        f"single-shard commits on LAN quorums ({'confirmed' if locality_wins else 'NOT confirmed'}: "
        f"{commit_cells['single_dc']['seq_put']:.1f} vs spread's "
        f"{commit_cells['spread']['seq_put']:.1f}).  (c) columns: last "
        "minority lease-served read / first majority commit, offsets from "
        "the cut; the lease bound expires the fenced region's reads "
        "before the new primary can have committed."
    )
    return ExperimentResult(
        exp_id="E20",
        title="Geo-replication: placement, failover, and region faults",
        claim=(
            "Quorum placement dominates commit latency once replicas span "
            "datacenters; view changes still converge within the "
            "adaptive-timeout bound across regions; and a partitioned "
            "region's leased reads expire before the surviving majority's "
            "new primary commits."
        ),
        headers=("condition", "outcome", "t1", "t2", "verdict"),
        rows=rows,
        notes=notes,
    )
