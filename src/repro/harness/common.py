"""Shared plumbing for the experiment harness."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro import EmptyModule, Runtime
from repro.analysis.tables import render_table
from repro.config import ProtocolConfig
from repro.workloads.kv import KVStoreSpec
from repro.workloads.loadgen import ClosedLoopStats, run_closed_loop


@dataclasses.dataclass
class ExperimentResult:
    """One experiment's reproduced table."""

    exp_id: str
    title: str
    claim: str          # the paper sentence(s) being reproduced
    headers: Sequence[str]
    rows: List[Sequence]
    notes: str = ""

    def render(self) -> str:
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            f"claim: {self.claim}",
            "",
            render_table(self.headers, self.rows),
        ]
        if self.notes:
            lines += ["", f"note: {self.notes}"]
        return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    return result.render()


def build_kv_system(
    seed: int = 0,
    n_cohorts: int = 3,
    n_keys: int = 16,
    config: Optional[ProtocolConfig] = None,
    link=None,
    register=("get", "put", "update"),
    trace=None,
    driver_site: Optional[str] = None,
) -> Tuple[Runtime, object, object, object, KVStoreSpec]:
    """Runtime with a KV group, a client group, and a driver.

    With a geo-armed *config*, cohorts are placed by its placement
    policy; *driver_site* additionally homes the driver at a topology
    site so its reads route geographically.
    """
    from repro.workloads.kv import read_program, update_program, write_program

    kwargs = {}
    if config is not None:
        kwargs["config"] = config
    if link is not None:
        kwargs["link"] = link
    if trace is not None:
        kwargs["trace"] = trace
    rt = Runtime(seed=seed, **kwargs)
    spec = KVStoreSpec(n_keys=n_keys)
    kv = rt.create_group("kv", spec, n_cohorts=n_cohorts)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=n_cohorts)
    clients.register_program("read", read_program)
    clients.register_program("write", write_program)
    clients.register_program("update", update_program)
    driver = rt.create_driver("driver", site=driver_site)
    return rt, kv, clients, driver, spec


def kv_jobs(
    rt: Runtime,
    spec: KVStoreSpec,
    count: int,
    read_fraction: float,
    rng_name: str = "jobs",
) -> List[Tuple[str, tuple]]:
    """A randomized read/write job mix against the "kv" group."""
    rng = rt.sim.rng.fork(rng_name)
    jobs = []
    for index in range(count):
        key = spec.key(rng.randint(0, spec.n_keys - 1))
        if rng.random() < read_fraction:
            jobs.append(("read", ("kv", key)))
        else:
            jobs.append(("write", ("kv", key, index)))
    return jobs


def drain(
    rt: Runtime,
    stats: ClosedLoopStats,
    expected: int,
    step: float = 500.0,
    max_time: float = 200_000.0,
) -> None:
    """Run the simulation until the closed loop finishes (or time is up)."""
    deadline = rt.sim.now + max_time
    while stats.submitted < expected and rt.sim.now < deadline:
        rt.run_for(step)


def run_kv_batch(
    rt: Runtime,
    driver,
    spec: KVStoreSpec,
    count: int,
    read_fraction: float,
    concurrency: int = 1,
    think_time: float = 0.0,
) -> ClosedLoopStats:
    jobs = kv_jobs(rt, spec, count, read_fraction)
    stats = run_closed_loop(
        rt, driver, "clients", jobs, concurrency=concurrency, think_time=think_time
    )
    drain(rt, stats, count)
    return stats


def sync_msgs(rt: Runtime, msg_types: Sequence[str]) -> int:
    return sum(rt.metrics.messages_sent.get(t, 0) for t in msg_types)


#: Message types on the synchronous path of one remote call.
CALL_MSGS = ("CallMsg", "ReplyMsg")
#: Background replication traffic.
BUFFER_MSGS = ("BufferMsg", "BufferAckMsg")
#: Two-phase-commit traffic.
TWOPC_MSGS = (
    "PrepareMsg",
    "PrepareOkMsg",
    "PrepareRefusedMsg",
    "CommitMsg",
    "CommitAckMsg",
    "AbortMsg",
)
#: View change traffic (viewstamped replication).
VIEWCHANGE_MSGS = ("InviteMsg", "AcceptMsg", "InitViewMsg")
