"""Experiment E17: scale-out by sharding over many replica groups.

The paper's transaction machinery is already multi-group (section 3.3:
psets name every participant group, prepares validate each group's own
viewstamps, the commit point covers them all), so a partitioned key space
over N replica groups needs no new protocol -- only routing.  This
experiment measures what that buys: committed-calls/s as the shard count
grows 1 -> 8 under a fixed per-shard load, on a clean LAN, on a lossy
network, and through a single-shard view change -- where the paper's
per-participant viewstamp validation should abort *only* the
transactions that touched the crashed shard.
"""

from __future__ import annotations

from repro import LOSSY, Nemesis
from repro.harness.common import ExperimentResult
from repro.shard.workload import run_sharded_workload

SHARD_COUNTS = (1, 2, 4, 8)
CONDITIONS = ("clean", "lossy", "viewchange")


def _sharded_run(
    seed: int,
    n_shards: int,
    condition: str,
    txns_per_shard: int,
    concurrency_per_shard: int,
    duration: float,
):
    """One cell of the scale-out study; returns the metrics dict."""
    link = LOSSY if condition == "lossy" else None
    nemesis = None
    if condition == "viewchange":
        # Crash shard 0's primary shortly after the load starts (the
        # workload settles for 100 time units first); every other shard
        # and the router group keep their views.
        nemesis = Nemesis().crash_shard_primary(
            "kv", 0, every=180.0, count=1, recover_after=400.0
        )
    runtime, sharded, stats = run_sharded_workload(
        seed=seed,
        n_shards=n_shards,
        txns=txns_per_shard * n_shards,
        concurrency=concurrency_per_shard * n_shards,
        link=link,
        nemesis=nemesis,
        duration=duration,
    )
    if nemesis is not None:
        runtime.faults.stop()
    runtime.quiesce(duration=600)
    runtime.check_invariants(require_convergence=False)
    shard0 = sharded.shard_groupid(0)
    return {
        "committed": stats.committed,
        "aborted": stats.aborted,
        "abort_rate": stats.abort_rate if stats.submitted else 0.0,
        "throughput": stats.throughput,
        "aborts_shard0": stats.aborted_touching(shard0),
        "aborts_elsewhere": stats.aborted_elsewhere(shard0),
        "view_changes_shard0": len(runtime.ledger.view_changes_for(shard0)),
    }


def e17_sharding(
    seeds=(1701, 1702),
    txns_per_shard: int = 40,
    concurrency_per_shard: int = 4,
    duration: float = 30_000.0,
) -> ExperimentResult:
    rows = []
    for condition in CONDITIONS:
        base_throughput = None
        for n_shards in SHARD_COUNTS:
            runs = [
                _sharded_run(
                    seed,
                    n_shards,
                    condition,
                    txns_per_shard,
                    concurrency_per_shard,
                    duration,
                )
                for seed in seeds
            ]
            n = len(runs)
            mean = lambda key: sum(run[key] for run in runs) / n  # noqa: E731
            throughput = mean("throughput")
            if base_throughput is None:
                base_throughput = throughput
            rows.append(
                (
                    condition,
                    n_shards,
                    int(mean("committed")),
                    int(mean("aborted")),
                    round(mean("abort_rate"), 3),
                    round(throughput, 4),
                    round(throughput / base_throughput, 2)
                    if base_throughput
                    else float("nan"),
                    int(mean("aborts_shard0")),
                    int(mean("aborts_elsewhere")),
                )
            )
    return ExperimentResult(
        exp_id="E17",
        title="scale-out: a partitioned key space over many replica groups",
        claim=(
            "Section 3.3 makes the transaction machinery multi-group: "
            "every participant group appears in the pset, validates its "
            "own viewstamps at prepare, and is covered by one commit "
            "point.  Sharding a key space over N groups should therefore "
            "scale committed-calls/s with N under per-shard load, and a "
            "view change in one shard should abort only the transactions "
            "whose pset names that shard."
        ),
        headers=[
            "condition",
            "shards",
            "committed",
            "aborted",
            "abort rate",
            "committed/s",
            "speedup",
            "aborts@shard0",
            "aborts elsewhere",
        ],
        rows=rows,
        notes=(
            "Weak scaling: 40 transactions and 4 closed-loop clients per "
            "shard (75% single-key seq_puts serialized per shard by a "
            "sequence lock held across the 2PC, 25% cross-shard "
            "transfers).  'aborts@shard0' counts aborted transactions "
            "whose key set touched shard 0 -- the shard whose primary the "
            "viewchange condition crashes at t=180 -- and 'aborts "
            "elsewhere' those that touched no shard-0 key.  A crashed "
            "shard invalidates only psets naming it, so 'elsewhere' "
            "stays 0 at 2 and 4 shards; the handful at 8 shards are "
            "lock-wait collateral (transactions queued behind a "
            "cross-shard transfer that held its locks while waiting out "
            "the crashed shard), not viewstamp invalidations.  The lossy "
            "condition reruns the same seeds on the LOSSY link model "
            "(retransmissions recover; some cross-shard 2PCs abort)."
        ),
    )
