"""Experiments E17/E18: scale-out by sharding, and batched replication.

The paper's transaction machinery is already multi-group (section 3.3:
psets name every participant group, prepares validate each group's own
viewstamps, the commit point covers them all), so a partitioned key space
over N replica groups needs no new protocol -- only routing.  This
experiment measures what that buys: committed-calls/s as the shard count
grows 1 -> 8 under a fixed per-shard load, on a clean LAN, on a lossy
network, and through a single-shard view change -- where the paper's
per-participant viewstamp validation should abort *only* the
transactions that touched the crashed shard.
"""

from __future__ import annotations

from repro import LOSSY, BatchConfig, Nemesis, ProtocolConfig
from repro.harness.common import ExperimentResult, build_kv_system
from repro.perf.report import state_digest
from repro.shard.workload import run_sharded_workload
from repro.workloads.loadgen import run_retry_loop

SHARD_COUNTS = (1, 2, 4, 8)
CONDITIONS = ("clean", "lossy", "viewchange")


def _sharded_run(
    seed: int,
    n_shards: int,
    condition: str,
    txns_per_shard: int,
    concurrency_per_shard: int,
    duration: float,
):
    """One cell of the scale-out study; returns the metrics dict."""
    link = LOSSY if condition == "lossy" else None
    nemesis = None
    if condition == "viewchange":
        # Crash shard 0's primary shortly after the load starts (the
        # workload settles for 100 time units first); every other shard
        # and the router group keep their views.
        nemesis = Nemesis().crash_shard_primary(
            "kv", 0, every=180.0, count=1, recover_after=400.0
        )
    runtime, sharded, stats = run_sharded_workload(
        seed=seed,
        n_shards=n_shards,
        txns=txns_per_shard * n_shards,
        concurrency=concurrency_per_shard * n_shards,
        link=link,
        nemesis=nemesis,
        duration=duration,
    )
    if nemesis is not None:
        runtime.faults.stop()
    runtime.quiesce(duration=600)
    runtime.check_invariants(require_convergence=False)
    shard0 = sharded.shard_groupid(0)
    return {
        "committed": stats.committed,
        "aborted": stats.aborted,
        "abort_rate": stats.abort_rate if stats.submitted else 0.0,
        "throughput": stats.throughput,
        "aborts_shard0": stats.aborted_touching(shard0),
        "aborts_elsewhere": stats.aborted_elsewhere(shard0),
        "view_changes_shard0": len(runtime.ledger.view_changes_for(shard0)),
    }


def e17_sharding(
    seeds=(1701, 1702),
    txns_per_shard: int = 40,
    concurrency_per_shard: int = 4,
    duration: float = 30_000.0,
) -> ExperimentResult:
    rows = []
    for condition in CONDITIONS:
        base_throughput = None
        for n_shards in SHARD_COUNTS:
            runs = [
                _sharded_run(
                    seed,
                    n_shards,
                    condition,
                    txns_per_shard,
                    concurrency_per_shard,
                    duration,
                )
                for seed in seeds
            ]
            n = len(runs)
            mean = lambda key: sum(run[key] for run in runs) / n  # noqa: E731
            throughput = mean("throughput")
            if base_throughput is None:
                base_throughput = throughput
            rows.append(
                (
                    condition,
                    n_shards,
                    int(mean("committed")),
                    int(mean("aborted")),
                    round(mean("abort_rate"), 3),
                    round(throughput, 4),
                    round(throughput / base_throughput, 2)
                    if base_throughput
                    else float("nan"),
                    int(mean("aborts_shard0")),
                    int(mean("aborts_elsewhere")),
                )
            )
    return ExperimentResult(
        exp_id="E17",
        title="scale-out: a partitioned key space over many replica groups",
        claim=(
            "Section 3.3 makes the transaction machinery multi-group: "
            "every participant group appears in the pset, validates its "
            "own viewstamps at prepare, and is covered by one commit "
            "point.  Sharding a key space over N groups should therefore "
            "scale committed-calls/s with N under per-shard load, and a "
            "view change in one shard should abort only the transactions "
            "whose pset names that shard."
        ),
        headers=[
            "condition",
            "shards",
            "committed",
            "aborted",
            "abort rate",
            "committed/s",
            "speedup",
            "aborts@shard0",
            "aborts elsewhere",
        ],
        rows=rows,
        notes=(
            "Weak scaling: 40 transactions and 4 closed-loop clients per "
            "shard (75% single-key seq_puts serialized per shard by a "
            "sequence lock held across the 2PC, 25% cross-shard "
            "transfers).  'aborts@shard0' counts aborted transactions "
            "whose key set touched shard 0 -- the shard whose primary the "
            "viewchange condition crashes at t=180 -- and 'aborts "
            "elsewhere' those that touched no shard-0 key.  A crashed "
            "shard invalidates only psets naming it, so 'elsewhere' "
            "stays 0 at 2 and 4 shards; the handful at 8 shards are "
            "lock-wait collateral (transactions queued behind a "
            "cross-shard transfer that held its locks while waiting out "
            "the crashed shard), not viewstamp invalidations.  The lossy "
            "condition reruns the same seeds on the LOSSY link model "
            "(retransmissions recover; some cross-shard 2PCs abort)."
        ),
    )


# -- E18: batched & pipelined replication -----------------------------------

#: (label, (max_batch, pipeline_depth)); None = the unbatched baseline.
E18_CONFIGS = (
    ("unbatched", None),
    ("b=8 d=1", (8, 1)),
    ("b=64 d=2", (64, 2)),
    ("b=256 d=4", (256, 4)),
)
E18_CONDITIONS = ("clean", "lossy", "viewchange")


def _batching_run(
    seed: int,
    condition: str,
    batch,
    txns: int,
    concurrency: int,
):
    """One cell of the batching study; returns (metrics dict, state digest)."""
    if batch is None:
        batch_config = BatchConfig(enabled=False)
    else:
        max_batch, pipeline_depth = batch
        batch_config = BatchConfig(
            enabled=True,
            max_batch=max_batch,
            flush_interval=0.5,
            pipeline_depth=pipeline_depth,
        )
    config = ProtocolConfig(batch=batch_config)
    link = LOSSY if condition == "lossy" else None
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=3, n_keys=txns, config=config, link=link
    )
    if condition == "viewchange":
        # Crash the kv primary mid-stream; the retry loop re-submits the
        # writes the view change aborted, so the final state must still be
        # byte-identical across batch configs.
        rt.inject(
            Nemesis().crash_primary("kv", every=150.0, count=1, recover_after=400.0)
        )
    jobs = [("write", ("kv", spec.key(index), index)) for index in range(txns)]
    stats = run_retry_loop(rt, driver, "clients", jobs, concurrency=concurrency)
    deadline = rt.sim.now + 200_000.0
    while stats.committed < txns and rt.sim.now < deadline:
        rt.run_for(200.0)
    if condition == "viewchange":
        rt.faults.stop()
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
    metrics = {
        "committed": stats.committed,
        "retries": stats.aborted + stats.unknown,
        "messages": rt.network.messages_sent_total,
        "view_changes": len(rt.ledger.view_changes_for("kv")),
        "sim_time": rt.sim.now,
    }
    return metrics, state_digest(rt)


def e18_batching(
    seed: int = 1801,
    txns: int = 160,
    concurrency: int = 16,
) -> ExperimentResult:
    rows = []
    for condition in E18_CONDITIONS:
        base_messages = None
        base_digest = None
        for label, batch in E18_CONFIGS:
            metrics, digest = _batching_run(seed, condition, batch, txns, concurrency)
            if batch is None:
                base_messages = metrics["messages"]
                base_digest = digest
            rows.append(
                (
                    condition,
                    label,
                    metrics["committed"],
                    metrics["retries"],
                    metrics["messages"],
                    round(metrics["messages"] / metrics["committed"], 1),
                    round(base_messages / metrics["messages"], 2)
                    if base_messages
                    else float("nan"),
                    metrics["view_changes"],
                    "yes" if digest == base_digest else "NO",
                )
            )
    return ExperimentResult(
        exp_id="E18",
        title="batched & pipelined replication vs the paper's unbatched path",
        claim=(
            "Section 3.7: 'careful engineering is needed here to provide "
            "both speedy delivery and small numbers of messages' -- the "
            "communication buffer may coalesce event records and "
            "acknowledgements without changing what the protocol computes. "
            "Batching (BatchConfig.enabled) must cut messages per committed "
            "call while leaving the final replicated state byte-identical "
            "to the unbatched baseline, on clean, lossy, and mid-stream "
            "view-change schedules alike."
        ),
        headers=[
            "condition",
            "config",
            "committed",
            "retried",
            "messages",
            "msgs/txn",
            "msg reduction",
            "view changes",
            "state == unbatched",
        ],
        rows=rows,
        notes=(
            "One seed, 160 distinct-key writes retried until committed "
            "(idempotent, so the final state is schedule-independent and "
            "comparable across configs by sha256 state digest).  "
            "'b=N d=K' is BatchConfig(max_batch=N, pipeline_depth=K, "
            "flush_interval=0.5); 'msg reduction' is total network "
            "messages relative to the unbatched run of the same "
            "condition.  The viewchange condition crashes the kv primary "
            "at t=150 and recovers it 400 later; retried counts the "
            "extra attempts the crash (or loss) aborted.  On a clean LAN "
            "the win is ack coalescing plus per-tick flush coalescing; "
            "under loss the reduction shrinks and smaller batches fare "
            "slightly better, because go-back-N rewinds re-send at most "
            "one window and a larger max_batch makes that window (and "
            "each redundant resend) bigger."
        ),
    )
