"""Experiment harness: regenerates every claim-table in EXPERIMENTS.md.

Each ``eNN_*`` function runs a self-contained simulation study and returns
an :class:`~repro.harness.common.ExperimentResult` whose rows are what the
corresponding ``benchmarks/bench_eNN_*.py`` target prints.
"""

from repro.harness.common import ExperimentResult, format_result
from repro.harness.experiments_core import (
    e01_call_overhead,
    e02_prepare_wait,
    e03_commit_crossover,
    e04_view_change_cost,
)
from repro.harness.experiments_compare import (
    e05_vs_voting,
    e06_availability,
    e07_viewchange_loss,
    e08_safety_partitions,
    e09_vs_isis,
)
from repro.harness.experiments_extensions import (
    e10_nested,
    e11_catastrophe,
    e12_unilateral,
    e13_end_to_end,
)
from repro.harness.experiments_ablations import e15_ablations
from repro.harness.experiments_robustness import e16_liveness
from repro.harness.experiments_scale import e17_sharding, e18_batching
from repro.harness.experiments_geo import e20_geo
from repro.harness.experiments_reads import e19_reads
from repro.harness.experiments_cohort import e21_cohort_scale

ALL_EXPERIMENTS = {
    "E1": e01_call_overhead,
    "E2": e02_prepare_wait,
    "E3": e03_commit_crossover,
    "E4": e04_view_change_cost,
    "E5": e05_vs_voting,
    "E6": e06_availability,
    "E7": e07_viewchange_loss,
    "E8": e08_safety_partitions,
    "E9": e09_vs_isis,
    "E10": e10_nested,
    "E11": e11_catastrophe,
    "E12": e12_unilateral,
    "E13": e13_end_to_end,
    "E15": e15_ablations,
    "E16": e16_liveness,
    "E17": e17_sharding,
    "E18": e18_batching,
    "E19": e19_reads,
    "E20": e20_geo,
    "E21": e21_cohort_scale,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "format_result",
    "e01_call_overhead",
    "e02_prepare_wait",
    "e03_commit_crossover",
    "e04_view_change_cost",
    "e05_vs_voting",
    "e06_availability",
    "e07_viewchange_loss",
    "e08_safety_partitions",
    "e09_vs_isis",
    "e10_nested",
    "e11_catastrophe",
    "e12_unilateral",
    "e13_end_to_end",
    "e15_ablations",
    "e16_liveness",
    "e17_sharding",
    "e18_batching",
    "e19_reads",
    "e20_geo",
    "e21_cohort_scale",
]
