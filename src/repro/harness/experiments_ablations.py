"""Experiment E15: ablations of the engineering knobs the paper calls out.

Section 4.1 gives two pieces of tuning advice with consequences we can
measure:

- "the algorithm is not tolerant of lost messages and slow responses ...
  a manager should use a fairly long timeout while it waits" -- and
  several simultaneous managers "will slow things down, since there will
  be more message traffic ... we can avoid concurrent managers to some
  extent by [ordering] the cohorts" -- the ``ordered_managers`` knob;
- failure-detection aggressiveness (our ``suspect_multiplier``) trades
  detection latency against spurious view changes under jitter.
"""

from __future__ import annotations


from repro import Nemesis
from repro.config import ProtocolConfig
from repro.harness.common import (
    VIEWCHANGE_MSGS,
    ExperimentResult,
    build_kv_system,
    drain,
    kv_jobs,
)
from repro.net.link import LinkModel
from repro.workloads.loadgen import run_closed_loop


def _ablation_run(config: ProtocolConfig, seed: int, txns: int = 80,
                  kills: int = 4, link: LinkModel | None = None):
    if link is None:
        link = LinkModel(base_delay=1.0, jitter=1.5)  # jittery enough to
        #                                               tempt false suspicion
    rt, kv, clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=5, config=config, link=link
    )
    jobs = kv_jobs(rt, spec, txns, read_fraction=0.3)
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=2,
                            think_time=10.0)
    rt.inject(
        Nemesis().crash_primary("kv", every=500.0, count=kills, recover_after=240.0)
    )
    drain(rt, stats, txns)
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
    vc_msgs = sum(rt.metrics.messages_sent.get(t, 0) for t in VIEWCHANGE_MSGS)
    changes = len(rt.ledger.view_changes_for("kv"))
    started = rt.metrics.counters.get("view_changes_started:kv", 0)
    failed = rt.metrics.counters.get("view_formations_failed:kv", 0)
    return stats, changes, started, failed, vc_msgs


def e15_ablations() -> ExperimentResult:
    rows = []
    # -- ordered vs free-for-all managers --
    for ordered in (True, False):
        config = ProtocolConfig(ordered_managers=ordered)
        stats, changes, started, failed, vc_msgs = _ablation_run(config, seed=1515)
        rows.append(
            (
                f"managers {'ordered' if ordered else 'free-for-all'}",
                stats.committed,
                changes,
                started,
                failed,
                vc_msgs,
            )
        )
    # -- failure-detector aggressiveness --
    for multiplier in (1.5, 3.5, 8.0):
        config = ProtocolConfig(suspect_multiplier=multiplier)
        stats, changes, started, failed, vc_msgs = _ablation_run(config, seed=1516)
        rows.append(
            (
                f"suspect x{multiplier}",
                stats.committed,
                changes,
                started,
                failed,
                vc_msgs,
            )
        )
    return ExperimentResult(
        exp_id="E15",
        title="ablations: manager ordering and failure-detector tuning",
        claim=(
            "Having several managers will slow things down, since there will "
            "be more message traffic ... the cohorts could be ordered, and a "
            "cohort would become a manager only if all higher-priority "
            "cohorts appear to be inaccessible (section 4.1); managers and "
            "underlings should use fairly long timeouts"
        ),
        headers=["variant", "committed", "views formed", "changes started",
                 "formations failed", "view-change msgs"],
        rows=rows,
        notes=(
            "Free-for-all managers start more concurrent rounds and send "
            "more invitation traffic for the same number of useful view "
            "changes.  An over-aggressive failure detector (low suspect "
            "multiplier) triggers spurious view changes under jitter; an "
            "over-conservative one pays in detection latency after a real "
            "crash (fewer transactions complete in the same horizon)."
        ),
    )
