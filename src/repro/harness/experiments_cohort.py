"""E21: cohort scaling -- gossip heartbeats, ack trees, witness replicas.

The paper expects "a small number of cohorts per group, on the order of
three or five"; "Can 100 Machines Agree?" (PAPERS.md) asks what breaks
when that number is 100.  E21 measures, for n in {5, 25, 50, 100} and
for each :class:`repro.config.ScaleConfig` mechanism alone and all-on:

- the primary's message load per heartbeat interval (the O(n) hot spot
  the mechanisms exist to flatten) and the mean per-node load;
- the view-change duration after a primary crash (epidemic liveness
  evidence trades detection latency for load -- the trade must be
  bounded, not runaway);
- simulator throughput (events/s of virtual work, wall-clock measured),
  i.e. whether the harness itself sustains n=100.

The companion determinism cell ``_scale_state_run`` backs
``python -m repro.scale.gate``: scale mechanisms may move messages and
shift schedules, never change what the protocol computes.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro import EmptyModule, Runtime
from repro.config import BatchConfig, ProtocolConfig, ScaleConfig
from repro.harness.common import ExperimentResult
from repro.workloads.kv import KVStoreSpec, read_program, update_program, write_program
from repro.workloads.loadgen import run_retry_loop

SCALE_SEED = 21

#: E21 conditions, in presentation order.
E21_MODES = ("baseline", "gossip", "acktree", "witness", "all")


def mode_scale(mode: str, n: int) -> Optional[ScaleConfig]:
    """The ScaleConfig for one E21 condition at group size *n*.

    Witness counts scale with the group (a third of it) rather than the
    ``n - majority(n)`` maximum: the maximum shrinks every force quorum
    to *all* storage members, which measures fragility, not the
    mechanism.
    """
    if mode == "baseline":
        return None
    witnesses = max(1, n // 3)
    if mode == "gossip":
        return ScaleConfig(gossip=True)
    if mode == "acktree":
        return ScaleConfig(ack_tree=True)
    if mode == "witness":
        return ScaleConfig(witnesses=witnesses)
    if mode == "all":
        return ScaleConfig(gossip=True, ack_tree=True, witnesses=witnesses)
    raise ValueError(f"unknown E21 mode {mode!r}")


def _build_scaled_kv(
    seed: int, n_cohorts: int, scale: Optional[ScaleConfig], n_keys: int,
    batch: Optional[BatchConfig] = None,
):
    """A kv group of *n_cohorts* under *scale*, plus an unscaled 3-cohort
    client group (the helper group is plumbing, not the system under
    measurement, and witness counts are sized for the kv group)."""
    config = ProtocolConfig(scale=scale, batch=batch)
    # n=100 all-to-all heartbeats burn events fast; raise the runaway guard.
    rt = Runtime(seed=seed, config=ProtocolConfig(), max_events=100_000_000)
    spec = KVStoreSpec(n_keys=n_keys)
    kv = rt.create_group("kv", spec, n_cohorts=n_cohorts, config=config)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("read", read_program)
    clients.register_program("write", write_program)
    clients.register_program("update", update_program)
    driver = rt.create_driver("driver")
    return rt, kv, clients, driver, spec


# -- the determinism-gate cell --------------------------------------------


def _scale_state_run(
    seed: int,
    scale: Optional[ScaleConfig],
    txns: int = 32,
    n_cohorts: int = 7,
) -> Tuple[dict, str, str]:
    """One cross-config-comparable cell for the scale determinism gate.

    Retry-until-commit distinct-key writes (fixed values): the final
    replicated state is schedule-independent, so every armed mechanism
    must agree byte-for-byte on the state digest with the ``scale=None``
    baseline.  Returns ``(metrics, ledger_digest, state_digest)`` -- the
    *ledger* digest additionally proves that ``scale=None`` and an
    all-off ScaleConfig replay byte-identical schedules (zero cost when
    disabled), a strictly stronger property the armed conditions are not
    held to.
    """
    from repro.perf.report import ledger_digest, state_digest

    rt, _kv, _clients, driver, spec = _build_scaled_kv(
        seed, n_cohorts, scale, n_keys=txns
    )
    rt.run_for(200.0)
    jobs = [("write", ("kv", spec.key(index), index)) for index in range(txns)]
    stats = run_retry_loop(rt, driver, "clients", jobs, concurrency=4)
    deadline = rt.sim.now + 100_000.0
    while stats.committed < txns and rt.sim.now < deadline:
        rt.run_for(200.0)
    rt.quiesce(100.0)
    rt.check_invariants(require_convergence=False)
    metrics = {
        "writes_committed": stats.committed,
        "messages": rt.network.messages_sent_total,
        "events": rt.sim.events_processed,
    }
    return metrics, ledger_digest(rt), state_digest(rt)


# -- the experiment cells --------------------------------------------------


def _e21_cell(seed: int, n: int, mode: str, txns: int = 24) -> dict:
    """One (group size, mechanism) measurement cell.

    Every cell (baseline included) runs with PR 6 batching enabled: at
    n=100 the unbatched per-force flush re-sends each lagging backup its
    suffix, and with tree-aggregated acks in flight that retransmission
    traffic would swamp the steady-state load the mechanisms target.
    Batching is orthogonal and applied uniformly, so the cross-mode
    comparison stays fair -- and exercises the ack-tree/batching
    composition the mechanisms were designed for.
    """
    scale = mode_scale(mode, n)
    rt, kv, _clients, driver, spec = _build_scaled_kv(
        seed, n, scale, n_keys=txns,
        batch=BatchConfig(enabled=True, max_batch=64, pipeline_depth=4),
    )
    interval = kv.config.im_alive_interval
    rt.run_for(20.0 * interval)  # settle into the initial view

    # Measurement window: fixed virtual duration, identical write count
    # across modes, so per-interval load normalizes fairly.
    rt.network.enable_address_counters()
    t0 = rt.sim.now
    ev0 = rt.sim.events_processed
    wall0 = time.perf_counter()
    jobs = [("write", ("kv", spec.key(index), index)) for index in range(txns)]
    stats = run_retry_loop(rt, driver, "clients", jobs, concurrency=4)
    window_end = t0 + 60.0 * interval
    deadline = rt.sim.now + 100_000.0
    while stats.committed < txns and rt.sim.now < deadline:
        rt.run_for(interval)
    if rt.sim.now < window_end:
        rt.run_for(window_end - rt.sim.now)
    elapsed = rt.sim.now - t0
    wall = time.perf_counter() - wall0
    events = rt.sim.events_processed - ev0
    counters = rt.network.address_counters()
    loads = {}
    for mid, address in kv.configuration:
        loads[mid] = counters["sent"].get(address, 0) + counters[
            "delivered"
        ].get(address, 0)
    primary = kv.active_primary()
    intervals = elapsed / interval
    primary_load = loads[primary.mymid] / intervals
    mean_load = sum(loads.values()) / (len(loads) * intervals)

    # Failover: crash the primary, time until a new view is serving.
    crashed = kv.crash_primary()
    crash_at = rt.sim.now
    failover_deadline = crash_at + 2_000.0 * interval
    while kv.active_primary() is None and rt.sim.now < failover_deadline:
        rt.run_for(interval)
    new_primary = kv.active_primary()
    failover = rt.sim.now - crash_at if new_primary is not None else float("inf")
    kv.recover_cohort(crashed)
    rt.run_for(20.0 * interval)
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
    return {
        "n": n,
        "mode": mode,
        "committed": stats.committed,
        "primary_load": primary_load,
        "mean_load": mean_load,
        "failover": failover,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "formed_view": new_primary is not None,
    }


def e21_cohort_scale(
    seed: int = SCALE_SEED,
    sizes: Tuple[int, ...] = (5, 25, 50, 100),
    txns: int = 24,
) -> ExperimentResult:
    rows = []
    sustained = True
    reductions = {}
    for n in sizes:
        baseline_primary = None
        for mode in E21_MODES:
            cell = _e21_cell(seed, n, mode, txns=txns)
            if mode == "baseline":
                baseline_primary = cell["primary_load"]
            reduction = (
                baseline_primary / cell["primary_load"]
                if baseline_primary and cell["primary_load"]
                else 1.0
            )
            if mode == "all":
                reductions[n] = reduction
            sustained = sustained and cell["formed_view"] and (
                cell["committed"] == txns
            )
            rows.append(
                (
                    n,
                    mode,
                    f"{cell['primary_load']:.1f}",
                    f"{cell['mean_load']:.1f}",
                    f"{reduction:.1f}x",
                    f"{cell['failover']:.0f}",
                    f"{cell['events_per_s'] / 1000.0:.0f}k",
                    cell["committed"],
                )
            )
    largest = max(sizes)
    verdict = (
        "sustained" if sustained else "DEGRADED"
    ) + f"; all-on primary load cut {reductions.get(largest, 1.0):.1f}x at n={largest}"
    return ExperimentResult(
        exp_id="E21",
        title="cohort scaling: gossip heartbeats, ack trees, witness replicas",
        claim=(
            "VR'88 sizes groups at three-to-five cohorts; its all-to-all "
            "heartbeats and primary ack fan-in make the primary an O(n) "
            "hot spot.  Gossip dissemination, sub-quorum ack trees, and "
            "witness replicas (repro.scale) keep n=100 serving, cutting "
            "primary per-interval message load >= 5x all-on, at a bounded "
            "cost in failure-detection (hence view-change) latency."
        ),
        headers=(
            "n",
            "mode",
            "primary msgs/interval",
            "mean msgs/interval",
            "primary cut",
            "failover (t)",
            "events/s",
            "committed",
        ),
        rows=rows,
        notes=(
            f"{verdict}.  Loads count sends+deliveries at each cohort "
            "address over a fixed 60-interval window carrying the same "
            f"{txns}-write load per cell; failover is crash-to-new-active-"
            "primary virtual time (gossip trades detection latency for "
            "load; witnesses shrink replication fan-out but not invites); "
            "events/s is wall-clock simulator throughput, so it varies "
            "run to run."
        ),
    )
