"""Experiments E10-E13: nested transactions, catastrophes, unilateral view
edits, and end-to-end comparison including the Tandem-style pair."""

from __future__ import annotations

from repro import FaultPlan, Nemesis, Runtime
from repro.app.module import transaction_program
from repro.config import ProtocolConfig
from repro.harness.common import (
    ExperimentResult,
    build_kv_system,
    drain,
    kv_jobs,
    run_kv_batch,
)
from repro.sim.process import sleep, spawn
from repro.storage.stable import StableStoragePolicy
from repro.workloads.loadgen import run_closed_loop


# ---------------------------------------------------------------------------
# E10: nested transactions avoid top-level aborts (section 3.6)
# ---------------------------------------------------------------------------


@transaction_program
def _flat_chain(txn, group, keys, pause):
    for key in keys:
        yield txn.call(group, "incr", key, 1)
        yield sleep(pause)
    return len(keys)


@transaction_program(subactions=True)
def _nested_chain(txn, group, keys, pause):
    for key in keys:
        yield txn.call(group, "incr", key, 1)
        yield sleep(pause)
    return len(keys)


def _nested_run(program_name: str, seed: int, txns: int = 80, kills: int = 10):
    rt, kv, clients, driver, spec = build_kv_system(seed=seed, n_cohorts=3, n_keys=64)
    clients.register_program("flat", _flat_chain)
    clients.register_program("nested", _nested_chain)
    # Disjoint key quadruples: no lock contention, so every abort is
    # failure-induced.  Pauses keep transactions in flight across kills.
    jobs = [
        (
            program_name,
            ("kv", [spec.key(4 * j + i) for i in range(4)], 15.0),
        )
        for j in range(txns)
    ]
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=4)
    rt.inject(
        Nemesis().crash_primary("kv", every=300.0, count=kills, recover_after=140.0)
    )
    drain(rt, stats, txns)
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
    retries = rt.metrics.counters.get("subaction_retries:clients", 0)
    return stats, retries, len(rt.ledger.view_changes_for("kv"))


def e10_nested() -> ExperimentResult:
    flat_stats, _flat_retries, flat_changes = _nested_run("flat", seed=1010)
    nested_stats, nested_retries, nested_changes = _nested_run("nested", seed=1010)
    rows = [
        (
            "flat (one-level)",
            flat_stats.committed,
            flat_stats.aborted,
            round(flat_stats.abort_rate, 3),
            0,
            flat_changes,
        ),
        (
            "nested (subactions)",
            nested_stats.committed,
            nested_stats.aborted,
            round(nested_stats.abort_rate, 3),
            nested_retries,
            nested_changes,
        ),
    ]
    return ExperimentResult(
        exp_id="E10",
        title="nested transactions: call retry instead of top-level abort",
        claim=(
            "Nested transactions prevent the abort of the top level "
            "transaction ... we can abort just the subaction, and then do "
            "the call again as a new subaction.  We do extra work only when "
            "the problem arises (section 3.6)"
        ),
        headers=["mode", "committed", "aborted", "abort rate",
                 "subaction retries", "view changes"],
        rows=rows,
        notes=(
            "With subactions, calls that hit a crashed/changed primary are "
            "retried as fresh subactions and the transaction usually "
            "commits; without them every such no-reply aborts the whole "
            "transaction.  Retries only occur when a view actually changed."
        ),
    )


# ---------------------------------------------------------------------------
# E11: catastrophes (section 4.2)
# ---------------------------------------------------------------------------


def _catastrophe_run(policy: StableStoragePolicy, seed: int):
    config = ProtocolConfig(storage_policy=policy)
    rt, kv, clients, driver, spec = build_kv_system(seed=seed, n_cohorts=3,
                                                    config=config)
    stats = run_kv_batch(rt, driver, spec, 20, read_fraction=0.0)
    rt.quiesce()
    committed_before = stats.committed
    value_before = kv.read_object(spec.key(1))
    # Simultaneous crash of a majority (primary + one backup), losing
    # volatile state; both recover shortly after.
    primary = kv.active_primary()
    victims = [kv.cohort(mid) for mid in (primary.mymid, (primary.mymid + 1) % 3)]
    catastrophe = FaultPlan()
    for victim in victims:
        catastrophe.at(0.0).crash(victim.node.node_id)
    for victim in victims:
        catastrophe.at(100.0).recover(victim.node.node_id)
    rt.inject(catastrophe)
    rt.run_for(4100)
    recovered = kv.active_primary() is not None
    violations = 0
    try:
        rt.check_invariants(require_convergence=False)
    except AssertionError:
        violations = 1
    state_intact = None
    if recovered:
        state_intact = kv.read_object(spec.key(1)) == value_before
    return committed_before, recovered, state_intact, violations


def e11_catastrophe() -> ExperimentResult:
    rows = []
    for policy, label in (
        (StableStoragePolicy.MINIMAL, "volatile (paper default)"),
        (StableStoragePolicy.ALL, "UPS/NVRAM gstate (section 4.2 hardening)"),
    ):
        committed, recovered, intact, violations = _catastrophe_run(policy, seed=1111)
        rows.append(
            (
                label,
                committed,
                "recovered" if recovered else "stalled (by design)",
                {None: "-", True: "yes", False: "NO"}[intact],
                violations,
            )
        )
    return ExperimentResult(
        exp_id="E11",
        title="catastrophe: simultaneous crash of a majority",
        claim=(
            "If a majority of cohorts are crashed 'simultaneously', we may "
            "lose information about the module group's state ... a "
            "catastrophe does not cause a group to enter a new view missing "
            "some needed information.  Rather, it causes the algorithm to "
            "never again form a new view (section 4.2)"
        ),
        headers=["storage policy", "committed before", "outcome",
                 "state intact", "safety violations"],
        rows=rows,
        notes=(
            "With volatile state the view formation rule (crashed "
            "acceptances vs normal viewstamps) can never be satisfied, so "
            "the group stalls rather than serving stale state; persisting "
            "gstate to UPS-backed storage (the paper's suggested hardening) "
            "lets the same scenario recover with all committed state intact."
        ),
    )


# ---------------------------------------------------------------------------
# E12: unilateral backup exclusion/addition (section 4.1)
# ---------------------------------------------------------------------------


def _unilateral_run(enabled: bool, seed: int, txns: int = 200):
    from repro.net.link import LinkModel

    config = ProtocolConfig(unilateral_edits=enabled)
    rt, kv, clients, driver, spec = build_kv_system(seed=seed, n_cohorts=3,
                                                    config=config)
    jobs = kv_jobs(rt, spec, txns, read_fraction=0.2)
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=2,
                            think_time=10.0)
    # Repeated asymmetric outages: one backup's uplink goes silent for a
    # stretch (its heartbeats and acks are lost; it still hears the
    # primary, so it never secedes), then heals.  The primary must
    # either edit its view (unilateral) or run a full view change.
    dead_uplink = LinkModel(base_delay=1.0, jitter=0.2, loss_probability=0.9999)
    rt.inject(
        Nemesis().mute_backup_uplinks(
            "kv", every=400.0, duration=120.0, rounds=5, link=dead_uplink
        )
    )
    drain(rt, stats, txns)
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
    return (
        stats,
        len(rt.ledger.view_changes_for("kv")),
        rt.metrics.counters.get("unilateral_view_edits", 0),
    )


def e12_unilateral() -> ExperimentResult:
    off_stats, off_changes, off_edits = _unilateral_run(False, seed=1212)
    on_stats, on_changes, on_edits = _unilateral_run(True, seed=1212)
    rows = [
        (
            "full view changes",
            off_stats.committed,
            off_stats.aborted,
            off_changes,
            off_edits,
            round(off_stats.mean_latency, 1),
        ),
        (
            "unilateral edits",
            on_stats.committed,
            on_stats.aborted,
            on_changes,
            on_edits,
            round(on_stats.mean_latency, 1),
        ),
    ]
    return ExperimentResult(
        exp_id="E12",
        title="unilateral backup exclusion/addition vs full view changes",
        claim=(
            "Not all view changes described above really need to be done ... "
            "the primary can unilaterally exclude the inaccessible backup "
            "from the view.  Similarly, an active primary can unilaterally "
            "add a backup to its view.  View changes are really needed only "
            "when the primary is lost (section 4.1)"
        ),
        headers=["policy", "committed", "aborted", "view changes",
                 "unilateral edits", "txn latency"],
        rows=rows,
        notes=(
            "Backup churn with unilateral edits enabled is absorbed by the "
            "primary editing its view membership (cheap records through the "
            "buffer) instead of running the full invitation protocol."
        ),
    )


# ---------------------------------------------------------------------------
# E13: end-to-end comparison incl. the Tandem-style pair (sections 5, 6)
# ---------------------------------------------------------------------------


def _pair_run(ops: int, seed: int, failures: int):
    from repro.baselines.pair import PairClient, PairSystem

    rt = Runtime(seed=seed)
    system = PairSystem(rt, "pair", {"key": 0})
    client = PairClient(rt.create_node("pc-node"), rt, "pc", system, op_timeout=30.0)
    results = {"ok": 0, "failed": 0}

    def run_ops():
        for index in range(ops):
            try:
                yield client.add("key", 1)
                results["ok"] += 1
            except RuntimeError:
                results["failed"] += 1
            if index == ops // 3 and failures >= 1:
                rt.faults.crash(system.primary.node.node_id)
                yield sleep(60.0)
            if index == (2 * ops) // 3 and failures >= 2:
                rt.faults.crash(system.backup.node.node_id)
                yield sleep(60.0)

    spawn(rt.sim, run_ops(), name="pair-ops")
    rt.run_for(60_000)
    return results["ok"], results["failed"]


def _vr_survival_run(n: int, ops: int, seed: int, failures: int):
    rt, kv, _clients, driver, spec = build_kv_system(seed=seed, n_cohorts=n)
    jobs = kv_jobs(rt, spec, ops, read_fraction=0.0)
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=1,
                            think_time=10.0)
    nemesis = Nemesis()
    if failures >= 1:
        nemesis.crash_primary("kv", every=150.0, count=1)
    if failures >= 2:
        nemesis.crash_primary("kv", every=450.0, count=1)
    if nemesis.rules:
        rt.inject(nemesis)
    drain(rt, stats, ops, max_time=15_000)
    return stats.committed, stats.aborted + stats.unknown


def e13_end_to_end(ops: int = 60) -> ExperimentResult:
    rows = []
    for failures in (0, 1, 2):
        vr3_ok, vr3_fail = _vr_survival_run(3, ops, seed=1313, failures=failures)
        vr5_ok, vr5_fail = _vr_survival_run(5, ops, seed=1313, failures=failures)
        pair_ok, pair_fail = _pair_run(ops, seed=1314, failures=failures)
        rows.append(
            (
                failures,
                f"{vr3_ok}/{ops}",
                f"{vr5_ok}/{ops}",
                f"{pair_ok}/{ops}",
            )
        )
    return ExperimentResult(
        exp_id="E13",
        title="operations completed vs number of failures",
        claim=(
            "Tandem's Nonstop system ... can survive only a single failure. "
            "... Ours is more general (section 5); the method performs well "
            "in the normal case and does view changes efficiently (section 6)"
        ),
        headers=["failures injected", "vr n=3 completed", "vr n=5 completed",
                 "pair completed"],
        rows=rows,
        notes=(
            "A 3-cohort viewstamped group rides out one failure but stalls "
            "at two simultaneous ones (no majority) until recovery; a "
            "5-cohort group rides out two; the pair survives the first "
            "failure and dies at the second."
        ),
    )
