"""Seeded chaos soak: partition storm + lossy bursts, checked for safety.

Runs a KV group under a randomized (but fully seeded, hence replayable)
nemesis combining a partition storm with network-wide lossy bursts while
a prober writes throughout, then heals everything and asserts the two
things that must always hold:

- every committed history is one-copy serializable, and
- the group converges back to a single active primary whose backups
  match it.

Exits non-zero on any violation, so CI can run it as a smoke job::

    PYTHONPATH=src python -m repro.harness.soak --seed 2026 --duration 15000
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import Nemesis
from repro.config import TraceConfig
from repro.harness.common import build_kv_system
from repro.sim.process import sleep, spawn
from repro.trace.export import write_jsonl


def run_soak(seed: int = 2026, duration: float = 15_000.0,
             verbose: bool = True, on_runtime=None, trace=None,
             liveness: bool = False, reads: bool = False,
             geo: bool = False, scale: bool = False) -> dict:
    """One soak run; returns summary stats, raises AssertionError on a
    safety violation, an online invariant violation (``trace`` with
    monitors enabled), a liveness violation (``liveness=True``), or
    failure to re-converge.

    ``on_runtime``, if given, is called with the :class:`~repro.Runtime`
    immediately after construction -- repro.perf uses it to read kernel
    counters off the finished run without changing the return type.
    ``trace`` (a :class:`~repro.config.TraceConfig`) defaults to off so
    perf-gated soak runs keep their exact historical cost; the CLI below
    turns monitors on by default.  ``liveness`` arms the relaxed
    :func:`repro.live.spec_catalog` against the KV group: the nemesis
    pauses the windows, but every clean interval (and the healed tail)
    must make progress or the run fails with a StallReport.  ``reads``
    arms the lease/backup read serving path (``ReadConfig``) and adds a
    read prober alongside the write prober, so the ``stale_lease``
    monitor is exercised under partitions and primary crash churn.
    ``geo`` spreads the group across a 3-datacenter topology with a
    sited driver and swaps the flat partition storm for region-scale
    chaos: random region partitions, WAN degradation episodes, and
    primary crashes.  ``scale`` grows the group to 9 cohorts with every
    ``repro.scale`` mechanism armed (gossip heartbeats, ack trees, and
    two witness replicas), so epidemic liveness, tree-aggregated acks,
    and witness voting are all exercised under the nemesis."""
    geo_cfg = None
    read_cfg = None
    scale_cfg = None
    if scale:
        from repro.config import ScaleConfig

        scale_cfg = ScaleConfig(gossip=True, ack_tree=True, witnesses=2)
    if reads:
        from repro.config import ReadConfig

        read_cfg = ReadConfig(enabled=True)
    if geo:
        from repro.config import GeoConfig
        from repro.geo import symmetric_topology

        geo_cfg = GeoConfig(
            topology=symmetric_topology(n_dcs=3, zones_per_dc=2,
                                        slots_per_zone=2),
            placement="spread",
        )
    config = None
    if read_cfg is not None or geo_cfg is not None or scale_cfg is not None:
        from repro.config import ProtocolConfig

        config = ProtocolConfig(reads=read_cfg, geo=geo_cfg, scale=scale_cfg)
    n_cohorts = 5 if geo else (9 if scale else 3)
    rt, kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=n_cohorts, trace=trace, config=config,
        driver_site="dc-a/z1" if geo else None,
    )
    if on_runtime is not None:
        on_runtime(rt)
    if liveness:
        from repro.live import spec_catalog

        rt.arm_liveness(spec_catalog("kv", rt.config, commits=1))
    node_ids = [node.node_id for node in kv.nodes()]
    nemesis = Nemesis("soak")
    if geo:
        # Region-scale chaos: whole datacenters drop off the WAN and the
        # WAN itself degrades, instead of node-granular partitions.
        nemesis.region_partition(
            region="random", every=2500.0, duration=600.0,
            count=max(1, int(duration // 2500)),
        ).wan_degradation(
            mean_healthy=1500.0, mean_degraded=400.0, factor=3.0, loss=0.05,
        )
    else:
        nemesis.partition_storm(
            node_ids, mean_healthy=700.0, mean_partitioned=300.0
        ).lossy_bursts(
            mean_healthy=500.0, mean_lossy=250.0, loss=0.15, duplicate=0.05
        )
    nemesis.crash_primary("kv", every=1500.0, count=int(duration // 1500),
                          recover_after=400.0)
    rt.inject(nemesis)
    outcomes = {"ok": 0, "total": 0}

    def prober():
        index = 0
        while rt.sim.now < duration:
            index += 1
            future = driver.call(
                "clients", "update", "kv", spec.key(index % spec.n_keys),
                retries=2,
            )
            outcome, _ = yield future
            outcomes["total"] += 1
            if outcome == "committed":
                outcomes["ok"] += 1
            yield sleep(50.0)

    spawn(rt.sim, prober(), name="soak-prober")
    reads_outcomes = {"ok": 0, "total": 0}
    if reads:

        def read_prober():
            index = 0
            while rt.sim.now < duration:
                index += 1
                prefer = "backup" if index % 2 == 0 else "primary"
                future = driver.read(
                    "kv", spec.key(index % spec.n_keys),
                    prefer=prefer, retries=2,
                    fallback=(
                        "clients", "read", ("kv", spec.key(index % spec.n_keys))
                    ),
                )
                result = yield future
                reads_outcomes["total"] += 1
                if result.ok:
                    reads_outcomes["ok"] += 1
                yield sleep(35.0)

        spawn(rt.sim, read_prober(), name="soak-read-prober")
    rt.run(until=duration)
    rt.faults.stop()
    rt.faults.heal()
    rt.faults.restore_links()
    if geo:
        # A WAN-degradation episode interrupted mid-flight leaves its
        # per-pair overrides behind; structural topology links survive.
        rt.faults.restore_wan()
    # Give the healed group time to reorganize and drain buffers, then
    # demand full safety: serializable history AND a converged view.
    limit = rt.sim.now + 6000
    while kv.active_primary() is None and rt.sim.now < limit:
        rt.run_for(200)
    rt.quiesce(duration=1200)
    assert kv.active_primary() is not None, "group never re-formed a view"
    rt.check_invariants(require_convergence=True)

    if rt.tracer is not None:
        rt.tracer.maybe_export()
    stats = {
        "seed": seed,
        "duration": duration,
        "trace_events": (
            rt.tracer.events_emitted if rt.tracer is not None else 0
        ),
        "probes": outcomes["total"],
        "committed": outcomes["ok"],
        "availability": round(outcomes["ok"] / max(outcomes["total"], 1), 3),
        "partitions": rt.faults.count("partition"),
        "lossy_bursts": rt.faults.count("lossy"),
        "crashes": rt.faults.count("crash"),
        "view_changes": len(rt.ledger.view_changes_for("kv")),
        "suspicions": rt.metrics.counters.get("detector_suspicions:kv", 0),
        "invite_retransmits": rt.metrics.counters.get(
            "invite_retransmits:kv", 0
        ),
    }
    if geo:
        stats.update({
            "region_partitions": rt.faults.count("region_partition"),
            "wan_degradations": rt.faults.count("wan_degradation"),
        })
    if scale:
        stats.update({
            "cohorts": n_cohorts,
            "witnesses": len(kv.witness_mids),
            "messages": rt.network.messages_sent_total,
        })
    if reads:
        stats.update({
            "read_probes": reads_outcomes["total"],
            "reads_ok": reads_outcomes["ok"],
            "lease_reads": rt.metrics.counters.get("lease_reads:kv", 0),
            "backup_reads": rt.metrics.counters.get("backup_reads:kv", 0),
            "read_fallbacks": rt.metrics.counters.get(
                "driver_read_fallbacks", 0
            ),
            "lease_waits": rt.metrics.counters.get("lease_waits:kv", 0),
        })
    if verbose:
        for key, value in stats.items():
            print(f"{key}: {value}")
    return stats


def export_failure_artifacts(runtime, failure, artifact_dir: str,
                             seed: int) -> list:
    """Preserve what a CI failure needs to be diagnosed offline: the
    rendered failure, the full trace ring as JSONL, and -- for an
    :class:`InvariantViolation` or a
    :class:`~repro.live.report.LivenessViolation` -- the causal slice
    that explains the offending event.  Returns the paths written."""
    os.makedirs(artifact_dir, exist_ok=True)
    written = []
    report_path = os.path.join(artifact_dir, f"failure-seed{seed}.txt")
    with open(report_path, "w") as fh:
        fh.write(f"{failure}\n")
    written.append(report_path)
    tracer = getattr(runtime, "tracer", None) if runtime is not None else None
    if tracer is not None:
        trace_path = os.path.join(artifact_dir, f"trace-seed{seed}.jsonl")
        tracer.export_jsonl(trace_path)
        written.append(trace_path)
    causal_slice = getattr(failure, "causal_slice", None)
    if causal_slice:
        slice_path = os.path.join(
            artifact_dir, f"causal-slice-seed{seed}.jsonl"
        )
        write_jsonl(failure.causal_slice, slice_path)
        written.append(slice_path)
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--duration", type=float, default=15_000.0)
    parser.add_argument(
        "--monitors", default="all",
        help='comma-separated repro.trace monitor names, "all", or "none" '
             "to disable tracing entirely (default: all)",
    )
    parser.add_argument(
        "--trace-export", default=None, metavar="PATH",
        help="write the trace to PATH (.json = Chrome format, else JSONL)",
    )
    parser.add_argument("--ring-size", type=int, default=65_536)
    parser.add_argument(
        "--liveness", action="store_true",
        help="arm the repro.live spec catalog: the nemesis relaxes the "
             "windows, but clean intervals and the healed tail must make "
             "progress or the soak fails with a StallReport",
    )
    parser.add_argument(
        "--reads", action="store_true",
        help="arm the read serving path (primary leases + stale-bounded "
             "backup reads) and probe it throughout, so the stale_lease "
             "monitor is exercised under the nemesis",
    )
    parser.add_argument(
        "--geo", action="store_true",
        help="spread the group across a 3-datacenter topology (repro.geo) "
             "and swap the flat partition storm for region partitions and "
             "WAN degradation episodes",
    )
    parser.add_argument(
        "--scale", action="store_true",
        help="grow the group to 9 cohorts with every repro.scale "
             "mechanism armed (gossip heartbeats, ack trees, two witness "
             "replicas) so the scaled paths run under the nemesis",
    )
    parser.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="on failure, write the failure report, the full trace JSONL, "
             "and the violation's causal slice here (CI uploads DIR)",
    )
    args = parser.parse_args(argv)
    trace = None
    if args.monitors != "none":
        monitors = (
            "all" if args.monitors == "all"
            else tuple(name for name in args.monitors.split(",") if name)
        )
        trace = TraceConfig(
            monitors=monitors,
            ring_size=args.ring_size,
            export_path=args.trace_export,
        )
    captured = {}
    try:
        run_soak(
            seed=args.seed, duration=args.duration, trace=trace,
            on_runtime=lambda rt: captured.setdefault("rt", rt),
            liveness=args.liveness, reads=args.reads, geo=args.geo,
            scale=args.scale,
        )
    except AssertionError as failure:
        print(f"SOAK FAILED: {failure}", file=sys.stderr)
        if args.artifact_dir:
            for path in export_failure_artifacts(
                captured.get("rt"), failure, args.artifact_dir, args.seed
            ):
                print(f"artifact: {path}", file=sys.stderr)
        return 1
    print("soak passed: serializable history, converged view")
    return 0


if __name__ == "__main__":
    sys.exit(main())
