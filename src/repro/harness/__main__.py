"""Run experiment studies from the command line.

Usage::

    python -m repro.harness            # run every experiment (slow: ~2 min)
    python -m repro.harness E1 E4 E9   # run selected experiments
    python -m repro.harness --list     # list experiments
"""

from __future__ import annotations

import sys
import time

from repro.harness import ALL_EXPERIMENTS, format_result


def main(argv: list[str]) -> int:
    if "--list" in argv:
        for exp_id, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{exp_id:>4}  {fn.__name__}  {doc[0] if doc else ''}")
        return 0
    wanted = [arg.upper() for arg in argv if not arg.startswith("-")]
    if wanted:
        unknown = [exp for exp in wanted if exp not in ALL_EXPERIMENTS]
        if unknown:
            print(f"unknown experiments: {unknown}; try --list", file=sys.stderr)
            return 2
        selection = {exp: ALL_EXPERIMENTS[exp] for exp in wanted}
    else:
        selection = ALL_EXPERIMENTS
    for exp_id, fn in selection.items():
        started = time.time()
        result = fn()
        print(format_result(result))
        print(f"[{exp_id} took {time.time() - started:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
