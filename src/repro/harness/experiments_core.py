"""Experiments E1-E4: normal-case performance and view-change cost."""

from __future__ import annotations


from repro.app.module import transaction_program
from repro.config import ProtocolConfig
from repro.harness.common import (
    BUFFER_MSGS,
    CALL_MSGS,
    VIEWCHANGE_MSGS,
    ExperimentResult,
    build_kv_system,
    drain,
    run_kv_batch,
)
from repro.sim.process import sleep
from repro.workloads.loadgen import run_closed_loop


# ---------------------------------------------------------------------------
# E1: remote calls run entirely at the primary (sections 3.7, 6)
# ---------------------------------------------------------------------------


def e01_call_overhead(txns: int = 80) -> ExperimentResult:
    """Per-call cost vs group size, against the conventional system."""
    rows = []
    variants = [
        ("unreplicated", 1, ProtocolConfig(force_to_stable=True)),
        ("vr n=1", 1, None),
        ("vr n=3", 3, None),
        ("vr n=5", 5, None),
        ("vr n=7", 7, None),
    ]
    for label, n, config in variants:
        rt, _kv, _clients, driver, spec = build_kv_system(
            seed=101, n_cohorts=n, config=config
        )
        stats = run_kv_batch(rt, driver, spec, txns, read_fraction=0.5)
        calls = rt.metrics.counters.get("calls_completed:kv", 0)
        call_msgs = sum(rt.metrics.messages_sent.get(t, 0) for t in CALL_MSGS)
        buffer_msgs = sum(rt.metrics.messages_sent.get(t, 0) for t in BUFFER_MSGS)
        latency = rt.metrics.latencies["call_latency:kv"]
        rows.append(
            (
                label,
                stats.committed,
                round(call_msgs / max(calls, 1), 2),
                round(buffer_msgs / max(calls, 1), 2),
                round(latency.mean, 2),
                round(latency.p99, 2),
            )
        )
    return ExperimentResult(
        exp_id="E1",
        title="remote-call overhead vs group size",
        claim=(
            "Remote calls in our system run only at the primary and need not "
            "involve the backups and therefore their performance is the same "
            "as in a non-replicated system (section 3.7)"
        ),
        headers=["system", "committed", "sync msgs/call", "bg msgs/call",
                 "call latency", "call p99"],
        rows=rows,
        notes=(
            "Synchronous per-call cost (2 messages, one round trip) is flat "
            "across group sizes and equal to the unreplicated system; only "
            "background buffer traffic grows with the number of backups."
        ),
    )


# ---------------------------------------------------------------------------
# E2: prepares usually processed entirely at the primary (section 3.7)
# ---------------------------------------------------------------------------


@transaction_program
def _chain_with_pause(txn, group, keys, pause):
    for key in keys:
        yield txn.call(group, "incr", key, 1)
    if pause > 0:
        yield sleep(pause)
    return len(keys)


def e02_prepare_wait(txns: int = 50) -> ExperimentResult:
    """Fraction of prepares that had to wait for a force, vs flush interval
    and client think time before commit."""
    rows = []
    for flush_interval in (1.0, 5.0, 20.0, 60.0):
        for pause in (0.0, 10.0):
            config = ProtocolConfig(flush_interval=flush_interval)
            rt, _kv, clients, driver, spec = build_kv_system(
                seed=202, n_cohorts=3, config=config
            )
            clients.register_program("chain", _chain_with_pause)
            jobs = [
                ("chain", ("kv", [spec.key(i), spec.key(i + 1)], pause))
                for i in range(txns)
            ]
            stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=1)
            drain(rt, stats, txns)
            prepares = rt.metrics.counters.get("prepares_accepted:kv", 0)
            waits = rt.metrics.counters.get("prepare_force_waits:kv", 0)
            force = rt.metrics.latencies["commit_force_latency"]
            rows.append(
                (
                    flush_interval,
                    pause,
                    prepares,
                    round(waits / max(prepares, 1), 2),
                    round(force.mean, 2),
                    round(stats.mean_latency, 1),
                )
            )
    return ExperimentResult(
        exp_id="E2",
        title="prepare-time force waits vs buffer flush interval",
        claim=(
            "We expect that prepare messages are usually processed entirely "
            "at the primary because the needed completed-call event records "
            "... will already be stored at a sub-majority of cohorts; "
            "otherwise, the primary must wait while the relevant part of the "
            "buffer is forced to the backups (section 3.7)"
        ),
        headers=["flush ival", "think time", "prepares", "frac waited",
                 "commit force lat", "txn latency"],
        rows=rows,
        notes=(
            "Eager flushing or client think time lets records reach a "
            "sub-majority before the prepare arrives, eliminating the wait; "
            "lazy flushing (interval >> round trip) makes every prepare force."
        ),
    )


# ---------------------------------------------------------------------------
# E3: commit force vs stable storage -- the crossover (section 3.7)
# ---------------------------------------------------------------------------


def e03_commit_crossover(txns: int = 60) -> ExperimentResult:
    """Commit latency: forcing to backups vs forcing to stable storage."""
    rows = []
    for stable_latency in (0.5, 1.0, 2.0, 5.0, 10.0, 20.0):
        # Conventional system: every force blocks on a stable write.
        rt_u, _kv, _c, driver_u, spec_u = build_kv_system(
            seed=303,
            n_cohorts=1,
            config=ProtocolConfig(
                force_to_stable=True, stable_write_latency=stable_latency
            ),
        )
        stats_u = run_kv_batch(rt_u, driver_u, spec_u, txns, read_fraction=0.0)
        force_u = rt_u.metrics.latencies["commit_force_latency"].mean

        # Viewstamped replication: forces go to the backups over the network.
        rt_v, _kv2, _c2, driver_v, spec_v = build_kv_system(
            seed=303,
            n_cohorts=3,
            config=ProtocolConfig(stable_write_latency=stable_latency),
        )
        stats_v = run_kv_batch(rt_v, driver_v, spec_v, txns, read_fraction=0.0)
        force_v = rt_v.metrics.latencies["commit_force_latency"].mean

        winner = "vr" if force_v < force_u else "stable"
        rows.append(
            (
                stable_latency,
                round(force_u, 2),
                round(force_v, 2),
                round(stats_u.mean_latency, 1),
                round(stats_v.mean_latency, 1),
                winner,
            )
        )
    return ExperimentResult(
        exp_id="E3",
        title="commit force: replication vs stable storage crossover",
        claim=(
            "For both preparing and committing, our method will be faster "
            "than using non-replicated clients and servers if communication "
            "is faster than writing to stable storage, which is often the "
            "case provided that the number of backups is small (section 3.7)"
        ),
        headers=["stable write lat", "force lat (stable)", "force lat (vr)",
                 "txn lat (stable)", "txn lat (vr)", "faster"],
        rows=rows,
        notes=(
            "Network round trip here is ~2.2 time units; viewstamped "
            "replication wins exactly when the stable write costs more than "
            "that round trip, as the paper predicts."
        ),
    )


# ---------------------------------------------------------------------------
# E4: view change cost (section 4.1) vs virtual partitions (section 5)
# ---------------------------------------------------------------------------


def _vr_view_change_cost(n: int, kill_primary: bool, seed: int):
    """Returns (messages, elapsed) for one forced view change."""
    rt, kv, _clients, driver, spec = build_kv_system(seed=seed, n_cohorts=n)
    stats = run_kv_batch(rt, driver, spec, 10, read_fraction=0.0)
    rt.quiesce()
    before_msgs = sum(rt.metrics.messages_sent.get(t, 0) for t in VIEWCHANGE_MSGS)
    before_buf = sum(rt.metrics.messages_sent.get(t, 0) for t in BUFFER_MSGS)
    before_changes = len(rt.ledger.view_changes_for("kv"))
    victim = kv.active_primary() if kill_primary else kv.cohort(n - 1)
    crashed_at = rt.sim.now
    rt.faults.crash(victim.node.node_id)
    deadline = rt.sim.now + 5000
    while len(rt.ledger.view_changes_for("kv")) == before_changes and rt.sim.now < deadline:
        rt.run_for(50)
    rt.run_for(60)  # let the newview record reach the backups
    after_msgs = sum(rt.metrics.messages_sent.get(t, 0) for t in VIEWCHANGE_MSGS)
    after_buf = sum(rt.metrics.messages_sent.get(t, 0) for t in BUFFER_MSGS)
    events = rt.ledger.view_changes_for("kv")
    assert len(events) > before_changes, "view change did not complete"
    started = [
        at for g, at in rt.ledger.view_change_started if g == "kv" and at >= crashed_at
    ]
    elapsed = events[-1].completed_at - min(started)
    # Buffer traffic during a view change is dominated by the newview
    # record distribution; report protocol messages plus that state push.
    return (after_msgs - before_msgs) + (after_buf - before_buf), elapsed


def e04_view_change_cost() -> ExperimentResult:
    from repro import Runtime
    from repro.baselines.virtual_partitions import VirtualPartitionsGroup

    rows = []
    for n in (3, 5, 7):
        msgs_backup, time_backup = _vr_view_change_cost(n, kill_primary=False, seed=404)
        msgs_primary, time_primary = _vr_view_change_cost(n, kill_primary=True, seed=404)

        rt = Runtime(seed=405)
        vp = VirtualPartitionsGroup(rt, "vp", n)
        before = vp.message_count()
        future = vp.trigger_view_change()
        rt.run_for(1000)
        vp_time = future.result()
        vp_msgs = vp.message_count() - before

        rows.append(
            (
                n,
                msgs_backup,
                round(time_backup, 1),
                msgs_primary,
                round(time_primary, 1),
                vp_msgs,
                round(vp_time, 1),
            )
        )
    return ExperimentResult(
        exp_id="E4",
        title="view change cost: viewstamped vs virtual partitions",
        claim=(
            "One round of messages is all that is needed when the manager is "
            "also the primary in the last active view; otherwise, one round "
            "plus one message is needed (section 4.1).  The virtual "
            "partitions protocol requires three phases ... We avoid extra "
            "work by using viewstamps in phase 1 (section 5)"
        ),
        headers=["n", "vr msgs (backup died)", "vr time", "vr msgs (primary died)",
                 "vr time ", "vp msgs", "vp time"],
        rows=rows,
        notes=(
            "Viewstamped replication's message count grows O(n) (invitations, "
            "acceptances, one init-view, newview to each backup); virtual "
            "partitions' phase-3 all-to-all state exchange costs O(n^2) and "
            "an extra round.  VR elapsed time includes the stable-storage "
            "write of the new viewid."
        ),
    )
