"""Experiment E16: liveness under lossy networks (repro.detect).

The paper assumes timeouts are "set appropriately" and never revisits
them; this experiment measures what the adaptive detection layer buys on
networks where the fixed settings are wrong in both directions -- too
patient for a fast-but-lossy LAN, too eager during partition storms.
Both arms run the *same* protocol with the *same* seeds; the only delta
is ``ProtocolConfig.adaptive_timeouts``.
"""

from __future__ import annotations

from repro import LOSSY, Nemesis
from repro.config import ProtocolConfig
from repro.harness.common import ExperimentResult, build_kv_system
from repro.sim.process import sleep, spawn


def _liveness_run(
    config: ProtocolConfig,
    seed: int,
    duration: float,
    storm: bool,
    kills: int = 10,
    kill_every: float = 700.0,
    recover_after: float = 300.0,
):
    """One arm of the comparison: crash-driven view changes on a LOSSY
    network (plus an optional partition storm), with a write prober
    sampling availability throughout.  Returns the metrics dict for one
    table row."""
    rt, kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=3, config=config, link=LOSSY
    )
    nemesis = Nemesis().crash_primary(
        "kv", every=kill_every, count=kills, recover_after=recover_after
    )
    if storm:
        nemesis.partition_storm(
            [node.node_id for node in kv.nodes()],
            mean_healthy=900.0,
            mean_partitioned=250.0,
        )
    rt.inject(nemesis)
    outcomes = {"ok": 0, "total": 0}

    def prober():
        index = 0
        while rt.sim.now < duration:
            index += 1
            future = driver.call(
                "clients", "write", "kv", spec.key(index % spec.n_keys), index,
                retries=2,
            )
            outcome, _ = yield future
            outcomes["total"] += 1
            if outcome == "committed":
                outcomes["ok"] += 1
            yield sleep(40.0)

    spawn(rt.sim, prober(), name="prober")
    rt.run(until=duration)
    rt.faults.stop()
    rt.faults.heal()
    rt.faults.restore_links()
    rt.quiesce(duration=600)
    rt.check_invariants(require_convergence=False)

    durations = rt.ledger.view_change_durations("kv")
    counters = rt.metrics.counters
    return {
        "availability": outcomes["ok"] / max(outcomes["total"], 1),
        "view_changes": len(rt.ledger.view_changes_for("kv")),
        "mean_convergence": (
            sum(durations) / len(durations) if durations else 0.0
        ),
        "max_convergence": max(durations) if durations else 0.0,
        "suspicions": counters.get("detector_suspicions:kv", 0),
        "invite_retransmits": counters.get("invite_retransmits:kv", 0),
        "backoff_resets": counters.get("backoff_resets:kv", 0),
        "call_retransmits": counters.get("call_retransmits", 0),
    }


def e16_liveness(duration: float = 12_000.0, seeds=(1601, 1602)) -> ExperimentResult:
    rows = []
    scenarios = [("LOSSY", False), ("LOSSY+storm", True)]
    for label, storm in scenarios:
        for mode, config in (
            ("adaptive", ProtocolConfig()),
            ("fixed", ProtocolConfig(adaptive_timeouts=False)),
        ):
            runs = [
                _liveness_run(config, seed=seed, duration=duration, storm=storm)
                for seed in seeds
            ]
            n = len(runs)
            mean = lambda key: sum(run[key] for run in runs) / n  # noqa: E731
            rows.append(
                (
                    label,
                    mode,
                    round(mean("availability"), 3),
                    round(mean("mean_convergence"), 1),
                    round(mean("max_convergence"), 1),
                    round(mean("view_changes"), 1),
                    int(mean("suspicions")),
                    int(mean("invite_retransmits")),
                    int(mean("call_retransmits")),
                )
            )
    return ExperimentResult(
        exp_id="E16",
        title="liveness under lossy networks: adaptive vs fixed detection",
        claim=(
            "Timeouts are beyond the paper: it assumes the configuration "
            "'is known to all' and failures are detected 'by timeout' "
            "without saying how long.  This measures the cost of that "
            "assumption on a lossy network and what per-peer RTT "
            "estimation, accrual suspicion, invite retransmission and "
            "jittered backoff recover."
        ),
        headers=["network", "detection", "availability", "mean conv",
                 "max conv", "view changes", "suspicions",
                 "invite rexmits", "call rexmits"],
        rows=rows,
        notes=(
            "Same seeds, same fault schedule in both arms; the only "
            "difference is ProtocolConfig.adaptive_timeouts.  Adaptive "
            "mode retransmits lost invites mid-round instead of waiting "
            "out the full invite timeout, paces call retries at "
            "RTT-derived intervals inside the unchanged total patience, "
            "and jitters manager promotion so cohorts do not collide -- "
            "on the lossy network view changes converge faster and the "
            "write prober sees higher availability.  Under partition "
            "storms adaptive mode completes *more* formations (it keeps "
            "retrying through the partition, so some measured outages "
            "span the whole blackout) yet still wins on availability.  "
            "Convergence is measured by the ledger "
            "from the first view-change trigger to the completed "
            "formation (overlapping attempts count once)."
        ),
    )
