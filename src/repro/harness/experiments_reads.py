"""Experiment E19: the read serving path vs the paper's full call path.

In the paper every read is a transaction: it travels to the client-group
primary, opens locks at the kv primary, and pays the commit round like a
write (section 3.7 prices the call, not the operation).  ``ReadConfig``
adds three progressively cheaper ways to serve a read without giving up
the safety argument -- a leased primary answering locally, a backup
answering from its applied prefix under an explicit staleness bound, and
a client-side commit-set cache (docs/READS.md).  E19 measures what each
buys on the workload the path exists for: an open-loop zipfian get/put
mix at 90% reads.

The study has two cell shapes:

- :func:`_reads_run` -- the measured cell: one open-loop 90/10 mix,
  identical arrival/key/op sequences across conditions, reporting read
  latency, serving-mode breakdown, and observed staleness.
- :func:`_reads_state_run` -- the comparable cell used by the
  ``python -m repro.reads.gate`` determinism gate: retry-until-commit
  distinct-key writes plus a concurrent read-only open loop, so the
  final replicated state is schedule-independent and every read config
  must reproduce the reads-disabled baseline's state digest
  byte-for-byte (reads may never change what the protocol computes).
"""

from __future__ import annotations

from repro.config import ProtocolConfig, ReadConfig
from repro.harness.common import ExperimentResult, build_kv_system
from repro.perf.report import state_digest
from repro.workloads.loadgen import run_open_loop, run_retry_loop

#: The serving-path conditions E19 sweeps.  ``baseline`` is the
#: paper-faithful path (``ProtocolConfig.reads`` disabled, every read a
#: transaction); the others enable ``ReadConfig`` and steer reads at the
#: leased primary, at backups, or through the client commit-set cache.
E19_CONDITIONS = ("baseline", "leases", "backup", "cache")


def _read_protocol_config(condition: str):
    """The ProtocolConfig for one condition (None = all defaults)."""
    if condition == "baseline":
        return None
    return ProtocolConfig(
        reads=ReadConfig(enabled=True, client_cache=(condition == "cache"))
    )


def _read_prefer(condition: str) -> str:
    return "backup" if condition == "backup" else "primary"


def _reads_run(
    seed: int,
    condition: str,
    n_keys: int = 16,
    duration: float = 600.0,
    rate: float = 0.5,
    read_fraction: float = 0.9,
    settle: float = 60.0,
):
    """One measured cell of the serving-path study.

    Returns ``(metrics dict, state digest)``.  The settle window lets the
    initial view form (and the lease arm) before the open loop starts, so
    latency differences measure the serving path, not view formation.
    """
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=3, n_keys=n_keys,
        config=_read_protocol_config(condition),
    )
    rt.run_for(settle)
    stats = run_open_loop(
        rt, driver,
        key=spec.key, n_keys=n_keys, duration=duration, rate=rate,
        read_fraction=read_fraction,
        prefer=_read_prefer(condition),
        use_read_path=condition != "baseline",
        # condition-independent rng fork names: every condition replays
        # the same arrival/key/op sequence
        name="e19",
    )
    rt.run_for(duration)
    deadline = rt.sim.now + 20_000.0
    while not stats.drained and rt.sim.now < deadline:
        rt.run_for(100.0)
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
    metrics = {
        "reads_ok": stats.reads_ok,
        "reads_failed": stats.reads_failed,
        "read_mean": stats.read_mean_latency,
        "read_p99": stats.read_p99_latency,
        "read_modes": dict(sorted(stats.read_modes.items())),
        "max_staleness": stats.max_observed_staleness,
        "writes_committed": stats.writes_committed,
        "writes_aborted": stats.writes_aborted,
        "messages": rt.network.messages_sent_total,
    }
    return metrics, state_digest(rt)


def _reads_state_run(
    seed: int,
    condition: str,
    txns: int = 32,
    duration: float = 500.0,
    rate: float = 0.4,
    settle: float = 60.0,
):
    """One cross-config-comparable cell: retry-until-commit distinct-key
    writes with a concurrent read-only open loop.  Every write commits
    exactly once with a fixed value, so the final replicated state is
    schedule-independent and comparable across read configs by state
    digest -- the gate's check that reads never change what the protocol
    computes.  Returns ``(metrics dict, state digest)``."""
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=3, n_keys=txns,
        config=_read_protocol_config(condition),
    )
    rt.run_for(settle)
    jobs = [("write", ("kv", spec.key(index), index)) for index in range(txns)]
    write_stats = run_retry_loop(rt, driver, "clients", jobs, concurrency=4)
    read_stats = run_open_loop(
        rt, driver,
        key=spec.key, n_keys=txns, duration=duration, rate=rate,
        read_fraction=1.0,
        prefer=_read_prefer(condition),
        use_read_path=condition != "baseline",
        name="e19-gate",
    )
    deadline = rt.sim.now + 100_000.0
    while (
        write_stats.committed < txns or not read_stats.drained
    ) and rt.sim.now < deadline:
        rt.run_for(200.0)
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
    metrics = {
        "writes_committed": write_stats.committed,
        "reads_ok": read_stats.reads_ok,
        "reads_failed": read_stats.reads_failed,
        "read_modes": dict(sorted(read_stats.read_modes.items())),
        "read_mean": round(read_stats.read_mean_latency, 6),
        "messages": rt.network.messages_sent_total,
    }
    return metrics, state_digest(rt)


def _format_modes(modes: dict) -> str:
    return " ".join(f"{mode}:{count}" for mode, count in sorted(modes.items()))


def e19_reads(
    seed: int = 1901,
    n_keys: int = 16,
    duration: float = 600.0,
    rate: float = 0.5,
    read_fraction: float = 0.9,
) -> ExperimentResult:
    rows = []
    base_mean = None
    base_p99 = None
    for condition in E19_CONDITIONS:
        metrics, _digest = _reads_run(
            seed, condition,
            n_keys=n_keys, duration=duration, rate=rate,
            read_fraction=read_fraction,
        )
        if condition == "baseline":
            base_mean = metrics["read_mean"]
            base_p99 = metrics["read_p99"]
        rows.append(
            (
                condition,
                metrics["reads_ok"],
                metrics["reads_failed"],
                round(metrics["read_mean"], 2),
                round(metrics["read_p99"], 2),
                round(base_mean / metrics["read_mean"], 2)
                if base_mean
                else float("nan"),
                round(base_p99 / metrics["read_p99"], 2)
                if base_p99
                else float("nan"),
                _format_modes(metrics["read_modes"]),
                round(metrics["max_staleness"], 2),
                metrics["writes_committed"],
            )
        )
    return ExperimentResult(
        exp_id="E19",
        title="read-dominant serving: leases, backup reads, client caches",
        claim=(
            "In the paper a read costs what a write costs: it is a "
            "transaction through the client primary, the kv primary, and "
            "the commit round (section 3.7 prices calls, not operations). "
            "A quorum-leased primary can serve linearizable reads locally "
            "in one client round trip, backups can serve explicitly "
            "stale-bounded reads from their applied prefix, and a "
            "commit-set client cache can serve them with no messages at "
            "all -- with the lease invalidated across view changes so no "
            "committed write is ever concurrent with a stale lease "
            "serving reads (docs/READS.md)."
        ),
        headers=[
            "condition",
            "reads ok",
            "failed",
            "read mean",
            "read p99",
            "speedup",
            "p99 speedup",
            "served by",
            "max staleness",
            "writes ok",
        ],
        rows=rows,
        notes=(
            "One seed, open-loop Poisson arrivals at rate 0.5 for 600 "
            "time units after a 60-unit settle, zipfian(theta=0.99) keys "
            "over 16, 90% reads.  All conditions replay identical "
            "arrival/key/op sequences; 'speedup' is baseline mean read "
            "latency over the condition's.  baseline sends every read "
            "down the full transactional path; leases serves from the "
            "quorum-leased primary (staleness 0); backup prefers a "
            "randomly chosen backup under the default max_staleness "
            "bound, so 'max staleness' reports the worst prefix lag "
            "actually served (~one heartbeat interval); cache adds the "
            "client-side commit-set cache, whose hits cost zero network "
            "round trips.  Writes always use the call path.  The "
            "stale-read safety half of the claim is gated separately by "
            "python -m repro.reads.gate (byte-identical state digests "
            "across all serving configs) and the stale_lease monitor."
        ),
    )
