"""The canonical sharded workload: seq_puts plus cross-shard transfers.

Shared by ``python -m repro.shard determinism`` (CI's digest gate), the
E17 scale-out experiment, and the ``sharded_routing`` perf scenario, so
they all measure the same thing: a closed-loop mix of single-key writes
(serialized per shard by the ``__seq`` lock) and cross-shard transfers
(the paper's multi-group 2PC).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.config import ProtocolConfig
from repro.runtime import Runtime
from repro.workloads.loadgen import KeyedLoopStats, run_keyed_loop


def make_jobs(
    seed: int, txns: int, cross_ratio: float = 0.25, keyspace: int = 64
) -> List[Tuple[str, tuple]]:
    """A deterministic mixed workload: seq_puts plus cross-shard transfers."""
    rng = random.Random(seed ^ 0x5EED)
    jobs: List[Tuple[str, tuple]] = []
    for index in range(txns):
        if rng.random() < cross_ratio:
            src = f"k{rng.randrange(keyspace)}"
            dst = f"k{rng.randrange(keyspace)}"
            jobs.append(("transfer", (src, dst, 1)))
        else:
            key = f"k{rng.randrange(keyspace)}"
            jobs.append(("seq_put", (key, index)))
    return jobs


def saturation_config(n_shards: int, concurrency: int) -> ProtocolConfig:
    """Patience proportional to the expected per-shard queue depth.

    A closed-loop saturation workload queues calls on the per-shard
    sequence lock; the default timeouts would convert that backpressure
    into aborts.
    """
    depth = max(2, concurrency // max(1, n_shards))
    return ProtocolConfig(call_timeout=60.0 * depth, lock_timeout=90.0 * depth)


def run_sharded_workload(
    seed: int,
    n_shards: int,
    txns: int,
    n_cohorts: int = 3,
    concurrency: int = 8,
    cross_ratio: float = 0.25,
    settle: float = 100.0,
    duration: float = 20000.0,
    link=None,
    nemesis=None,
    trace=None,
    name: str = "kv",
) -> Tuple[Runtime, object, KeyedLoopStats]:
    """One full sharded run; returns (runtime, façade, stats).

    ``link`` overrides the network model (e.g. LOSSY), ``nemesis`` is
    injected before the load starts so its clocks align with ``settle``.
    """
    kwargs = {}
    if link is not None:
        kwargs["link"] = link
    if trace is not None:
        kwargs["trace"] = trace
    runtime = Runtime(seed=seed, **kwargs)
    sharded = runtime.sharded_group(
        name,
        n_shards=n_shards,
        n_cohorts=n_cohorts,
        config=saturation_config(n_shards, concurrency),
    )
    driver = runtime.create_driver("driver")
    if nemesis is not None:
        runtime.inject(nemesis)
    runtime.run_for(settle)
    jobs = make_jobs(seed, txns, cross_ratio=cross_ratio)
    stats = run_keyed_loop(
        runtime, driver, sharded, jobs, concurrency=concurrency
    )
    runtime.run_for(duration)
    return runtime, sharded, stats
