"""``python -m repro.shard``: sharding self-checks.

Subcommands::

    determinism [--seed S] [--shards N] [--txns T] [--runs R]
        Run the same seeded sharded workload R times (default twice) and
        fail unless every run produces byte-identical overall and
        per-shard ledger digests.  This is CI's E17 determinism gate: the
        simulator promises that one seed fixes the entire execution, and
        sharding (router group, cross-shard 2PC, per-shard psets) must
        not break that promise.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.report import ledger_digest
from repro.shard.workload import run_sharded_workload


def _determinism(args) -> int:
    runs = []
    for attempt in range(args.runs):
        runtime, sharded, stats = run_sharded_workload(
            seed=args.seed,
            n_shards=args.shards,
            txns=args.txns,
            concurrency=args.concurrency,
            cross_ratio=args.cross_ratio,
            duration=args.duration,
        )
        overall = ledger_digest(runtime)
        shards = sharded.ledger_digests()
        runs.append((overall, shards))
        print(
            f"run {attempt + 1}: committed={stats.committed} "
            f"aborted={stats.aborted} unknown={stats.unknown} "
            f"overall={overall[:16]}..."
        )
        if stats.submitted != args.txns:
            print(
                f"determinism: FAIL -- run {attempt + 1} finished only "
                f"{stats.submitted}/{args.txns} transactions (raise --duration?)",
                file=sys.stderr,
            )
            return 1
        if stats.committed == 0:
            print(
                f"determinism: FAIL -- run {attempt + 1} committed nothing",
                file=sys.stderr,
            )
            return 1
    reference_overall, reference_shards = runs[0]
    failed = False
    for attempt, (overall, shards) in enumerate(runs[1:], start=2):
        if overall != reference_overall:
            print(
                f"determinism: FAIL -- overall digest of run {attempt} "
                f"differs from run 1:\n  {reference_overall}\n  {overall}",
                file=sys.stderr,
            )
            failed = True
        for groupid in sorted(reference_shards):
            if shards.get(groupid) != reference_shards[groupid]:
                print(
                    f"determinism: FAIL -- shard {groupid} digest of run "
                    f"{attempt} differs from run 1:\n"
                    f"  {reference_shards[groupid]}\n  {shards.get(groupid)}",
                    file=sys.stderr,
                )
                failed = True
    if failed:
        return 1
    for groupid in sorted(reference_shards):
        print(f"  {groupid}: {reference_shards[groupid]}")
    print(
        f"determinism: OK ({args.runs} runs, {args.shards} shards "
        "byte-identical)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard", description=__doc__
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    determinism = subparsers.add_parser(
        "determinism",
        help="same seed twice must yield byte-identical per-shard digests",
    )
    determinism.add_argument("--seed", type=int, default=7)
    determinism.add_argument("--shards", type=int, default=4)
    determinism.add_argument("--txns", type=int, default=60)
    determinism.add_argument("--runs", type=int, default=2)
    determinism.add_argument("--concurrency", type=int, default=8)
    determinism.add_argument("--cross-ratio", type=float, default=0.25)
    determinism.add_argument("--duration", type=float, default=20000.0)
    determinism.set_defaults(func=_determinism)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
