"""ShardMap: a versioned assignment of a key space to replica groups.

A shard map partitions the (string) key space over N module groups, each
of which is an independent viewstamped-replication group.  Two strategies
are supported:

- **hash**: keys are assigned by ``crc32(key) % n``.  CRC32 is used --
  never Python's builtin ``hash`` -- because routing must be stable
  across processes, seeds, and interpreter restarts (``PYTHONHASHSEED``
  salts ``hash``); two runs of the same workload must route every key to
  the same shard or per-shard determinism checks are meaningless.
- **range**: keys are assigned by binary search over ``n - 1`` sorted
  boundary keys (shard *i* owns ``boundaries[i-1] <= key < boundaries[i]``).

Maps are immutable values carrying a ``version``; rebalancing produces a
*new* map with a strictly larger version, which is republished through the
:class:`~repro.location.service.LocationService`.  The location service
rejects version regressions, so a stale publisher can never roll routing
backwards (the same monotonicity discipline the paper applies to viewids).
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def stable_hash(key: str) -> int:
    """Process- and seed-independent hash of a routing key."""
    return zlib.crc32(key.encode("utf-8"))


class ShardMap:
    """An immutable, versioned key -> shard-group assignment."""

    def __init__(
        self,
        groupids: Sequence[str],
        strategy: str = "hash",
        boundaries: Optional[Sequence[str]] = None,
        version: int = 1,
    ):
        groupids = tuple(groupids)
        if not groupids:
            raise ValueError("ShardMap needs at least one shard group")
        if len(set(groupids)) != len(groupids):
            raise ValueError(f"duplicate shard groupids: {groupids}")
        if version < 1:
            raise ValueError(f"ShardMap version must be >= 1, got {version}")
        if strategy not in ("hash", "range"):
            raise ValueError(f"unknown shard strategy {strategy!r}")
        if strategy == "range":
            if boundaries is None:
                raise ValueError("range strategy needs boundaries")
            boundaries = tuple(boundaries)
            if len(boundaries) != len(groupids) - 1:
                raise ValueError(
                    f"range map over {len(groupids)} shards needs "
                    f"{len(groupids) - 1} boundaries, got {len(boundaries)}"
                )
            if list(boundaries) != sorted(set(boundaries)):
                raise ValueError("boundaries must be strictly increasing")
        elif boundaries is not None:
            raise ValueError("hash strategy takes no boundaries")
        self.groupids = groupids
        self.strategy = strategy
        self.boundaries: Tuple[str, ...] = tuple(boundaries or ())
        self.version = version

    # -- routing ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.groupids)

    def shard_index(self, key: str) -> int:
        if self.strategy == "hash":
            return stable_hash(key) % len(self.groupids)
        return bisect.bisect_right(self.boundaries, key)

    def shard_for(self, key: str) -> str:
        """The groupid owning *key* under this map version."""
        return self.groupids[self.shard_index(key)]

    def assignments(
        self, keys: Iterable[str]
    ) -> List[Tuple[str, Tuple[str, ...]]]:
        """(groupid, owned keys) pairs, sorted by groupid.

        The sorted order is what cross-shard transaction programs iterate
        in, so the participant-contact order -- and hence the trace -- is
        deterministic regardless of the caller's key order.
        """
        by_shard: Dict[str, List[str]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_for(key), []).append(key)
        return [(gid, tuple(by_shard[gid])) for gid in sorted(by_shard)]

    def group_pairs(
        self, pairs: Iterable[Tuple[str, object]]
    ) -> List[Tuple[str, Tuple[Tuple[str, object], ...]]]:
        """Like :meth:`assignments`, but over (key, value) pairs."""
        by_shard: Dict[str, List[Tuple[str, object]]] = {}
        for key, value in pairs:
            by_shard.setdefault(self.shard_for(key), []).append((key, value))
        return [(gid, tuple(by_shard[gid])) for gid in sorted(by_shard)]

    # -- rebalancing ------------------------------------------------------

    def rebalanced(
        self, boundaries: Optional[Sequence[str]] = None
    ) -> "ShardMap":
        """A new map over the same groups with ``version + 1``.

        For range maps, pass new *boundaries* to move key ranges between
        the existing shards.  Hash maps keep their assignment (the group
        set is fixed for the lifetime of a façade); the bumped version
        still matters -- it is what lets a republish supersede cached
        routing elsewhere.  Data migration between shards is out of scope
        (see docs/SHARDING.md).
        """
        if self.strategy == "hash":
            if boundaries is not None:
                raise ValueError("hash maps take no boundaries")
            new = ShardMap(
                self.groupids, strategy="hash", version=self.version + 1
            )
        else:
            new = ShardMap(
                self.groupids,
                strategy="range",
                boundaries=self.boundaries if boundaries is None else boundaries,
                version=self.version + 1,
            )
        return new

    def moved_keys(self, other: "ShardMap", keys: Iterable[str]) -> List[str]:
        """The subset of *keys* whose owner differs between two maps."""
        return [k for k in keys if self.shard_for(k) != other.shard_for(k)]

    # -- value semantics ---------------------------------------------------

    def describe(self) -> dict:
        """A deterministic, JSON-safe summary (used by traces and the CLI)."""
        doc = {
            "version": self.version,
            "strategy": self.strategy,
            "groups": list(self.groupids),
        }
        if self.strategy == "range":
            doc["boundaries"] = list(self.boundaries)
        return doc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (
            self.groupids == other.groupids
            and self.strategy == other.strategy
            and self.boundaries == other.boundaries
            and self.version == other.version
        )

    def __hash__(self) -> int:
        return hash((self.groupids, self.strategy, self.boundaries, self.version))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardMap(v{self.version}, {self.strategy}, "
            f"shards={len(self.groupids)})"
        )
