"""repro.shard: a partitioned key space over many replica groups.

The scale-out axis of the roadmap: a versioned
:class:`~repro.shard.map.ShardMap` assigns keys to N independent
viewstamped-replication groups, and a
:class:`~repro.shard.facade.ShardedGroup` façade routes single-key calls
to the owning group's primary and multi-key transactions through the
paper's cross-group 2PC (sections 3.3-3.6), with per-participant
viewstamp validation.  See docs/SHARDING.md and experiment E17.

``python -m repro.shard determinism`` is the CI check that two same-seed
sharded runs produce byte-identical per-shard ledger digests.
"""

from repro.shard.facade import (
    ShardedGroup,
    ShardStoreSpec,
    resolve_shard_groupid,
    shard_ledger_digest,
)
from repro.shard.map import ShardMap, stable_hash

__all__ = [
    "ShardMap",
    "ShardStoreSpec",
    "ShardedGroup",
    "resolve_shard_groupid",
    "shard_ledger_digest",
    "stable_hash",
]
