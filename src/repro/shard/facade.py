"""ShardedGroup: one client-facing façade over N replica groups.

The paper's transaction machinery (sections 3.3-3.6) is already
multi-group: psets name every participant group, prepares carry the pset
so each participant validates *its own* viewstamp history with
``compatible``, and the commit point is the coordinator's forced
committing record.  Sharding therefore needs no new protocol -- only an
assignment of keys to groups and a router that turns key-addressed
requests into ordinary (single- or multi-group) transactions:

- **single-key programs** are submitted directly to the owning shard
  group, whose primary coordinates a transaction on itself -- the
  :class:`~repro.shard.map.ShardMap` literally routes the call to the
  owning group's primary;
- **multi-key programs** are submitted to a replicated *router* group
  whose primary runs the paper's cross-group 2PC against every owning
  shard.  A view change in one shard invalidates only the psets naming
  that shard, so exactly the transactions touching it abort (and retry).

The per-shard write workload (``seq_put``) funnels every write through a
per-shard sequence object held under a write lock for the whole 2PC --
the per-shard serial bottleneck that makes E17's throughput-vs-shards
measurement meaningful on a simulator with no per-node CPU model.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.app.module import EmptyModule, procedure, transaction_program
from repro.shard.map import ShardMap
from repro.workloads.kv import (
    KVStoreSpec,
    read_program,
    update_program,
    write_program,
)


def resolve_shard_groupid(sharded, shard: int) -> str:
    """Resolve (façade-or-name, shard index) to the shard's groupid.

    Fault-injection helpers accept either a live :class:`ShardedGroup`
    or just its name, so plans can be built before (or without) the
    runtime that will execute them.
    """
    resolver = getattr(sharded, "shard_groupid", None)
    if callable(resolver):
        return resolver(shard)
    return f"{sharded}-s{shard}"


class ShardStoreSpec(KVStoreSpec):
    """A KV shard with a per-shard sequence object.

    ``seq_put`` stamps every write with the next value of ``__seq``,
    taken under a write lock (``read_for_update``), so writes within one
    shard serialize for the duration of their transaction while writes on
    different shards proceed independently -- the scaling bottleneck E17
    measures.
    """

    SEQ_KEY = "__seq"

    def initial_objects(self):
        objects = super().initial_objects()
        objects[self.SEQ_KEY] = 0
        return objects

    @procedure
    def seq_put(self, ctx, key, value):
        # Lock order: the user key first, the sequence object last.  Every
        # sharded program acquires user keys in sorted order and ``__seq``
        # after all of them, so wait-for chains cannot form cycles -- and
        # a call queued on a hot user key does not stall the whole shard
        # by sitting on the sequence lock while it waits.
        yield ctx.write(key, value)
        seq = yield ctx.read_for_update(self.SEQ_KEY)
        yield ctx.write(self.SEQ_KEY, seq + 1)
        return seq + 1

    @procedure
    def incr(self, ctx, key, delta=1):
        # Unlike the base KV store (whose keys all exist up front), a
        # shard's key space is open: treat a never-written key as 0.
        value = yield ctx.read_for_update(key)
        value = (0 if value is None else value) + delta
        yield ctx.write(key, value)
        return value


@transaction_program
def seq_put_program(txn, group, key, value):
    result = yield txn.call(group, "seq_put", key, value)
    return result


class ShardedGroup:
    """N shard groups plus a router group behind one key-addressed API."""

    #: Programs registered on every shard group; routed by their first arg.
    SINGLE_KEY_PROGRAMS = ("read", "write", "update", "seq_put")
    #: Programs registered on the router group (cross-shard 2PC).
    CROSS_SHARD_PROGRAMS = ("multi_get", "multi_put", "transfer")

    def __init__(
        self,
        runtime,
        name: str,
        n_shards: int,
        n_cohorts: int = 3,
        spec_factory=None,
        strategy: str = "hash",
        boundaries: Optional[Sequence[str]] = None,
        n_keys: int = 16,
        config=None,
    ):
        if n_shards < 1:
            raise ValueError(f"sharded_group({name!r}): n_shards must be >= 1")
        self.runtime = runtime
        self.name = name
        groupids = tuple(f"{name}-s{i}" for i in range(n_shards))
        self.map = ShardMap(groupids, strategy=strategy, boundaries=boundaries)
        self.shards = {}
        for index, groupid in enumerate(groupids):
            if spec_factory is not None:
                spec = spec_factory(index)
            else:
                spec = ShardStoreSpec(n_keys=n_keys)
            spec.register_program("read", read_program)
            spec.register_program("write", write_program)
            spec.register_program("update", update_program)
            spec.register_program("seq_put", seq_put_program)
            self.shards[groupid] = runtime.create_group(
                groupid, spec, n_cohorts=n_cohorts, config=config
            )
        self.router_groupid = f"{name}-router"
        router_spec = EmptyModule()
        self._register_router_programs(router_spec)
        self.router = runtime.create_group(
            self.router_groupid, router_spec, n_cohorts=n_cohorts, config=config
        )
        runtime.location.publish_shard_map(name, self.map)

    # -- cross-shard transaction programs ---------------------------------

    def _register_router_programs(self, spec) -> None:
        # Closures read ``self.map`` at run time, so a republished map
        # takes effect for every transaction after the republish.
        facade = self

        @transaction_program
        def multi_get(txn, keys):
            out = {}
            for groupid, shard_keys in facade.map.assignments(keys):
                values = yield txn.call(groupid, "multi_get", shard_keys)
                out.update(zip(shard_keys, values))
            return out

        @transaction_program
        def multi_put(txn, pairs):
            count = 0
            for groupid, shard_pairs in facade.map.group_pairs(pairs):
                count += yield txn.call(groupid, "multi_put", shard_pairs)
            return count

        @transaction_program
        def transfer(txn, src_key, dst_key, amount):
            # Touch keys in sorted order: with every transfer agreeing on
            # the acquisition order, two transfers over the same pair of
            # keys queue instead of deadlocking.
            results = {}
            for key, delta in sorted(((src_key, -amount), (dst_key, amount))):
                results[key] = yield txn.call(
                    facade.map.shard_for(key), "incr", key, delta
                )
            return (results[src_key], results[dst_key])

        spec.register_program("multi_get", multi_get)
        spec.register_program("multi_put", multi_put)
        spec.register_program("transfer", transfer)

    # -- routing ----------------------------------------------------------

    def route(
        self, program: str, args: tuple, origin=None
    ) -> Tuple[str, str, tuple]:
        """Resolve a key-addressed request to (groupid, program, args).

        Single-key programs go to the owning shard group (whose primary
        both coordinates and serves the transaction); everything else
        goes to the router group for cross-shard 2PC.
        """
        if program in self.SINGLE_KEY_PROGRAMS:
            key = args[0]
            groupid = self.map.shard_for(key)
            routed = (groupid, program, (groupid, *args))
        else:
            routed = (self.router_groupid, program, tuple(args))
        tracer = self.runtime.tracer
        if tracer is not None:
            tracer.emit(
                "shard_route",
                node=origin.node.node_id if origin is not None else None,
                facade=self.name,
                map_version=self.map.version,
                program=program,
                group=routed[0],
                shards=self.touched_shards(program, args),
            )
        return routed

    def touched_shards(self, program: str, args: tuple) -> Tuple[str, ...]:
        """The shard groupids a request will touch (sorted)."""
        if program in self.SINGLE_KEY_PROGRAMS:
            return (self.map.shard_for(args[0]),)
        if program == "transfer":
            keys = [args[0], args[1]]
        elif program == "multi_put":
            keys = [key for key, _value in args[0]]
        elif program == "multi_get":
            keys = list(args[0])
        else:
            raise KeyError(f"unknown sharded program {program!r}")
        return tuple(sorted({self.map.shard_for(key) for key in keys}))

    # -- rebalancing ------------------------------------------------------

    def republish(self, new_map: ShardMap) -> ShardMap:
        """Install a rebalanced map (same groups, strictly newer version)."""
        if tuple(new_map.groupids) != tuple(self.map.groupids):
            raise ValueError(
                "republish() must keep the façade's shard groups: "
                f"{new_map.groupids} != {self.map.groupids}"
            )
        self.runtime.location.publish_shard_map(self.name, new_map)
        self.map = new_map
        return new_map

    # -- group plumbing ----------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_groupid(self, index: int) -> str:
        return self.map.groupids[index]

    def shard(self, index: int):
        return self.shards[self.shard_groupid(index)]

    def groups(self) -> List:
        return [*self.shards.values(), self.router]

    def nodes(self) -> List:
        return [node for group in self.groups() for node in group.nodes()]

    def converged(self) -> bool:
        return all(group.converged() for group in self.groups())

    def active_primaries(self) -> Dict[str, object]:
        return {
            group.groupid: group.active_primary() for group in self.groups()
        }

    # -- determinism ------------------------------------------------------

    def ledger_digests(self) -> Dict[str, str]:
        """Per-shard digests of this run's observable outcome."""
        return {
            groupid: shard_ledger_digest(self.runtime, groupid)
            for groupid in self.map.groupids
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedGroup({self.name!r}, shards={self.n_shards}, "
            f"map=v{self.map.version})"
        )


def shard_ledger_digest(runtime, groupid: str) -> str:
    """Deterministic sha256 over one group's slice of the ledger.

    Two same-seed runs must agree on every shard's digest -- this is the
    per-shard refinement of :func:`repro.perf.report.ledger_digest`, and
    what ``python -m repro.shard determinism`` (CI's e17 check) compares.
    """
    ledger = runtime.ledger
    effects = sorted(
        (str(aid), sorted(reads.items()), sorted(writes.items()))
        for (aid, gid), (reads, writes) in ledger.effects.items()
        if gid == groupid
    )
    views = [
        (str(ev.viewid), ev.primary, ev.completed_at)
        for ev in ledger.view_changes
        if ev.groupid == groupid
    ]
    parts = [groupid, repr(effects), repr(views)]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()
