"""repro: Viewstamped Replication (Oki & Liskov, PODC 1988), reproduced.

A complete implementation of the viewstamped replication primary-copy
method -- transaction processing with viewstamps and psets, the
communication buffer, the view change algorithm -- on a deterministic
discrete-event simulator, together with the baselines the paper compares
against (quorum voting, virtual partitions, Isis-style piggybacking, an
unreplicated 2PC system, a Tandem-style primary/backup pair).

Quickstart::

    from repro import EmptyModule, ModuleSpec, Runtime, procedure, transaction_program

    class Counter(ModuleSpec):
        def initial_objects(self):
            return {"count": 0}

        @procedure
        def increment(self, ctx, amount):
            value = yield ctx.read("count")
            yield ctx.write("count", value + amount)
            return value + amount

    @transaction_program
    def bump(txn, amount):
        result = yield txn.call("counter", "increment", amount)
        return result

    rt = Runtime(seed=1)
    rt.create_group("counter", Counter(), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("bump", bump)
    driver = rt.create_driver("driver")
    outcome = driver.call("clients", "bump", 5)
    rt.run_for(500)
    print(outcome.result())  # CallResult(status="committed", value=5)
"""

from repro.app import (
    CallContext,
    EmptyModule,
    ModuleSpec,
    procedure,
    transaction_program,
)
from repro.config import (
    BatchConfig,
    GeoConfig,
    ProtocolConfig,
    ReadConfig,
    ScaleConfig,
    TimingConfig,
    TraceConfig,
)
from repro.core import ModuleGroup, View, ViewId, Viewstamp
from repro.driver import CallFailed, CallResult, Driver, ReadResult
from repro.faults import FaultController, FaultPlan, Nemesis
from repro.geo import (
    Datacenter,
    PlacementPolicy,
    Topology,
    Zone,
    resolve_placement,
    symmetric_topology,
)
from repro.location import GroupNotFound, LocationService
from repro.net.link import LAN, LOSSY, WAN, LinkModel
from repro.runtime import Runtime
from repro.shard import ShardedGroup, ShardMap
from repro.storage.stable import DiskFault, StableStoragePolicy

__version__ = "1.0.0"

__all__ = [
    "BatchConfig",
    "CallContext",
    "CallFailed",
    "CallResult",
    "Datacenter",
    "DiskFault",
    "Driver",
    "EmptyModule",
    "FaultController",
    "FaultPlan",
    "GeoConfig",
    "GroupNotFound",
    "LAN",
    "LOSSY",
    "LocationService",
    "WAN",
    "LinkModel",
    "ModuleGroup",
    "ModuleSpec",
    "Nemesis",
    "PlacementPolicy",
    "ProtocolConfig",
    "ReadConfig",
    "ReadResult",
    "Runtime",
    "ScaleConfig",
    "ShardMap",
    "ShardedGroup",
    "StableStoragePolicy",
    "TimingConfig",
    "Topology",
    "TraceConfig",
    "View",
    "ViewId",
    "Viewstamp",
    "Zone",
    "procedure",
    "resolve_placement",
    "symmetric_topology",
    "transaction_program",
]
