"""Stable storage: survives crashes, costs latency to force.

The paper deliberately minimizes stable storage (section 4.2): only
``mymid``, ``configuration``, ``mygroupid`` (written at creation) and
``cur_viewid`` (written at the end of a view change) are stable; everything
else is volatile and replication substitutes for disk forces.  Experiment
E3 measures exactly this trade (communication vs stable-storage latency),
and E11 measures the catastrophe exposure it buys, so the store models
write latency explicitly.

Crash semantics: a synchronous write becomes durable only when it
*completes*.  Writes are scheduled through the owning node, so a crash
mid-write cancels the completion and the old value remains -- the
atomic-page behaviour Lampson & Sturgis stable storage provides.

Fault modes (injected through :class:`~repro.faults.controller.FaultController`,
see docs/FAULTS.md):

- ``fail``: writes error after the usual latency (the future resolves to a
  :class:`DiskFault`); nothing is persisted.  Reads still serve the old
  pages -- a dead write head, not a lost disk.
- ``slow``: write latency is multiplied (a sick disk; gray failure).
- ``torn`` (one-shot): the next write becomes durable *halfway through its
  latency* and then the node crashes before acknowledging it.  The
  dangerous half of a torn force: the page landed but no one learned it,
  so on recovery stable state can be ahead of what the protocol believes
  was persisted.  (Lampson & Sturgis duplicate pages make the
  corrupted-page half detectable and recoverable, so this is the half
  that remains.)
"""

from __future__ import annotations

import copy
import enum
from typing import Any, Dict, List

from repro.sim.future import Future
from repro.sim.node import Node


class DiskFault(Exception):
    """A stable-storage write failed (injected disk fault)."""

    def __init__(self, node_id: str, key: str):
        self.node_id = node_id
        self.key = key
        super().__init__(f"stable write of {key!r} failed on {node_id}")


class StableStoragePolicy(enum.Enum):
    """How much cohort state is kept on stable storage (section 4.2).

    MINIMAL is the paper's design.  PRIMARY_GSTATE is the paper's suggested
    hardening ("we might use stable storage only at the primary"): the
    primary also persists its group state and history on every force, which
    closes the catastrophe window at the cost of disk latency on the
    critical path.  ALL persists at every cohort (the conventional-system
    endpoint of the spectrum).
    """

    MINIMAL = "minimal"
    PRIMARY_GSTATE = "primary_gstate"
    ALL = "all"


class StableStore:
    """Per-node key/value stable storage with modelled write latency.

    Values are deep-copied on write so later in-memory mutation of protocol
    state cannot retroactively alter what was "on disk".  Every store
    registers itself on its node (``node.stable_stores``) so the fault
    controller can find the disks of a node by id.
    """

    def __init__(self, node: Node, write_latency: float = 5.0):
        self.node = node
        self.write_latency = write_latency
        self._data: Dict[str, Any] = {}
        # -- injected fault state (disk state, not volatile: survives crashes)
        self.fail_writes = False
        self.slow_factor = 1.0
        self.torn_armed = False
        node.stable_stores.append(self)

    # -- fault injection (driven by FaultController.disk_*) -----------------

    def inject_fail(self, failing: bool = True) -> None:
        self.fail_writes = failing

    def inject_slow(self, factor: float) -> None:
        if factor < 1.0:
            raise ValueError(f"slow factor must be >= 1.0, got {factor!r}")
        self.slow_factor = factor

    def arm_torn(self) -> None:
        """One-shot: the next write persists mid-latency, then the node
        crashes before the write is acknowledged."""
        self.torn_armed = True

    def heal_faults(self) -> None:
        self.fail_writes = False
        self.slow_factor = 1.0
        self.torn_armed = False

    def faults_active(self) -> List[str]:
        """Human-readable active fault modes (for StallReports)."""
        active = []
        if self.fail_writes:
            active.append("fail")
        if self.slow_factor != 1.0:
            active.append(f"slow x{self.slow_factor:g}")
        if self.torn_armed:
            active.append("torn-armed")
        return active

    # -- the storage API ----------------------------------------------------

    def write(self, key: str, value: Any) -> Future:
        """Force *value* durable; the future resolves when it is on disk.

        If the node crashes before the latency elapses, the write is lost
        (the future is simply never resolved -- its waiters died with the
        node anyway).  Under an injected ``fail`` the future resolves to a
        :class:`DiskFault` after the latency and nothing is persisted --
        callers must check :meth:`Future.exception` before treating the
        value as durable.
        """
        future = Future(label=f"stable-write:{key}")
        snapshot = copy.deepcopy(value)
        latency = self.write_latency * self.slow_factor

        if self.torn_armed:
            self.torn_armed = False

            def tear() -> None:
                # The page lands, then the node dies before the completion
                # callback would have run: durable but unacknowledged.
                self._data[key] = snapshot
                self.node.crash()

            self.node.set_timer(latency / 2.0, tear)
            return future

        if self.fail_writes:

            def fail() -> None:
                future.set_exception(DiskFault(self.node.node_id, key))

            self.node.set_timer(latency, fail)
            return future

        def complete() -> None:
            self._data[key] = snapshot
            future.set_result(None)

        self.node.set_timer(latency, complete)
        return future

    def write_immediate(self, key: str, value: Any) -> None:
        """Durable write with no latency -- for initial configuration and
        the UPS-backed-NVRAM gstate model (section 4.2), which injected
        disk faults deliberately do not touch."""
        self._data[key] = copy.deepcopy(value)

    def read(self, key: str, default: Any = None) -> Any:
        """Read survives crashes; returns a copy so callers can mutate."""
        if key not in self._data:
            return default
        return copy.deepcopy(self._data[key])

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StableStore(node={self.node.node_id!r}, keys={sorted(self._data)})"
