"""Stable storage: survives crashes, costs latency to force.

The paper deliberately minimizes stable storage (section 4.2): only
``mymid``, ``configuration``, ``mygroupid`` (written at creation) and
``cur_viewid`` (written at the end of a view change) are stable; everything
else is volatile and replication substitutes for disk forces.  Experiment
E3 measures exactly this trade (communication vs stable-storage latency),
and E11 measures the catastrophe exposure it buys, so the store models
write latency explicitly.

Crash semantics: a synchronous write becomes durable only when it
*completes*.  Writes are scheduled through the owning node, so a crash
mid-write cancels the completion and the old value remains -- the
atomic-page behaviour Lampson & Sturgis stable storage provides.
"""

from __future__ import annotations

import copy
import enum
from typing import Any, Dict

from repro.sim.future import Future
from repro.sim.node import Node


class StableStoragePolicy(enum.Enum):
    """How much cohort state is kept on stable storage (section 4.2).

    MINIMAL is the paper's design.  PRIMARY_GSTATE is the paper's suggested
    hardening ("we might use stable storage only at the primary"): the
    primary also persists its group state and history on every force, which
    closes the catastrophe window at the cost of disk latency on the
    critical path.  ALL persists at every cohort (the conventional-system
    endpoint of the spectrum).
    """

    MINIMAL = "minimal"
    PRIMARY_GSTATE = "primary_gstate"
    ALL = "all"


class StableStore:
    """Per-node key/value stable storage with modelled write latency.

    Values are deep-copied on write so later in-memory mutation of protocol
    state cannot retroactively alter what was "on disk".
    """

    def __init__(self, node: Node, write_latency: float = 5.0):
        self.node = node
        self.write_latency = write_latency
        self._data: Dict[str, Any] = {}

    def write(self, key: str, value: Any) -> Future:
        """Force *value* durable; the future resolves when it is on disk.

        If the node crashes before the latency elapses, the write is lost
        (the future is simply never resolved -- its waiters died with the
        node anyway).
        """
        future = Future(label=f"stable-write:{key}")
        snapshot = copy.deepcopy(value)

        def complete() -> None:
            self._data[key] = snapshot
            future.set_result(None)

        self.node.set_timer(self.write_latency, complete)
        return future

    def write_immediate(self, key: str, value: Any) -> None:
        """Durable write with no latency -- for initial configuration only.

        The paper writes ``mymid``/``configuration``/``mygroupid`` "when the
        cohort is first created", before the simulation starts.
        """
        self._data[key] = copy.deepcopy(value)

    def read(self, key: str, default: Any = None) -> Any:
        """Read survives crashes; returns a copy so callers can mutate."""
        if key not in self._data:
            return default
        return copy.deepcopy(self._data[key])

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StableStore(node={self.node.node_id!r}, keys={sorted(self._data)})"
