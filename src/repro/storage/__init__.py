"""Stable and volatile storage models (paper sections 3, 4.2)."""

from repro.storage.stable import DiskFault, StableStore, StableStoragePolicy

__all__ = ["DiskFault", "StableStore", "StableStoragePolicy"]
