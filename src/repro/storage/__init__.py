"""Stable and volatile storage models (paper sections 3, 4.2)."""

from repro.storage.stable import StableStore, StableStoragePolicy

__all__ = ["StableStore", "StableStoragePolicy"]
