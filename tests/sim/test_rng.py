"""Tests for seeded random streams."""

from hypothesis import given, strategies as st

from repro.sim.rng import SeededRng


def test_same_seed_same_stream():
    a = SeededRng(42)
    b = SeededRng(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = SeededRng(1)
    b = SeededRng(2)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_fork_is_independent_of_parent_consumption():
    """Forking after draws yields the same stream as forking before."""
    parent1 = SeededRng(7)
    fork_early = parent1.fork("net")
    parent2 = SeededRng(7)
    for _ in range(100):
        parent2.random()  # consume the parent heavily
    fork_late = parent2.fork("net")
    assert [fork_early.random() for _ in range(10)] == [
        fork_late.random() for _ in range(10)
    ]


def test_named_forks_are_distinct():
    root = SeededRng(3)
    a = root.fork("a")
    b = root.fork("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_nested_forks_stable():
    one = SeededRng(5).fork("x").fork("y")
    two = SeededRng(5).fork("x").fork("y")
    assert one.random() == two.random()


def test_chance_extremes():
    rng = SeededRng(0)
    assert not rng.chance(0.0)
    assert rng.chance(1.0)
    assert not rng.chance(-1.0)
    assert rng.chance(2.0)


@given(st.floats(0.05, 0.95))
def test_chance_rate_roughly_matches(p):
    rng = SeededRng(123).fork(f"p{p}")
    hits = sum(rng.chance(p) for _ in range(2000))
    assert abs(hits / 2000 - p) < 0.08


def test_uniform_bounds():
    rng = SeededRng(9)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_sample_and_choice():
    rng = SeededRng(11)
    population = list(range(10))
    picked = rng.sample(population, 3)
    assert len(picked) == 3
    assert all(item in population for item in picked)
    assert rng.choice(population) in population


def test_shuffle_is_permutation():
    rng = SeededRng(13)
    items = list(range(20))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
