"""Tests for fail-stop node semantics."""

from repro.sim.kernel import Simulator
from repro.sim.node import Actor, Node
from repro.sim.process import sleep


class Recorder(Actor):
    def __init__(self, node, address):
        super().__init__(node, address)
        self.messages = []
        self.crashes = 0
        self.recoveries = 0

    def handle_message(self, message, source):
        self.messages.append((message, source))

    def on_crash(self):
        self.crashes += 1

    def on_recover(self):
        self.recoveries += 1


def test_node_starts_up():
    sim = Simulator()
    node = Node(sim, "n1")
    assert node.up
    assert node.incarnation == 0


def test_crash_marks_down_and_notifies_actors():
    sim = Simulator()
    node = Node(sim, "n1")
    actor = Recorder(node, "a")
    node.crash()
    assert not node.up
    assert actor.crashes == 1
    assert node.incarnation == 1


def test_crash_twice_is_single_crash():
    sim = Simulator()
    node = Node(sim, "n1")
    actor = Recorder(node, "a")
    node.crash()
    node.crash()
    assert actor.crashes == 1


def test_recover_notifies_actors():
    sim = Simulator()
    node = Node(sim, "n1")
    actor = Recorder(node, "a")
    node.crash()
    node.recover()
    assert node.up
    assert actor.recoveries == 1


def test_recover_when_up_is_noop():
    sim = Simulator()
    node = Node(sim, "n1")
    actor = Recorder(node, "a")
    node.recover()
    assert actor.recoveries == 0


def test_timer_cancelled_by_crash():
    sim = Simulator()
    node = Node(sim, "n1")
    fired = []
    node.set_timer(5.0, fired.append, "should-not-fire")
    sim.schedule(1.0, node.crash)
    sim.run()
    assert fired == []


def test_timer_from_old_incarnation_does_not_fire():
    """A timer set before a crash must not fire into the recovered node."""
    sim = Simulator()
    node = Node(sim, "n1")
    fired = []
    # Fires at t=5; crash at t=1, recover at t=2.  Even though the node is
    # up at t=5, the timer belongs to incarnation 0.
    node.set_timer(5.0, fired.append, "stale")
    sim.schedule(1.0, node.crash)
    sim.schedule(2.0, node.recover)
    sim.run()
    assert fired == []


def test_timer_in_current_incarnation_fires():
    sim = Simulator()
    node = Node(sim, "n1")
    fired = []

    def arm():
        node.set_timer(1.0, fired.append, "fresh")

    sim.schedule(1.0, node.crash)
    sim.schedule(2.0, node.recover)
    sim.schedule(3.0, arm)
    sim.run()
    assert fired == ["fresh"]


def test_crash_interrupts_processes():
    sim = Simulator()
    node = Node(sim, "n1")
    log = []

    def body():
        log.append("start")
        yield sleep(100.0)
        log.append("never")

    process = node.spawn(body())
    sim.schedule(1.0, node.crash)
    sim.run()
    assert log == ["start"]
    assert process.done


def test_crash_count_tracks():
    sim = Simulator()
    node = Node(sim, "n1")
    node.crash()
    node.recover()
    node.crash()
    assert node.crash_count == 2
    assert node.incarnation == 2
