"""Tests for generator-based processes and futures."""

import pytest

from repro.sim.errors import CancelledError, SimulationError
from repro.sim.future import Future
from repro.sim.kernel import Simulator
from repro.sim.process import all_of, any_of, sleep, spawn


def test_future_result_roundtrip():
    future = Future("x")
    assert not future.done
    future.set_result(42)
    assert future.done
    assert future.result() == 42
    assert future.exception() is None


def test_future_exception():
    future = Future()
    error = ValueError("boom")
    future.set_exception(error)
    assert future.failed
    assert future.exception() is error
    with pytest.raises(ValueError):
        future.result()


def test_future_double_resolve_rejected():
    future = Future()
    future.set_result(1)
    with pytest.raises(SimulationError):
        future.set_result(2)


def test_future_cancel():
    future = Future("c")
    assert future.cancel()
    assert future.cancelled
    assert not future.cancel()  # second cancel is a no-op
    with pytest.raises(CancelledError):
        future.result()


def test_callback_fires_immediately_when_done():
    future = Future()
    future.set_result("v")
    seen = []
    future.add_done_callback(lambda f: seen.append(f.result()))
    assert seen == ["v"]


def test_pending_future_result_raises():
    with pytest.raises(SimulationError):
        Future().result()


def test_process_sleep_advances_clock():
    sim = Simulator()
    log = []

    def body():
        log.append(sim.now)
        yield sleep(5.0)
        log.append(sim.now)
        return "done"

    process = spawn(sim, body())
    sim.run()
    assert log == [0.0, 5.0]
    assert process.result() == "done"


def test_process_waits_on_future():
    sim = Simulator()
    gate = Future("gate")
    log = []

    def body():
        value = yield gate
        log.append(value)

    spawn(sim, body())
    sim.schedule(3.0, gate.set_result, "opened")
    sim.run()
    assert log == ["opened"]


def test_future_failure_thrown_into_process():
    sim = Simulator()
    gate = Future()
    caught = []

    def body():
        try:
            yield gate
        except ValueError as error:
            caught.append(str(error))

    spawn(sim, body())
    sim.schedule(1.0, gate.set_exception, ValueError("bad"))
    sim.run()
    assert caught == ["bad"]


def test_process_exception_captured():
    sim = Simulator()

    def body():
        yield sleep(1.0)
        raise RuntimeError("kaput")

    process = spawn(sim, body())
    sim.run()
    assert isinstance(process.exception(), RuntimeError)


def test_process_join():
    sim = Simulator()
    order = []

    def worker():
        yield sleep(2.0)
        order.append("worker")
        return 99

    def boss():
        value = yield spawn(sim, worker())
        order.append(f"boss:{value}")

    spawn(sim, boss())
    sim.run()
    assert order == ["worker", "boss:99"]


def test_all_of_collects_results():
    sim = Simulator()
    futures = [Future(str(i)) for i in range(3)]
    got = []

    def body():
        results = yield all_of(*futures)
        got.append(results)

    spawn(sim, body())
    for index, future in enumerate(futures):
        sim.schedule(index + 1.0, future.set_result, index * 10)
    sim.run()
    assert got == [[0, 10, 20]]


def test_all_of_fails_fast():
    sim = Simulator()
    futures = [Future(), Future()]

    def body():
        yield all_of(*futures)

    process = spawn(sim, body())
    sim.schedule(1.0, futures[0].set_exception, RuntimeError("first"))
    sim.run()
    assert isinstance(process.exception(), RuntimeError)


def test_any_of_returns_first():
    sim = Simulator()
    futures = [Future(), Future()]
    got = []

    def body():
        index, value = yield any_of(*futures)
        got.append((index, value))

    spawn(sim, body())
    sim.schedule(2.0, futures[1].set_result, "late-was-first")
    sim.schedule(5.0, futures[0].set_result, "slow")
    sim.run()
    assert got == [(1, "late-was-first")]


def test_interrupt_throws_cancelled():
    sim = Simulator()
    log = []

    def body():
        try:
            yield sleep(100.0)
        except CancelledError:
            log.append("interrupted")
            raise

    process = spawn(sim, body())
    sim.schedule(1.0, process.interrupt)
    sim.run()
    assert log == ["interrupted"]
    assert process.cancelled


def test_yield_bad_value_fails_process():
    sim = Simulator()

    def body():
        yield 12345

    process = spawn(sim, body())
    sim.run()
    assert isinstance(process.exception(), SimulationError)


def test_process_return_value_is_future_result():
    sim = Simulator()

    def body():
        yield sleep(1.0)
        return {"answer": 42}

    process = spawn(sim, body())
    sim.run()
    assert process.result() == {"answer": 42}


def test_nested_yield_from():
    sim = Simulator()

    def inner():
        yield sleep(1.0)
        return "inner-value"

    def outer():
        value = yield from inner()
        return f"outer({value})"

    process = spawn(sim, outer())
    sim.run()
    assert process.result() == "outer(inner-value)"
