"""Tests for the discrete-event simulator kernel."""

import pytest

from repro.sim.errors import SchedulingInPastError, SimulationLimitExceeded
from repro.sim.kernel import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    sim = Simulator()
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(5.0, fired.append, label)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]
    assert sim.now == 7.5


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingInPastError):
        sim.schedule(-0.1, lambda: None)


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, fired.append, "x")
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.active


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    sim.run()


def test_run_until_stops_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 10)
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run(until=20.0)
    assert fired == [1, 10]


def test_run_until_includes_events_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "edge")
    sim.run(until=5.0)
    assert fired == ["edge"]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(4.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [4.0]


def test_max_events_limit():
    sim = Simulator(max_events=10)

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimulationLimitExceeded):
        sim.run()


def test_determinism_same_seed_same_draws():
    a = Simulator(seed=42).rng.fork("net")
    b = Simulator(seed=42).rng.fork("net")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_trace_hooks_receive_records():
    sim = Simulator()
    records = []
    sim.add_trace_hook(lambda t, kind, data: records.append((t, kind, data)))
    sim.schedule(2.0, lambda: sim.trace("hello", value=1))
    sim.run()
    assert records == [(2.0, "hello", {"value": 1})]


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5
