"""Shared fixtures and helper module specs for the test suite."""

from __future__ import annotations

import pytest

from repro import EmptyModule, ModuleSpec, Runtime, procedure, transaction_program
from repro.config import ProtocolConfig
from repro.net.link import LinkModel


class CounterSpec(ModuleSpec):
    """A single replicated counter -- the simplest stateful module."""

    def initial_objects(self):
        return {"count": 0}

    @procedure
    def increment(self, ctx, amount):
        value = yield ctx.read_for_update("count")
        yield ctx.write("count", value + amount)
        return value + amount

    @procedure
    def get(self, ctx):
        value = yield ctx.read("count")
        return value


class KVSpec(ModuleSpec):
    """A replicated key-value store over a fixed set of keys."""

    def __init__(self, keys=("k0", "k1", "k2", "k3")):
        self._keys = tuple(keys)

    def initial_objects(self):
        return {key: 0 for key in self._keys}

    @procedure
    def put(self, ctx, key, value):
        yield ctx.write(key, value)
        return value

    @procedure
    def get(self, ctx, key):
        value = yield ctx.read(key)
        return value

    @procedure
    def add(self, ctx, key, delta):
        value = yield ctx.read_for_update(key)
        yield ctx.write(key, value + delta)
        return value + delta


class BankSpec(ModuleSpec):
    """Accounts with withdraw/deposit -- the classic invariant workload."""

    def __init__(self, accounts=("a", "b", "c"), opening_balance=100):
        self._accounts = tuple(accounts)
        self._opening = opening_balance

    def initial_objects(self):
        return {account: self._opening for account in self._accounts}

    @procedure
    def deposit(self, ctx, account, amount):
        balance = yield ctx.read_for_update(account)
        yield ctx.write(account, balance + amount)
        return balance + amount

    @procedure
    def withdraw(self, ctx, account, amount):
        balance = yield ctx.read_for_update(account)
        if balance < amount:
            from repro.app.context import TransactionAborted

            raise TransactionAborted(f"insufficient funds in {account}")
        yield ctx.write(account, balance - amount)
        return balance - amount

    @procedure
    def balance(self, ctx, account):
        value = yield ctx.read(account)
        return value

    @procedure
    def total(self, ctx, accounts):
        total = 0
        for account in accounts:
            value = yield ctx.read(account)
            total += value
        return total


@transaction_program
def bump_program(txn, amount):
    result = yield txn.call("counter", "increment", amount)
    return result


@transaction_program
def read_counter_program(txn):
    result = yield txn.call("counter", "get")
    return result


@transaction_program
def transfer_program(txn, src, dst, amount):
    yield txn.call("bank", "withdraw", src, amount)
    result = yield txn.call("bank", "deposit", dst, amount)
    return result


def build_counter_system(
    seed=1,
    n_cohorts=3,
    link: LinkModel | None = None,
    config: ProtocolConfig | None = None,
):
    """Runtime with a counter group, a client group, and a driver."""
    kwargs = {}
    if link is not None:
        kwargs["link"] = link
    if config is not None:
        kwargs["config"] = config
    rt = Runtime(seed=seed, **kwargs)
    counter = rt.create_group("counter", CounterSpec(), n_cohorts=n_cohorts)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=n_cohorts)
    clients.register_program("bump", bump_program)
    clients.register_program("read", read_counter_program)
    driver = rt.create_driver("driver")
    return rt, counter, clients, driver


def build_bank_system(
    seed=1,
    n_cohorts=3,
    accounts=("a", "b", "c"),
    opening=100,
    link: LinkModel | None = None,
    config: ProtocolConfig | None = None,
):
    """Runtime with a bank group, a client group, and a driver."""
    kwargs = {}
    if link is not None:
        kwargs["link"] = link
    if config is not None:
        kwargs["config"] = config
    rt = Runtime(seed=seed, **kwargs)
    bank = rt.create_group(
        "bank", BankSpec(accounts=accounts, opening_balance=opening), n_cohorts=n_cohorts
    )
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=n_cohorts)
    clients.register_program("transfer", transfer_program)
    driver = rt.create_driver("driver")
    return rt, bank, clients, driver


def total_balance(bank, accounts):
    return sum(bank.read_object(account) for account in accounts)


@pytest.fixture
def counter_system():
    return build_counter_system()


@pytest.fixture
def bank_system():
    return build_bank_system()
