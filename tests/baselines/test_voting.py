"""Tests for the quorum-voting baseline (Gifford-style)."""

import pytest

from repro import Runtime
from repro.baselines.voting import VotingClient, VotingSystem


def build(n=3, r=1, w=3, seed=0):
    rt = Runtime(seed=seed)
    system = VotingSystem(rt, "vote", n, {"x": 0, "y": 10})
    client = VotingClient(
        rt.create_node("vc-node"), rt, "vc", system, read_quorum=r, write_quorum=w
    )
    return rt, system, client


def test_quorum_validation():
    rt = Runtime(seed=1)
    system = VotingSystem(rt, "vote", 3, {})
    node = rt.create_node("bad-client")
    with pytest.raises(ValueError):
        VotingClient(node, rt, "bad1", system, read_quorum=1, write_quorum=2)
    with pytest.raises(ValueError):
        VotingClient(node, rt, "bad2", system, read_quorum=3, write_quorum=1)


def test_write_then_read():
    rt, system, client = build()
    w = client.write("x", 42)
    rt.run_for(50)
    assert w.result() == 1  # new version number
    r = client.read("x")
    rt.run_for(50)
    assert r.result() == 42


def test_versions_increase_monotonically():
    rt, system, client = build()
    versions = []
    for value in (1, 2, 3):
        w = client.write("x", value)
        rt.run_for(50)
        versions.append(w.result())
    assert versions == [1, 2, 3]
    assert system.read_value("x") == 3


def test_read_one_sees_latest_after_write_all():
    """r=1, w=n: any single replica has the latest version."""
    rt, system, client = build(r=1, w=3)
    client.write("x", 9)
    rt.run_for(50)
    for _ in range(5):
        r = client.read("x")
        rt.run_for(50)
        assert r.result() == 9


def test_majority_quorums_intersect():
    rt, system, client = build(r=2, w=2, seed=5)
    client.write("x", 7)
    rt.run_for(50)
    for _ in range(5):
        r = client.read("x")
        rt.run_for(50)
        assert r.result() == 7  # version-max over any read quorum finds it


def test_write_all_blocks_when_replica_down():
    rt, system, client = build(r=1, w=3, seed=2)
    system.replicas[2].node.crash()
    w = client.write("x", 1)
    rt.run_for(2000)
    assert w.done and w.failed  # quorum unavailable


def test_majority_write_survives_one_crash():
    rt, system, client = build(r=2, w=2, seed=3)
    system.replicas[0].node.crash()
    w = client.write("x", 5)
    rt.run_for(2000)
    assert w.done and not w.failed


def test_concurrent_writers_serialize_via_locks():
    rt, system, _ = build(r=2, w=2, seed=4)
    client2 = VotingClient(
        rt.create_node("vc2-node"), rt, "vc2", system, read_quorum=2, write_quorum=2
    )
    client1 = VotingClient(
        rt.create_node("vc1-node"), rt, "vc1", system, read_quorum=2, write_quorum=2
    )
    w1 = client1.write("x", 100)
    w2 = client2.write("x", 200)
    rt.run_for(3000)
    done = [w for w in (w1, w2) if w.done and not w.failed]
    assert done  # at least one completed
    # The final value corresponds to the highest version written.
    final = system.read_value("x")
    assert final in (100, 200)


def test_message_cost_scales_with_quorum():
    rt1, _s1, c1 = build(r=1, w=3, seed=6)
    c1.write("x", 1)
    rt1.run_for(100)
    write_all_msgs = rt1.metrics.total_sent()

    rt2, _s2, c2 = build(r=2, w=2, seed=6)
    c2.write("x", 1)
    rt2.run_for(100)
    majority_msgs = rt2.metrics.total_sent()
    assert write_all_msgs > majority_msgs  # 2 rounds x quorum size
