"""Tests for the pair, Isis-like, and virtual-partitions baselines."""


from repro import Runtime
from repro.baselines.isis_like import IsisClient, IsisSystem
from repro.baselines.pair import PairClient, PairSystem
from repro.baselines.virtual_partitions import VirtualPartitionsGroup


# -- Tandem-style pair ---------------------------------------------------------


def build_pair(seed=0):
    rt = Runtime(seed=seed)
    system = PairSystem(rt, "pair", {"k": 0})
    client = PairClient(rt.create_node("pc-node"), rt, "pc", system)
    return rt, system, client


def test_pair_ops_roundtrip():
    rt, system, client = build_pair()
    w = client.write("k", 5)
    rt.run_for(50)
    assert w.result() == 5
    r = client.read("k")
    rt.run_for(50)
    assert r.result() == 5


def test_pair_checkpoint_reaches_backup():
    rt, system, client = build_pair()
    client.write("k", 9)
    rt.run_for(50)
    assert system.backup.store["k"] == 9


def test_pair_backup_takes_over():
    rt, system, client = build_pair(seed=1)
    client.add("k", 1)
    rt.run_for(50)
    system.primary.node.crash()
    rt.run_for(100)  # takeover watchdog
    assert system.backup.is_primary
    op = client.add("k", 1)
    rt.run_for(200)
    assert op.result() == 2


def test_pair_dies_at_second_failure():
    rt, system, client = build_pair(seed=2)
    system.primary.node.crash()
    rt.run_for(100)
    system.backup.node.crash()
    op = client.add("k", 1)
    rt.run_for(2000)
    assert op.done and op.failed


def test_pair_read_survives_one_failure():
    rt, system, client = build_pair(seed=3)
    client.write("k", 7)
    rt.run_for(50)
    system.primary.node.crash()
    rt.run_for(100)
    r = client.read("k")
    rt.run_for(200)
    assert r.result() == 7  # the checkpointed state survived


# -- Isis-like piggybacking -----------------------------------------------------


def build_isis(n=3, seed=0):
    rt = Runtime(seed=seed)
    system = IsisSystem(rt, "isis", n, {"a": 0, "b": 0})
    client = IsisClient(rt.create_node("ic-node"), rt, "ic", system)
    return rt, system, client


def test_isis_ops_apply_everywhere():
    rt, system, client = build_isis()
    client.write("a", 3)
    rt.run_for(100)
    for cohort in system.cohorts:
        assert cohort.store["a"] == 3


def test_isis_carried_effects_grow_monotonically():
    rt, system, client = build_isis(seed=1)
    sizes = []
    for i in range(4):
        op = client.add("a", 1)
        rt.run_for(100)
        assert op.result() == i + 1
        sizes.append(client.carried_bytes)
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0]


def test_isis_reads_can_go_to_any_cohort():
    rt, system, client = build_isis(seed=2)
    client.write("b", 8)
    rt.run_for(100)
    results = []
    for _ in range(6):
        op = client.read("b")
        rt.run_for(50)
        results.append(op.result())
    assert all(value == 8 for value in results)


def test_isis_piggyback_rides_on_requests():
    rt, system, client = build_isis(seed=3)
    client.write("a", 1)
    rt.run_for(100)
    first_req_bytes = rt.metrics.bytes_sent["IsisCallReq"]
    client.write("b", 2)
    rt.run_for(100)
    second_total = rt.metrics.bytes_sent["IsisCallReq"]
    # The second request carried the first write's effect.
    assert second_total - first_req_bytes > first_req_bytes


# -- virtual partitions -----------------------------------------------------------


def test_vp_view_change_completes():
    rt = Runtime(seed=0)
    vp = VirtualPartitionsGroup(rt, "vp", 3)
    future = vp.trigger_view_change()
    rt.run_for(200)
    assert future.done
    assert future.result() > 0


def test_vp_message_complexity_quadratic():
    counts = {}
    for n in (3, 5, 7):
        rt = Runtime(seed=0)
        vp = VirtualPartitionsGroup(rt, "vp", n)
        future = vp.trigger_view_change()
        rt.run_for(500)
        assert future.done
        counts[n] = vp.message_count()
    # invites/accepts/newview/acks are 4(n-1); exchange is n(n-1).
    for n in (3, 5, 7):
        assert counts[n] == 4 * (n - 1) + n * (n - 1)


def test_vp_three_phases_on_the_wire():
    rt = Runtime(seed=0)
    vp = VirtualPartitionsGroup(rt, "vp", 3)
    vp.trigger_view_change()
    rt.run_for(500)
    for msg_type in ("VPInvite", "VPAccept", "VPNewView", "VPNewViewAck",
                     "VPStateExchange"):
        assert rt.metrics.messages_sent.get(msg_type, 0) > 0


def test_vp_excludes_dead_cohort():
    rt = Runtime(seed=0)
    vp = VirtualPartitionsGroup(rt, "vp", 3)
    vp.cohorts[2].node.crash()
    future = vp.trigger_view_change()
    rt.run_for(500)
    assert future.done  # completes among the live members
